"""Tests for the cost-based parallel planner: motions, co-location,
aggregation phases, partition elimination, direct dispatch, slicing."""

import datetime

import pytest

from repro.catalog.schema import (
    Column,
    DataType,
    Distribution,
    Partition,
    PartitionSpec,
    TableSchema,
)
from repro.catalog.stats import ColumnStats, TableStats
from repro.planner import exprs as ex
from repro.planner.analyzer import Analyzer
from repro.planner.physical import (
    HashAgg,
    HashJoin,
    Motion,
    NestLoopJoin,
    SeqScan,
    Sort,
)
from repro.planner.planner import Planner, PlannerOptions
from repro.sql.parser import parse_statement
from tests.test_analyzer import DictCatalog


def table(name, cols, dist_col=None, rows=1000.0):
    schema = TableSchema(
        name=name,
        columns=[Column(c, DataType.parse("INT")) for c in cols],
        distribution=(
            Distribution.hash(dist_col) if dist_col else Distribution.random()
        ),
    )
    return schema


@pytest.fixture
def catalog():
    return DictCatalog(
        tables={
            "big": table("big", ["k", "v", "w"], dist_col="k"),
            "big2": table("big2", ["k", "m"], dist_col="k"),
            "dim": table("dim", ["id", "label"], dist_col="id"),
            "rnd": table("rnd", ["k", "v"]),
        }
    )


STATS = {
    "big": TableStats(row_count=100000, total_bytes=2_000_000),
    "big2": TableStats(row_count=80000, total_bytes=1_500_000),
    "dim": TableStats(row_count=50, total_bytes=2_000),
    "rnd": TableStats(row_count=100000, total_bytes=2_000_000),
}


def plan_sql(catalog, sql, stats=None, options=None, segments=8, partitions=None):
    query = Analyzer(catalog).analyze(parse_statement(sql))
    planner = Planner(
        num_segments=segments,
        stats=stats or STATS,
        options=options,
        partition_children=partitions,
    )
    return planner.plan(query)


def nodes_of(plan, node_type):
    found = []

    def visit(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children:
            visit(child)

    for plan_slice in plan.slices:
        visit(plan_slice.root)
    return found


def motions_of(plan):
    return [s.motion_kind for s in plan.slices if s.motion_kind]


class TestMotions:
    def test_colocated_join_no_redistribute(self, catalog):
        plan = plan_sql(catalog, "SELECT 1 FROM big, big2 WHERE big.k = big2.k")
        assert motions_of(plan) == ["gather"]

    def test_random_tables_need_motion(self, catalog):
        plan = plan_sql(catalog, "SELECT 1 FROM rnd r1, big WHERE r1.k = big.k")
        kinds = motions_of(plan)
        assert "redistribute" in kinds or "broadcast" in kinds

    def test_small_table_broadcast(self, catalog):
        plan = plan_sql(catalog, "SELECT 1 FROM big, dim WHERE big.v = dim.id")
        assert "broadcast" in motions_of(plan)

    def test_colocation_through_equivalence_class(self, catalog):
        """big.k = big2.k = rnd.k: after joining big/big2, joining rnd on
        the same class redistributes only rnd."""
        plan = plan_sql(
            catalog,
            "SELECT 1 FROM big, big2, rnd "
            "WHERE big.k = big2.k AND big2.k = rnd.k",
        )
        kinds = motions_of(plan)
        assert kinds.count("redistribute") == 1

    def test_cross_join_nestloop_broadcast(self, catalog):
        plan = plan_sql(catalog, "SELECT 1 FROM big, dim")
        assert nodes_of(plan, NestLoopJoin)
        assert "broadcast" in motions_of(plan)

    def test_single_segment_no_motion_needed(self, catalog):
        plan = plan_sql(
            catalog, "SELECT 1 FROM rnd r1, big WHERE r1.k = big.k", segments=1
        )
        assert motions_of(plan) == ["gather"]

    def test_build_side_is_smaller(self, catalog):
        plan = plan_sql(catalog, "SELECT 1 FROM dim, big WHERE big.v = dim.id")
        join = nodes_of(plan, HashJoin)[0]
        assert join.right.est_rows <= join.left.est_rows


class TestAggregation:
    def test_two_phase_by_default(self, catalog):
        plan = plan_sql(catalog, "SELECT v, count(*) FROM big GROUP BY v")
        aggs = nodes_of(plan, HashAgg)
        phases = sorted(a.phase for a in aggs)
        assert phases == ["final", "partial"]

    def test_single_phase_when_colocated(self, catalog):
        """Paper Figure 3(a): grouping by the distribution key happens
        locally with no redistribution."""
        plan = plan_sql(catalog, "SELECT k, count(*) FROM big GROUP BY k")
        aggs = nodes_of(plan, HashAgg)
        assert [a.phase for a in aggs] == ["single"]
        assert motions_of(plan) == ["gather"]

    def test_plain_aggregate_gathers(self, catalog):
        plan = plan_sql(catalog, "SELECT count(*) FROM big")
        aggs = nodes_of(plan, HashAgg)
        assert {a.phase for a in aggs} == {"partial", "final"}

    def test_distinct_aggregate_single_phase(self, catalog):
        plan = plan_sql(
            catalog, "SELECT v, count(distinct w) FROM big GROUP BY v"
        )
        aggs = nodes_of(plan, HashAgg)
        assert [a.phase for a in aggs] == ["single"]
        assert "redistribute" in motions_of(plan)

    def test_select_distinct(self, catalog):
        plan = plan_sql(catalog, "SELECT DISTINCT v FROM big")
        assert nodes_of(plan, HashAgg)


class TestOutputShape:
    def test_order_by_sorts_twice(self, catalog):
        plan = plan_sql(catalog, "SELECT v FROM big ORDER BY v")
        assert len(nodes_of(plan, Sort)) == 2  # local + final merge

    def test_limit_pushed_below_gather(self, catalog):
        plan = plan_sql(catalog, "SELECT v FROM big ORDER BY v LIMIT 5")
        from repro.planner.physical import Limit

        limits = nodes_of(plan, Limit)
        assert len(limits) >= 2

    def test_hidden_sort_column_trimmed(self, catalog):
        plan = plan_sql(catalog, "SELECT v FROM big ORDER BY w")
        assert plan.output_names == ["v"]
        top = plan.top_slice.root
        assert len(top.layout) == 1


class TestDirectDispatch:
    def test_pinned_distribution_key(self, catalog):
        plan = plan_sql(catalog, "SELECT * FROM big WHERE k = 42")
        assert plan.direct_dispatch_segment is not None
        assert 0 <= plan.direct_dispatch_segment < 8

    def test_range_predicate_not_direct(self, catalog):
        plan = plan_sql(catalog, "SELECT * FROM big WHERE k > 42")
        assert plan.direct_dispatch_segment is None

    def test_random_table_not_direct(self, catalog):
        plan = plan_sql(catalog, "SELECT * FROM rnd WHERE k = 42")
        assert plan.direct_dispatch_segment is None

    def test_disabled_by_option(self, catalog):
        plan = plan_sql(
            catalog,
            "SELECT * FROM big WHERE k = 42",
            options=PlannerOptions(enable_direct_dispatch=False),
        )
        assert plan.direct_dispatch_segment is None


class TestPartitionElimination:
    @pytest.fixture
    def part_catalog(self):
        spec = PartitionSpec(
            column="d",
            kind="range",
            partitions=tuple(
                Partition(str(i), lower=i * 10, upper=(i + 1) * 10)
                for i in range(5)
            ),
        )
        parent = TableSchema(
            name="pt",
            columns=[
                Column("id", DataType.parse("INT")),
                Column("d", DataType.parse("INT")),
            ],
            distribution=Distribution.hash("id"),
            partition_spec=spec,
        )
        children = [
            (f"pt_1_prt_{p.name}", p) for p in spec.partitions
        ]
        catalog = DictCatalog(tables={"pt": parent})
        return catalog, {"pt": children}

    def test_pruning(self, part_catalog):
        catalog, partitions = part_catalog
        plan = plan_sql(
            catalog,
            "SELECT * FROM pt WHERE d >= 20 AND d < 30",
            partitions=partitions,
        )
        scan = nodes_of(plan, SeqScan)[0]
        assert scan.partitions == ["pt_1_prt_2"]
        assert len(scan.pruned_partitions) == 4

    def test_equality_pruning(self, part_catalog):
        catalog, partitions = part_catalog
        plan = plan_sql(
            catalog, "SELECT * FROM pt WHERE d = 35", partitions=partitions
        )
        scan = nodes_of(plan, SeqScan)[0]
        assert scan.partitions == ["pt_1_prt_3"]

    def test_no_predicate_scans_all(self, part_catalog):
        catalog, partitions = part_catalog
        plan = plan_sql(catalog, "SELECT * FROM pt", partitions=partitions)
        scan = nodes_of(plan, SeqScan)[0]
        assert len(scan.partitions) == 5

    def test_disabled_by_option(self, part_catalog):
        catalog, partitions = part_catalog
        plan = plan_sql(
            catalog,
            "SELECT * FROM pt WHERE d = 35",
            partitions=partitions,
            options=PlannerOptions(enable_partition_elimination=False),
        )
        scan = nodes_of(plan, SeqScan)[0]
        assert len(scan.partitions) == 5


class TestSlicing:
    def test_figure3a_shape(self, catalog):
        """Co-located join + co-located group-by = two slices, like the
        paper's Figure 3(a)."""
        plan = plan_sql(
            catalog,
            "SELECT big.k, count(*) FROM big, big2 "
            "WHERE big.k = big2.k GROUP BY big.k",
        )
        assert plan.num_slices == 2

    def test_figure3b_shape(self, catalog):
        """With one side randomly distributed a redistribute slice
        appears, like Figure 3(b)."""
        plan = plan_sql(
            catalog,
            "SELECT big.k, count(*) FROM big, rnd "
            "WHERE big.k = rnd.k GROUP BY big.k",
        )
        assert plan.num_slices == 3
        assert motions_of(plan).count("redistribute") == 1

    def test_top_slice_is_qd(self, catalog):
        plan = plan_sql(catalog, "SELECT v FROM big")
        assert plan.top_slice.gang == "1"

    def test_scan_projection_columns(self, catalog):
        plan = plan_sql(catalog, "SELECT v FROM big WHERE w > 0")
        scan = nodes_of(plan, SeqScan)[0]
        assert scan.columns == [1, 2]  # v and w only, not k

    def test_explain_text(self, catalog):
        plan = plan_sql(catalog, "SELECT v, count(*) FROM big GROUP BY v")
        text = plan.explain()
        assert "HashAgg" in text and "Motion" in text and "Slice" in text
