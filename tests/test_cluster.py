"""Tests for cluster fault tolerance: stateless-segment failover, the
warm standby's log shipping and promotion, and fault detection."""

import pytest

from repro import Engine
from repro.cluster import FaultDetector, Segment, StandbyMaster
from repro.errors import ClusterError
from repro.txn.wal import WriteAheadLog


@pytest.fixture
def engine():
    return Engine(num_segment_hosts=3, segments_per_host=2, seed=5)


def load_sample(engine):
    session = engine.connect()
    session.execute("CREATE TABLE t (a INT, b TEXT) DISTRIBUTED BY (a)")
    rows = ", ".join(f"({i}, 'v{i}')" for i in range(30))
    session.execute(f"INSERT INTO t VALUES {rows}")
    return session


class TestSegmentFailover:
    def test_query_survives_segment_failure(self, engine):
        session = load_sample(engine)
        before = sorted(session.query("SELECT a FROM t"))
        engine.fail_segment(0)
        after = sorted(session.query("SELECT a FROM t"))
        assert after == before

    def test_failed_segment_marked_down_in_catalog(self, engine):
        load_sample(engine)
        engine.fail_segment(1)
        snapshot = engine.txns.begin().statement_snapshot()
        down = engine.catalog.segments(snapshot, status="down")
        assert [s["segment_id"] for s in down] == [1]

    def test_acting_host_differs_after_failover(self, engine):
        session = load_sample(engine)
        engine.fail_segment(0)
        session.query("SELECT count(*) FROM t")  # triggers failover
        segment = engine.segments[0]
        assert segment.acting_host is not None
        assert segment.acting_host != segment.host

    def test_recovery_restores_segment(self, engine):
        session = load_sample(engine)
        engine.fail_segment(0)
        session.query("SELECT count(*) FROM t")
        engine.recover_segment(0)
        assert engine.segments[0].acting_host is None
        snapshot = engine.txns.begin().statement_snapshot()
        assert not engine.catalog.segments(snapshot, status="down")
        assert session.query("SELECT count(*) FROM t") == [(30,)]

    def test_writes_after_failover(self, engine):
        session = load_sample(engine)
        engine.fail_segment(0)
        session.execute("INSERT INTO t VALUES (1000, 'late')")
        assert session.query("SELECT b FROM t WHERE a = 1000") == [("late",)]

    def test_all_hosts_down_raises(self):
        detector = FaultDetector(
            [Segment(0, "h0", alive=False), Segment(1, "h1", alive=False)]
        )
        with pytest.raises(ClusterError):
            detector.alive_hosts()

    def test_hdfs_datanode_loss_masked(self, engine):
        """User data survives a DataNode death via HDFS replication."""
        session = load_sample(engine)
        before = sorted(session.query("SELECT a FROM t"))
        engine.hdfs.fail_datanode("host0")
        engine.fail_segment(0)  # the segment on that host too
        engine.fail_segment(3)
        assert sorted(session.query("SELECT a FROM t")) == before


class TestStandbyMaster:
    def test_log_shipping_mirrors_catalog(self, engine):
        load_sample(engine)
        snapshot = engine.standby.snapshot()
        mirrored = engine.standby.catalog.lookup_relation("t", snapshot)
        assert mirrored is not None
        assert mirrored["schema"].name == "t"

    def test_aborted_txn_not_visible_on_standby(self, engine):
        session = engine.connect()
        session.execute("BEGIN")
        session.execute("CREATE TABLE ghost (a INT)")
        session.execute("ROLLBACK")
        snapshot = engine.standby.snapshot()
        assert engine.standby.catalog.lookup_relation("ghost", snapshot) is None

    def test_segfile_lengths_replicated(self, engine):
        load_sample(engine)
        snapshot = engine.standby.snapshot()
        files = engine.standby.catalog.segfiles("t", snapshot)
        assert files
        assert all(sum(f["paths"].values()) > 0 for f in files)

    def test_updates_replicated_as_delete_insert(self, engine):
        session = load_sample(engine)
        session.execute("INSERT INTO t VALUES (99, 'again')")  # updates segfiles
        primary_snapshot = engine.txns.begin().statement_snapshot()
        standby_snapshot = engine.standby.snapshot()
        primary = {
            (f["segment_id"], f["segfile_id"]): f["paths"]
            for f in engine.catalog.segfiles("t", primary_snapshot)
        }
        mirrored = {
            (f["segment_id"], f["segfile_id"]): f["paths"]
            for f in engine.standby.catalog.segfiles("t", standby_snapshot)
        }
        assert primary == mirrored

    def test_promotion_serves_queries(self, engine):
        session = load_sample(engine)
        before = sorted(session.query("SELECT a FROM t"))
        engine.promote_standby()
        fresh = engine.connect()
        assert sorted(fresh.query("SELECT a FROM t")) == before
        # and the promoted master accepts writes
        fresh.execute("INSERT INTO t VALUES (500, 'post-promotion')")
        assert fresh.query("SELECT b FROM t WHERE a = 500") == [("post-promotion",)]

    def test_pull_mode_catch_up(self):
        wal = WriteAheadLog()
        standby = StandbyMaster(wal, synchronous=False)
        wal.append(1, "begin")
        wal.append(1, "change", table="pg_depend", op="insert",
                   row={"dependent": "a", "referenced": "b"})
        wal.append(1, "commit")
        assert standby.applied_lsn == 0
        applied = standby.catch_up()
        assert applied == 3
        snapshot = standby.snapshot()
        assert standby.catalog.table("pg_depend").scan(snapshot)

    def test_catch_up_idempotent(self):
        wal = WriteAheadLog()
        standby = StandbyMaster(wal, synchronous=True)
        wal.append(1, "begin")
        wal.append(1, "commit")
        assert standby.catch_up() == 0  # push already applied everything


class TestFaultDetector:
    def test_check_reports_down(self):
        segments = [Segment(0, "h0"), Segment(1, "h1", alive=False)]
        detector = FaultDetector(segments)
        assert detector.check() == [1]

    def test_failover_assignment_uses_alive_hosts(self):
        segments = [
            Segment(0, "h0", alive=False),
            Segment(1, "h1"),
            Segment(2, "h2"),
        ]
        detector = FaultDetector(segments, seed=3)
        assignment = detector.assign_failover()
        assert assignment[0] in ("h1", "h2")

    def test_failover_randomizes_across_sessions(self):
        """The paper: different sessions randomly fail over, balancing
        load. With many draws both hosts should be chosen."""
        segments = [
            Segment(0, "h0", alive=False),
            Segment(1, "h1"),
            Segment(2, "h2"),
        ]
        detector = FaultDetector(segments, seed=4)
        seen = {detector.assign_failover()[0] for _ in range(30)}
        assert seen == {"h1", "h2"}


class TestPromotionRegression:
    def test_promoted_standby_unsubscribes_from_wal(self, engine):
        """Regression: a promoted standby must stop consuming the WAL it
        now writes, or every post-promotion change replays onto itself."""
        load_sample(engine)
        subscribers_before = len(engine.txns.wal._subscribers)
        engine.promote_standby()
        assert len(engine.txns.wal._subscribers) == subscribers_before - 1
        fresh = engine.connect()
        # Post-promotion writes are applied exactly once.
        fresh.execute("INSERT INTO t VALUES (777, 'once')")
        assert fresh.query("SELECT count(*) FROM t WHERE a = 777") == [(1,)]

    def test_post_promotion_writes_logged_for_future_standby(self, engine):
        load_sample(engine)
        engine.promote_standby()
        lsn_before = engine.txns.wal.last_lsn
        engine.connect().execute("INSERT INTO t VALUES (888, 'logged')")
        assert engine.txns.wal.last_lsn > lsn_before


class TestFailoverReviveRace:
    """Regression: a failed segment's own host must never act for it —
    even when a sibling segment on that host is alive (or came back
    alive mid-session). The host just lost this segment's process."""

    def _segments(self):
        # Two segments share h0; segment 0 is down, its sibling is up,
        # so h0 is in alive_hosts() — the revive race.
        return [
            Segment(0, "h0", alive=False),
            Segment(1, "h0"),
            Segment(2, "h1"),
            Segment(3, "h2"),
        ]

    def test_own_host_excluded_even_when_alive(self):
        detector = FaultDetector(self._segments(), seed=11)
        for _ in range(30):  # random choice: every draw must exclude h0
            assignment = detector.assign_failover()
            assert assignment[0] != "h0"
            assert assignment[0] in ("h1", "h2")

    def test_only_own_host_left_raises_clean(self):
        segments = [Segment(0, "h0", alive=False), Segment(1, "h0")]
        detector = FaultDetector(segments, seed=11)
        with pytest.raises(ClusterError):
            detector.assign_failover()

    def test_mid_session_revival_still_excluded(self):
        segments = self._segments()
        segments[1].alive = False  # sibling dies too: h0 fully dark
        detector = FaultDetector(segments, seed=11)
        assignment = detector.assign_failover()
        assert assignment[0] in ("h1", "h2")
        segments[1].alive = True  # sibling revives mid-session
        assignment = detector.assign_failover()
        assert assignment[0] != "h0"  # segment 0 itself is still down


class TestPromoteMidTransaction:
    """Paper section 2.6 via the standby: a master crash aborts in-flight
    transactions; committed WAL records survive on the promoted catalog."""

    def test_committed_survives_inflight_aborts(self, engine):
        session = load_sample(engine)
        committed = sorted(session.query("SELECT a FROM t"))
        other = engine.connect()
        other.execute("BEGIN")
        other.execute("INSERT INTO t VALUES (4000, 'uncommitted')")
        aborted = engine.crash_master()
        assert aborted  # the in-flight xid was aborted, not lost
        fresh = engine.connect()
        assert sorted(fresh.query("SELECT a FROM t")) == committed
        assert fresh.query("SELECT count(*) FROM t WHERE a = 4000") == [(0,)]

    def test_catalog_identical_on_promoted_standby(self, engine):
        load_sample(engine)
        snapshot = engine.txns.begin().statement_snapshot()
        before = {
            (f["segment_id"], f["segfile_id"]): f["paths"]
            for f in engine.catalog.segfiles("t", snapshot)
        }
        engine.crash_master()
        snapshot = engine.txns.begin().statement_snapshot()
        after = {
            (f["segment_id"], f["segfile_id"]): f["paths"]
            for f in engine.catalog.segfiles("t", snapshot)
        }
        assert after == before

    def test_promote_aborts_unfinished_xids(self):
        wal = WriteAheadLog()
        standby = StandbyMaster(wal)
        wal.append(1, "begin")
        wal.append(
            1, "change", table="pg_depend", op="insert",
            row={"dependent": "a", "referenced": "b"},
        )
        # No commit record can ever arrive: the primary died.
        standby.promote()
        assert 1 in standby.xids.aborted
        snapshot = standby.snapshot()
        assert not standby.catalog.table("pg_depend").scan(snapshot)

    def test_truncate_on_abort_runs_at_crash(self, engine):
        session = load_sample(engine)
        other = engine.connect()
        other.execute("BEGIN")
        other.execute("INSERT INTO t VALUES (4001, 'garbage')")
        engine.crash_master()
        # No physical file may keep bytes beyond its committed length.
        snapshot = engine.txns.begin().statement_snapshot()
        client = engine.hdfs.client()
        for segfile in engine.catalog.segfiles("t", snapshot):
            for path, logical in segfile["paths"].items():
                assert client.file_status(path).length == logical


class TestStandbyReplayOrdering:
    """applied_lsn stays monotonic and replay exactly-once under
    duplicate and out-of-order WAL shipping."""

    ROW = {"dependent": "a", "referenced": "b"}

    def test_duplicate_replay_is_idempotent(self):
        wal = WriteAheadLog()
        standby = StandbyMaster(wal, synchronous=False)
        records = [
            wal.append(1, "begin"),
            wal.append(1, "change", table="pg_depend", op="insert", row=self.ROW),
            wal.append(1, "commit"),
        ]
        for record in records:
            standby.apply(record)
        assert standby.applied_lsn == 3
        standby.apply(records[1])  # shipped twice
        assert standby.applied_lsn == 3
        assert len(standby.catalog.table("pg_depend")._rows) == 1

    def test_out_of_order_replay_fills_the_gap(self):
        wal = WriteAheadLog()
        standby = StandbyMaster(wal, synchronous=False)
        wal.append(1, "begin")
        wal.append(1, "change", table="pg_depend", op="insert", row=self.ROW)
        commit = wal.append(1, "commit")
        standby.apply(commit)  # lsn 3 arrives first
        assert standby.applied_lsn == 3  # missing records pulled in order
        assert 1 in standby.xids.committed
        assert len(standby.catalog.table("pg_depend")._rows) == 1

    def test_applied_lsn_monotonic_under_shuffled_replay(self):
        import random

        wal = WriteAheadLog()
        records = []
        for xid in (1, 2, 3):
            records.append(wal.append(xid, "begin"))
            records.append(
                wal.append(
                    xid, "change", table="pg_depend", op="insert",
                    row={"dependent": f"d{xid}", "referenced": "r"},
                )
            )
            records.append(wal.append(xid, "commit"))
        shuffled = StandbyMaster(wal, synchronous=False)
        ordered = StandbyMaster(wal, synchronous=False)
        shuffle_rng = random.Random(42)
        sequence = list(records)
        shuffle_rng.shuffle(sequence)
        seen = 0
        for record in sequence:
            shuffled.apply(record)
            assert shuffled.applied_lsn >= seen  # never rewinds
            seen = shuffled.applied_lsn
        ordered.catch_up()
        assert shuffled.applied_lsn == ordered.applied_lsn == len(records)
        assert (
            [v.data for v in shuffled.catalog.table("pg_depend")._rows]
            == [v.data for v in ordered.catalog.table("pg_depend")._rows]
        )
        assert shuffled.xids.committed == ordered.xids.committed
