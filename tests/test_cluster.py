"""Tests for cluster fault tolerance: stateless-segment failover, the
warm standby's log shipping and promotion, and fault detection."""

import pytest

from repro import Engine
from repro.cluster import FaultDetector, Segment, StandbyMaster
from repro.errors import ClusterError
from repro.txn.wal import WriteAheadLog


@pytest.fixture
def engine():
    return Engine(num_segment_hosts=3, segments_per_host=2, seed=5)


def load_sample(engine):
    session = engine.connect()
    session.execute("CREATE TABLE t (a INT, b TEXT) DISTRIBUTED BY (a)")
    rows = ", ".join(f"({i}, 'v{i}')" for i in range(30))
    session.execute(f"INSERT INTO t VALUES {rows}")
    return session


class TestSegmentFailover:
    def test_query_survives_segment_failure(self, engine):
        session = load_sample(engine)
        before = sorted(session.query("SELECT a FROM t"))
        engine.fail_segment(0)
        after = sorted(session.query("SELECT a FROM t"))
        assert after == before

    def test_failed_segment_marked_down_in_catalog(self, engine):
        load_sample(engine)
        engine.fail_segment(1)
        snapshot = engine.txns.begin().statement_snapshot()
        down = engine.catalog.segments(snapshot, status="down")
        assert [s["segment_id"] for s in down] == [1]

    def test_acting_host_differs_after_failover(self, engine):
        session = load_sample(engine)
        engine.fail_segment(0)
        session.query("SELECT count(*) FROM t")  # triggers failover
        segment = engine.segments[0]
        assert segment.acting_host is not None
        assert segment.acting_host != segment.host

    def test_recovery_restores_segment(self, engine):
        session = load_sample(engine)
        engine.fail_segment(0)
        session.query("SELECT count(*) FROM t")
        engine.recover_segment(0)
        assert engine.segments[0].acting_host is None
        snapshot = engine.txns.begin().statement_snapshot()
        assert not engine.catalog.segments(snapshot, status="down")
        assert session.query("SELECT count(*) FROM t") == [(30,)]

    def test_writes_after_failover(self, engine):
        session = load_sample(engine)
        engine.fail_segment(0)
        session.execute("INSERT INTO t VALUES (1000, 'late')")
        assert session.query("SELECT b FROM t WHERE a = 1000") == [("late",)]

    def test_all_hosts_down_raises(self):
        detector = FaultDetector(
            [Segment(0, "h0", alive=False), Segment(1, "h1", alive=False)]
        )
        with pytest.raises(ClusterError):
            detector.alive_hosts()

    def test_hdfs_datanode_loss_masked(self, engine):
        """User data survives a DataNode death via HDFS replication."""
        session = load_sample(engine)
        before = sorted(session.query("SELECT a FROM t"))
        engine.hdfs.fail_datanode("host0")
        engine.fail_segment(0)  # the segment on that host too
        engine.fail_segment(3)
        assert sorted(session.query("SELECT a FROM t")) == before


class TestStandbyMaster:
    def test_log_shipping_mirrors_catalog(self, engine):
        load_sample(engine)
        snapshot = engine.standby.snapshot()
        mirrored = engine.standby.catalog.lookup_relation("t", snapshot)
        assert mirrored is not None
        assert mirrored["schema"].name == "t"

    def test_aborted_txn_not_visible_on_standby(self, engine):
        session = engine.connect()
        session.execute("BEGIN")
        session.execute("CREATE TABLE ghost (a INT)")
        session.execute("ROLLBACK")
        snapshot = engine.standby.snapshot()
        assert engine.standby.catalog.lookup_relation("ghost", snapshot) is None

    def test_segfile_lengths_replicated(self, engine):
        load_sample(engine)
        snapshot = engine.standby.snapshot()
        files = engine.standby.catalog.segfiles("t", snapshot)
        assert files
        assert all(sum(f["paths"].values()) > 0 for f in files)

    def test_updates_replicated_as_delete_insert(self, engine):
        session = load_sample(engine)
        session.execute("INSERT INTO t VALUES (99, 'again')")  # updates segfiles
        primary_snapshot = engine.txns.begin().statement_snapshot()
        standby_snapshot = engine.standby.snapshot()
        primary = {
            (f["segment_id"], f["segfile_id"]): f["paths"]
            for f in engine.catalog.segfiles("t", primary_snapshot)
        }
        mirrored = {
            (f["segment_id"], f["segfile_id"]): f["paths"]
            for f in engine.standby.catalog.segfiles("t", standby_snapshot)
        }
        assert primary == mirrored

    def test_promotion_serves_queries(self, engine):
        session = load_sample(engine)
        before = sorted(session.query("SELECT a FROM t"))
        engine.promote_standby()
        fresh = engine.connect()
        assert sorted(fresh.query("SELECT a FROM t")) == before
        # and the promoted master accepts writes
        fresh.execute("INSERT INTO t VALUES (500, 'post-promotion')")
        assert fresh.query("SELECT b FROM t WHERE a = 500") == [("post-promotion",)]

    def test_pull_mode_catch_up(self):
        wal = WriteAheadLog()
        standby = StandbyMaster(wal, synchronous=False)
        wal.append(1, "begin")
        wal.append(1, "change", table="pg_depend", op="insert",
                   row={"dependent": "a", "referenced": "b"})
        wal.append(1, "commit")
        assert standby.applied_lsn == 0
        applied = standby.catch_up()
        assert applied == 3
        snapshot = standby.snapshot()
        assert standby.catalog.table("pg_depend").scan(snapshot)

    def test_catch_up_idempotent(self):
        wal = WriteAheadLog()
        standby = StandbyMaster(wal, synchronous=True)
        wal.append(1, "begin")
        wal.append(1, "commit")
        assert standby.catch_up() == 0  # push already applied everything


class TestFaultDetector:
    def test_check_reports_down(self):
        segments = [Segment(0, "h0"), Segment(1, "h1", alive=False)]
        detector = FaultDetector(segments)
        assert detector.check() == [1]

    def test_failover_assignment_uses_alive_hosts(self):
        segments = [
            Segment(0, "h0", alive=False),
            Segment(1, "h1"),
            Segment(2, "h2"),
        ]
        detector = FaultDetector(segments, seed=3)
        assignment = detector.assign_failover()
        assert assignment[0] in ("h1", "h2")

    def test_failover_randomizes_across_sessions(self):
        """The paper: different sessions randomly fail over, balancing
        load. With many draws both hosts should be chosen."""
        segments = [
            Segment(0, "h0", alive=False),
            Segment(1, "h1"),
            Segment(2, "h2"),
        ]
        detector = FaultDetector(segments, seed=4)
        seen = {detector.assign_failover()[0] for _ in range(30)}
        assert seen == {"h1", "h2"}


class TestPromotionRegression:
    def test_promoted_standby_unsubscribes_from_wal(self, engine):
        """Regression: a promoted standby must stop consuming the WAL it
        now writes, or every post-promotion change replays onto itself."""
        load_sample(engine)
        subscribers_before = len(engine.txns.wal._subscribers)
        engine.promote_standby()
        assert len(engine.txns.wal._subscribers) == subscribers_before - 1
        fresh = engine.connect()
        # Post-promotion writes are applied exactly once.
        fresh.execute("INSERT INTO t VALUES (777, 'once')")
        assert fresh.query("SELECT count(*) FROM t WHERE a = 777") == [(1,)]

    def test_post_promotion_writes_logged_for_future_standby(self, engine):
        load_sample(engine)
        engine.promote_standby()
        lsn_before = engine.txns.wal.last_lsn
        engine.connect().execute("INSERT INTO t VALUES (888, 'logged')")
        assert engine.txns.wal.last_lsn > lsn_before
