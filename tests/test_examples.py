"""The examples must stay runnable: each executes in a subprocess.

(hawq_vs_stinger.py is exercised by the benchmark suite's machinery and
takes ~30s, so it is excluded from the unit-test pass.)
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "data_lake_analytics.py",
    "fault_tolerance_demo.py",
    "interconnect_study.py",
    "storage_design_tour.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should print their story"


def test_expected_story_beats():
    """Spot-check that key claims appear in example output."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert "direct dispatch" in result.stdout
    assert "simulated execution time" in result.stdout
