"""Row vs batch executor differential testing.

The vectorized path must be a pure performance change: for every query,
both executors must produce *identical* rows (same values, same order)
and charge the *identical* simulated cost. TPC-H supplies the workload
breadth; the executor query list covers the operator corner cases
(NULL handling, three-valued logic, joins, sorts, LIMIT abandonment).
"""

import datetime

import pytest

from repro import Engine
from repro.tpch import QUERIES, generate, load_tpch

SCALE = 0.001


@pytest.fixture(scope="module")
def data():
    return generate(SCALE, seed=77)


def _tpch_session(data, mode):
    engine = Engine(
        num_segment_hosts=4, segments_per_host=1, executor_mode=mode
    )
    session = engine.connect()
    load_tpch(session, scale=SCALE, data=data)
    return session


@pytest.fixture(scope="module")
def row_tpch(data):
    return _tpch_session(data, "row")


@pytest.fixture(scope="module")
def batch_tpch(data):
    return _tpch_session(data, "batch")


def _run_tpch(session, number):
    result = None
    for stmt in QUERIES[number]:
        r = session.execute(stmt)
        if r.plan is not None:
            result = r
    assert result is not None
    return result


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_tpch_row_vs_batch_identical(row_tpch, batch_tpch, number):
    a = _run_tpch(row_tpch, number)
    b = _run_tpch(batch_tpch, number)
    assert a.column_names == b.column_names
    assert a.rows == b.rows  # exact: values AND order
    # The batch path mirrors every cost-model charging site of the row
    # path, so the simulated clock must agree to the last float bit —
    # both the critical path through the task DAG and the total.
    assert a.makespan == b.makespan
    assert a.cost.seconds == b.cost.seconds


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_tpch_makespan_matches_rederived_critical_path(batch_tpch, number):
    """The reported makespan must equal a critical path independently
    re-derived from the per-task timings and the plan's slice tree.

    Tasks in a gang share one duration (the gang mean — per-segment
    imbalance at a tiny scale factor is sampling noise), every motion
    edge charges one interconnect latency, and a segment's worker runs
    one task at a time in dispatch order — so a task starts at
    ``max(children finish + latency, when its segment frees up)``."""
    result = _run_tpch(batch_tpch, number)
    plan = result.plan
    model = batch_tpch.engine.cost_model
    finish = {}
    avail = {}  # segment -> simulated time its worker becomes free
    for plan_slice in plan.slices:  # children-first == dispatch order
        timing = result.slices[plan_slice.slice_id]
        mean = sum(t.seconds for t in timing.tasks.values()) / len(timing.tasks)
        barrier = max(
            (finish[c] + model.net_latency for c in plan_slice.child_slices),
            default=0.0,
        )
        slice_finish = 0.0
        for segment in timing.tasks:
            done = max(barrier, avail.get(segment, 0.0)) + mean
            avail[segment] = done
            slice_finish = max(slice_finish, done)
        finish[plan_slice.slice_id] = slice_finish
        assert timing.finish == pytest.approx(slice_finish, rel=1e-9)
    expected = finish[plan.top_slice.slice_id]
    assert result.makespan == pytest.approx(expected, rel=1e-9)
    assert result.cost.seconds == pytest.approx(
        result.makespan + result.overhead_seconds, rel=1e-9
    )


# --------------------------------------------------------- operator corpus

EXECUTOR_QUERIES = [
    "SELECT * FROM nums",
    "SELECT a, b FROM nums WHERE b IS NULL",
    "SELECT a FROM nums WHERE b > 20 AND t IS NOT NULL",
    "SELECT a, b * 2 + 1, f / 2 FROM nums WHERE a % 3 = 0",
    "SELECT t, count(*), sum(b), avg(f) FROM nums GROUP BY t",
    "SELECT count(b), count(*), min(d), max(d) FROM nums",
    "SELECT a FROM nums ORDER BY b DESC NULLS FIRST, a LIMIT 7",
    "SELECT t, a FROM nums ORDER BY t NULLS LAST, a DESC",
    "SELECT a FROM nums WHERE t LIKE 'str%' ORDER BY a LIMIT 5",
    "SELECT a, CASE WHEN b IS NULL THEN -1 WHEN b > 40 THEN 1 ELSE 0 END"
    " FROM nums ORDER BY a",
    "SELECT a FROM nums WHERE a IN (1, 3, 5, 99) ORDER BY a",
    "SELECT a FROM nums WHERE b IN (SELECT a FROM nums WHERE a < 10)"
    " ORDER BY a",
    "SELECT n1.a, n2.b FROM nums n1 JOIN nums n2 ON n1.a = n2.b"
    " ORDER BY n1.a",
    "SELECT n1.a, n2.a FROM nums n1 LEFT JOIN nums n2 ON n1.b = n2.a"
    " ORDER BY n1.a, n2.a NULLS LAST",
    "SELECT coalesce(b, -a), nullif(a, 5) FROM nums ORDER BY a",
    "SELECT upper(t), length(t), substring(t from 2 for 2) FROM nums"
    " WHERE t IS NOT NULL ORDER BY a",
    "SELECT extract(year from d), count(*) FROM nums"
    " GROUP BY extract(year from d) ORDER BY 1",
    "SELECT CAST(a AS TEXT) || '-' || CAST(f AS TEXT) FROM nums"
    " WHERE a < 4 ORDER BY a",
    "SELECT a FROM nums WHERE d > DATE '1995-06-01' ORDER BY a LIMIT 3",
    "SELECT b, f FROM nums WHERE NOT (b < 30 OR b IS NULL) ORDER BY a",
    "SELECT DISTINCT t FROM nums",
    "SELECT t, sum(a) FROM nums WHERE f < 10 GROUP BY t"
    " HAVING count(*) > 2 ORDER BY t NULLS LAST",
]


def _nums_session(mode):
    engine = Engine(
        num_segment_hosts=2, segments_per_host=2, executor_mode=mode
    )
    s = engine.connect()
    s.execute(
        "CREATE TABLE nums (a INT NOT NULL, b INT, t TEXT, d DATE, f FLOAT) "
        "DISTRIBUTED BY (a)"
    )
    schema = s.engine.catalog.get_schema(
        "nums", s.engine.txns.begin().statement_snapshot()
    )
    rows = []
    for i in range(40):
        rows.append(
            (
                i,
                None if i % 7 == 0 else i * 2,
                None if i % 11 == 0 else f"str{i % 4}",
                datetime.date(1995, 1, 1) + datetime.timedelta(days=i * 17),
                i / 3.0,
            )
        )
    s.load_rows("nums", [schema.coerce_row(r) for r in rows])
    return s


@pytest.fixture(scope="module")
def row_nums():
    return _nums_session("row")


@pytest.fixture(scope="module")
def batch_nums():
    return _nums_session("batch")


@pytest.mark.parametrize("sql", EXECUTOR_QUERIES)
def test_executor_row_vs_batch_identical(row_nums, batch_nums, sql):
    a = row_nums.execute(sql)
    b = batch_nums.execute(sql)
    assert a.rows == b.rows
    assert a.cost.seconds == b.cost.seconds
