"""Tests for the Stinger (Hive-on-MapReduce) baseline engine."""

import pytest

from repro.baselines import StingerEngine
from repro.catalog.schema import Column, DataType, Distribution, TableSchema


def schema(name, cols, types=None):
    types = types or ["INT"] * len(cols)
    return TableSchema(
        name=name,
        columns=[Column(c, DataType.parse(t)) for c, t in zip(cols, types)],
        distribution=Distribution.random(),
    )


@pytest.fixture
def engine():
    stinger = StingerEngine(num_nodes=2, containers_per_node=2, scale=10.0)
    stinger.load_table(
        schema("t", ["a", "b", "c"]),
        [(i, i % 3, i * 10) for i in range(30)],
    )
    stinger.load_table(
        schema("s", ["x", "label"], ["INT", "TEXT"]),
        [(0, "zero"), (1, "one"), (2, "two")],
    )
    return stinger


class TestQueries:
    def test_scan_filter_project(self, engine):
        result = engine.execute("SELECT a FROM t WHERE a < 3 ORDER BY a")
        assert result.rows == [(0,), (1,), (2,)]
        assert result.seconds > 0

    def test_aggregation(self, engine):
        result = engine.execute(
            "SELECT b, count(*), sum(c) FROM t GROUP BY b ORDER BY b"
        )
        assert result.rows[0][0] == 0
        assert sum(r[1] for r in result.rows) == 30

    def test_join(self, engine):
        result = engine.execute(
            "SELECT label, count(*) FROM t, s WHERE b = x "
            "GROUP BY label ORDER BY label"
        )
        assert len(result.rows) == 3

    def test_order_by_single_reducer(self, engine):
        result = engine.execute("SELECT a FROM t ORDER BY a DESC LIMIT 3")
        assert result.rows == [(29,), (28,), (27,)]
        sort_jobs = [j for j in result.jobs if j.name == "order-by"]
        assert sort_jobs and sort_jobs[0].reduce_tasks == 1

    def test_each_stage_is_a_job(self, engine):
        """Rule-based Hive: join + group-by + order-by = separate jobs."""
        result = engine.execute(
            "SELECT label, count(*) FROM t, s WHERE b = x "
            "GROUP BY label ORDER BY label"
        )
        names = [j.name for j in result.jobs]
        assert any("join" in n for n in names)
        assert "group-by" in names
        assert "order-by" in names

    def test_views(self, engine):
        engine.execute("CREATE VIEW v AS SELECT a, b FROM t WHERE a < 10")
        result = engine.execute("SELECT count(*) FROM v")
        assert result.rows == [(10,)]
        engine.execute("DROP VIEW v")

    def test_scalar_subquery(self, engine):
        result = engine.execute(
            "SELECT count(*) FROM t WHERE a > (SELECT avg(a) FROM t)"
        )
        assert result.rows == [(15,)]

    def test_in_subquery(self, engine):
        result = engine.execute(
            "SELECT count(*) FROM t WHERE b IN (SELECT x FROM s WHERE x > 0)"
        )
        assert result.rows[0][0] == sum(1 for i in range(30) if i % 3 in (1, 2))

    def test_distinct(self, engine):
        result = engine.execute("SELECT DISTINCT b FROM t ORDER BY b")
        assert result.rows == [(0,), (1,), (2,)]

    def test_left_join(self, engine):
        engine.load_table(schema("small", ["x", "v"]), [(0, 100)])
        result = engine.execute(
            "SELECT count(*) FROM t LEFT JOIN small ON b = small.x"
        )
        assert result.rows == [(30,)]


class TestCosting:
    def test_map_join_for_small_tables(self, engine):
        result = engine.execute("SELECT count(*) FROM t, s WHERE b = x")
        assert any(j.name == "map-join" for j in result.jobs)

    def test_common_join_above_threshold(self):
        stinger = StingerEngine(num_nodes=2, containers_per_node=2, scale=2e5)
        stinger.load_table(
            schema("l", ["a", "b"]), [(i, i % 5) for i in range(200)]
        )
        stinger.load_table(
            schema("r", ["b", "v"]), [(i, i) for i in range(200)]
        )
        result = stinger.execute("SELECT count(*) FROM l, r WHERE l.b = r.b")
        assert any(j.name == "common-join" for j in result.jobs)

    def test_materialization_charged(self, engine):
        """Every job pays its own start-up: more stages = more seconds."""
        simple = engine.execute("SELECT a FROM t WHERE a = 1")
        complex_query = engine.execute(
            "SELECT label, count(*) FROM t, s WHERE b = x "
            "GROUP BY label ORDER BY label"
        )
        assert complex_query.seconds > simple.seconds
