"""Tests for PXF: the connector API, built-in connectors (HBase, text,
JSON, sequence files), filter pushdown, locality, and SQL over external
tables — including the paper's Section 6.1 examples."""

import pytest

from repro import Engine
from repro.catalog.schema import Column, DataType, Distribution, TableSchema
from repro.errors import PxfError
from repro.pxf import DataFragment, HBaseConnector, PushedFilter, SimulatedHBase
from repro.pxf.files import write_sequence_file
from repro.pxf.registry import PxfRegistry
from repro.simtime import CostAccumulator, CostModel


@pytest.fixture
def hbase():
    store = SimulatedHBase(region_servers=["rs0", "rs1"])
    store.create_table("sales", num_regions=3)
    for i in range(30):
        store.put(
            "sales",
            f"{20130101000000 + i}",
            {"details:storeid": i % 5, "details:price": 10.5 + i},
        )
    return store


class TestSimulatedHBase:
    def test_put_get(self, hbase):
        row = hbase.get("sales", "20130101000005")
        assert row["details:storeid"] == 0

    def test_put_updates(self, hbase):
        hbase.put("sales", "20130101000005", {"details:price": 99.0})
        row = hbase.get("sales", "20130101000005")
        assert row["details:price"] == 99.0
        assert row["details:storeid"] == 0  # merged, not replaced

    def test_missing_row(self, hbase):
        assert hbase.get("sales", "nope") is None

    def test_regions_cover_all_rows(self, hbase):
        regions = hbase.regions("sales")
        assert len(regions) == 3
        total = sum(
            len(list(hbase.scan_region("sales", r))) for r in regions
        )
        assert total == 30

    def test_regions_are_disjoint(self, hbase):
        regions = hbase.regions("sales")
        seen = []
        for region in regions:
            seen.extend(k for k, _ in hbase.scan_region("sales", region))
        assert len(seen) == len(set(seen))

    def test_unknown_table(self, hbase):
        with pytest.raises(PxfError):
            hbase.get("nope", "k")

    def test_duplicate_create(self, hbase):
        with pytest.raises(PxfError):
            hbase.create_table("sales")


class TestRegistry:
    def test_parse_location(self):
        registry = PxfRegistry()
        info = registry.parse_location(
            "pxf://pxf-svc/sales?profile=HBase&opt=1", "CUSTOM", {}
        )
        assert info["profile"] == "HBase"
        assert info["source"] == "sales"
        assert info["options"] == {"opt": "1"}

    def test_parse_location_requires_profile(self):
        registry = PxfRegistry()
        with pytest.raises(PxfError):
            registry.parse_location("pxf://svc/sales", "CUSTOM", {})

    def test_parse_location_requires_scheme(self):
        registry = PxfRegistry()
        with pytest.raises(PxfError):
            registry.parse_location("hdfs://svc/sales?profile=x", "CUSTOM", {})

    def test_unknown_profile(self):
        registry = PxfRegistry()
        with pytest.raises(PxfError, match="registered"):
            registry.connector("hbase")

    def test_locality_aware_assignment(self):
        registry = PxfRegistry()
        fragments = [
            DataFragment("s", 0, host="rs0"),
            DataFragment("s", 1, host="rs0"),
            DataFragment("s", 2, host="rs1"),
            DataFragment("s", 3, host=None),
        ]
        assignment = registry.assign_fragments(
            fragments, 3, segment_hosts={0: "rs0", 1: "rs1", 2: "rs2"}
        )
        assert {f.index for f in assignment[0]} == {0, 1}
        assert {f.index for f in assignment[1]} == {2}
        assert {f.index for f in assignment[2]} == {3}  # round robin

    def test_pushed_filter_semantics(self):
        f = PushedFilter(column="k", op=">=", value=10)
        assert f.matches(10) and f.matches(11) and not f.matches(9)
        assert not f.matches(None)


class TestExternalTablesSql:
    @pytest.fixture
    def engine(self, hbase):
        engine = Engine(num_segment_hosts=2, segments_per_host=2)
        engine.pxf.register(HBaseConnector(hbase))
        return engine

    def test_paper_example_select(self, engine):
        """The paper's Section 6.1 query, verbatim shape."""
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE my_hbase_sales (
                recordkey INT8,
                "details:storeid" INT,
                "details:price" DOUBLE PRECISION)
            LOCATION ('pxf://pxf-svc/sales?profile=HBase')
            FORMAT 'CUSTOM' (formatter='pxfwritable_import')
            """
        )
        rows = session.query(
            'SELECT sum("details:price") FROM my_hbase_sales '
            "WHERE recordkey < 20130101000010"
        )
        assert rows[0][0] == pytest.approx(sum(10.5 + i for i in range(10)))

    def test_paper_example_join_with_internal_table(self, engine):
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE my_hbase_sales (
                recordkey INT8,
                "details:storeid" INT,
                "details:price" DOUBLE PRECISION)
            LOCATION ('pxf://pxf-svc/sales?profile=HBase')
            FORMAT 'CUSTOM' (formatter='pxfwritable_import')
            """
        )
        session.execute("CREATE TABLE stores (id INT, name TEXT) DISTRIBUTED BY (id)")
        session.execute(
            "INSERT INTO stores VALUES (0,'zero'), (1,'one'), (2,'two'), "
            "(3,'three'), (4,'four')"
        )
        rows = session.query(
            'SELECT s.name, count(*) FROM stores s, my_hbase_sales h '
            'WHERE s.id = h."details:storeid" GROUP BY s.name ORDER BY s.name'
        )
        assert len(rows) == 5
        assert sum(r[1] for r in rows) == 30

    def test_analyze_external_table(self, engine):
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE e (recordkey INT8, "details:price" FLOAT)
            LOCATION ('pxf://svc/sales?profile=HBase') FORMAT 'CUSTOM' ()
            """
        )
        session.execute("ANALYZE e")
        snapshot = engine.txns.begin().statement_snapshot()
        stats = engine.catalog.get_stats("e", snapshot)
        assert stats.row_count == 30


class TestFileConnectors:
    @pytest.fixture
    def engine(self):
        return Engine(num_segment_hosts=2, segments_per_host=1)

    def schema(self):
        return TableSchema(
            name="ext",
            columns=[
                Column("id", DataType.parse("INT")),
                Column("name", DataType.parse("TEXT")),
                Column("amount", DataType.parse("DECIMAL(10,2)")),
            ],
            distribution=Distribution.random(),
        )

    def test_text_connector(self, engine):
        client = engine.hdfs.client()
        client.write_file(
            "/ext/data.tbl", b"1|alpha|10.5\n2|beta|20.25\n3||30.0\n"
        )
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE ext (id INT, name TEXT, amount DECIMAL(10,2))
            LOCATION ('pxf://svc/ext/data.tbl?profile=HdfsTextSimple')
            FORMAT 'TEXT' ()
            """
        )
        rows = session.query("SELECT id, name, amount FROM ext ORDER BY id")
        assert rows == [(1, "alpha", 10.5), (2, "beta", 20.25), (3, None, 30.0)]

    def test_json_connector(self, engine):
        client = engine.hdfs.client()
        client.write_file(
            "/ext/data.json",
            b'{"id": 1, "name": "a"}\n{"id": 2}\n',
        )
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE ej (id INT, name TEXT)
            LOCATION ('pxf://svc/ext/data.json?profile=json') FORMAT 'CUSTOM' ()
            """
        )
        rows = session.query("SELECT id, name FROM ej ORDER BY id")
        assert rows == [(1, "a"), (2, None)]

    def test_sequence_file_connector(self, engine):
        schema = self.schema()
        count = write_sequence_file(
            engine.hdfs,
            "/ext/data.seq",
            [(1, "x", 5.0), (2, "y", 6.0)],
            schema,
        )
        assert count == 2
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE es (id INT, name TEXT, amount DECIMAL(10,2))
            LOCATION ('pxf://svc/ext/data.seq?profile=SequenceFile')
            FORMAT 'CUSTOM' ()
            """
        )
        assert session.query("SELECT count(*) FROM es") == [(2,)]

    def test_missing_files(self, engine):
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE missing (id INT)
            LOCATION ('pxf://svc/no/such?profile=HdfsTextSimple') FORMAT 'TEXT' ()
            """
        )
        with pytest.raises(PxfError):
            session.query("SELECT * FROM missing")

    def test_every_row_read_exactly_once_across_segments(self, engine):
        """Striping must neither drop nor duplicate records."""
        client = engine.hdfs.client()
        lines = "".join(f"{i}|n{i}|1.0\n" for i in range(50))
        client.write_file("/ext/big.tbl", lines.encode())
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE eb (id INT, name TEXT, amount FLOAT)
            LOCATION ('pxf://svc/ext/big.tbl?profile=HdfsTextSimple')
            FORMAT 'TEXT' ()
            """
        )
        rows = session.query("SELECT id FROM eb ORDER BY id")
        assert [r[0] for r in rows] == list(range(50))


class TestGemFireConnector:
    """Section 6.2's scenario: analyze in-memory operational data."""

    @pytest.fixture
    def engine(self):
        from repro.pxf.gemfire import GemFireConnector, SimulatedGemFireXD

        store = SimulatedGemFireXD(members=["gem0", "gem1"])
        store.create_table("trades", ["trade_id", "symbol", "qty"], num_buckets=4)
        store.put_all(
            "trades",
            [(i, "AAPL" if i % 2 else "MSFT", i * 10) for i in range(1, 41)],
        )
        engine = Engine(num_segment_hosts=2, segments_per_host=2)
        engine.pxf.register(GemFireConnector(store))
        self.store = store
        return engine

    def test_query_in_place(self, engine):
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE trades (trade_id INT, symbol TEXT, qty INT)
            LOCATION ('pxf://svc/trades?profile=GemFireXD') FORMAT 'CUSTOM' ()
            """
        )
        rows = session.query(
            "SELECT symbol, sum(qty) FROM trades GROUP BY symbol ORDER BY symbol"
        )
        assert rows == [
            ("AAPL", sum(i * 10 for i in range(1, 41) if i % 2)),
            ("MSFT", sum(i * 10 for i in range(1, 41) if not i % 2)),
        ]

    def test_exact_filter_pushdown(self, engine):
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE trades (trade_id INT, symbol TEXT, qty INT)
            LOCATION ('pxf://svc/trades?profile=GemFireXD') FORMAT 'CUSTOM' ()
            """
        )
        rows = session.query("SELECT count(*) FROM trades WHERE qty >= 300")
        assert rows == [(11,)]

    def test_join_operational_with_warehouse(self, engine):
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE trades (trade_id INT, symbol TEXT, qty INT)
            LOCATION ('pxf://svc/trades?profile=GemFireXD') FORMAT 'CUSTOM' ()
            """
        )
        session.execute(
            "CREATE TABLE companies (symbol TEXT, sector TEXT) DISTRIBUTED RANDOMLY"
        )
        session.execute(
            "INSERT INTO companies VALUES ('AAPL', 'tech'), ('MSFT', 'tech')"
        )
        rows = session.query(
            "SELECT c.sector, count(*) FROM trades t, companies c "
            "WHERE t.symbol = c.symbol GROUP BY c.sector"
        )
        assert rows == [("tech", 40)]

    def test_buckets_spread_over_members(self, engine):
        from repro.pxf.gemfire import GemFireFragmenter

        fragments = GemFireFragmenter(self.store).fragments("trades")
        assert {f.host for f in fragments} == {"gem0", "gem1"}

    def test_analyze(self, engine):
        session = engine.connect()
        session.execute(
            """
            CREATE EXTERNAL TABLE trades (trade_id INT, symbol TEXT, qty INT)
            LOCATION ('pxf://svc/trades?profile=GemFireXD') FORMAT 'CUSTOM' ()
            """
        )
        session.execute("ANALYZE trades")
        snapshot = engine.txns.begin().statement_snapshot()
        assert engine.catalog.get_stats("trades", snapshot).row_count == 40
