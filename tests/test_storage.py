"""Tests for the storage formats (AO/CO/Parquet) and compression."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Column, DataType, Distribution, TableSchema
from repro.errors import StorageError
from repro.hdfs import Hdfs
from repro.storage import available_codecs, get_codec, get_format, list_formats
from repro.storage.base import ScanStats
from repro.storage.compression import _rle_compress, _rle_decompress


def make_fs():
    fs = Hdfs(block_size=2048, replication=2, seed=3)
    for host in ("h1", "h2"):
        fs.add_datanode(host)
    return fs


SCHEMA = TableSchema(
    name="t",
    columns=[
        Column("k", DataType.parse("INT8"), not_null=True),
        Column("price", DataType.parse("DECIMAL(12,2)")),
        Column("day", DataType.parse("DATE")),
        Column("note", DataType.parse("VARCHAR(40)")),
        Column("flag", DataType.parse("BOOL")),
    ],
    distribution=Distribution.hash("k"),
)


def sample_rows(n=500):
    return [
        SCHEMA.coerce_row(
            (
                i,
                round(i * 1.25, 2) if i % 11 else None,
                datetime.date(1995, 1 + i % 12, 1 + i % 28),
                f"note-{i}" if i % 5 else None,
                i % 2 == 0,
            )
        )
        for i in range(n)
    ]


class TestCodecs:
    def test_registry(self):
        assert "quicklz" in available_codecs()
        assert "zlib9" in available_codecs()
        with pytest.raises(StorageError):
            get_codec("lz77")

    def test_level_aliasing(self):
        assert get_codec("zlib", 5).name == "zlib5"
        assert get_codec("gzip").name == "gzip1"

    @given(data=st.binary(max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_all_codecs(self, data):
        for name in available_codecs():
            codec = get_codec(name)
            assert codec.decompress(codec.compress(data)) == data

    def test_rle_corrupt_stream(self):
        with pytest.raises(StorageError):
            _rle_decompress(b"\x01\x02")  # not a multiple of 3

    def test_rle_compresses_runs(self):
        data = b"a" * 5000
        assert len(_rle_compress(data)) < 100

    def test_cost_ordering(self):
        """Heavier codecs must cost more CPU (Fig 11's premise)."""
        assert get_codec("none").decompress_cost == 0
        assert (
            get_codec("quicklz").decompress_cost
            < get_codec("zlib1").decompress_cost
            < get_codec("zlib5").decompress_cost
            < get_codec("zlib9").decompress_cost
        )


class TestFormats:
    @pytest.mark.parametrize("fmt_name", ["ao", "co", "parquet"])
    @pytest.mark.parametrize("codec", ["none", "quicklz", "zlib9", "rle"])
    def test_roundtrip(self, fmt_name, codec):
        fs = make_fs()
        client = fs.client("h1")
        fmt = get_format(fmt_name)
        rows = sample_rows()
        result = fmt.write(client, "/t/f0", rows, SCHEMA, codec)
        assert result.tupcount == len(rows)
        out = list(fmt.scan(client, dict(result.paths), SCHEMA, codec))
        assert out == rows

    @pytest.mark.parametrize("fmt_name", ["co", "parquet"])
    def test_projection_reads_fewer_bytes(self, fmt_name):
        fs = make_fs()
        client = fs.client("h1")
        fmt = get_format(fmt_name)
        rows = sample_rows()
        result = fmt.write(client, "/t/f0", rows, SCHEMA, "none")
        full, proj = ScanStats(), ScanStats()
        list(fmt.scan(client, dict(result.paths), SCHEMA, "none", stats=full))
        out = list(
            fmt.scan(
                client, dict(result.paths), SCHEMA, "none", columns=[0], stats=proj
            )
        )
        assert proj.compressed_bytes < full.compressed_bytes / 2
        assert [r[0] for r in out] == [r[0] for r in rows]
        # unprojected columns come back as None placeholders
        assert all(r[3] is None for r in out)

    def test_ao_projection_reads_everything(self):
        """AO is row-oriented: it cannot skip columns (Fig 11's point)."""
        fs = make_fs()
        client = fs.client("h1")
        fmt = get_format("ao")
        result = fmt.write(client, "/t/f0", sample_rows(), SCHEMA, "none")
        full, proj = ScanStats(), ScanStats()
        list(fmt.scan(client, dict(result.paths), SCHEMA, "none", stats=full))
        list(fmt.scan(client, dict(result.paths), SCHEMA, "none", columns=[0], stats=proj))
        assert proj.compressed_bytes == full.compressed_bytes

    @pytest.mark.parametrize("fmt_name", ["ao", "co", "parquet"])
    def test_append(self, fmt_name):
        fs = make_fs()
        client = fs.client("h1")
        fmt = get_format(fmt_name)
        rows = sample_rows(100)
        first = fmt.write(client, "/t/f0", rows[:60], SCHEMA, "quicklz")
        second = fmt.write(
            client, "/t/f0", rows[60:], SCHEMA, "quicklz", append=True
        )
        out = list(fmt.scan(client, dict(second.paths), SCHEMA, "quicklz"))
        assert out == rows

    @pytest.mark.parametrize("fmt_name", ["ao", "co", "parquet"])
    def test_logical_length_visibility(self, fmt_name):
        """Scanning with the OLD logical lengths must not see appended
        rows — this is how transaction snapshots isolate user data."""
        fs = make_fs()
        client = fs.client("h1")
        fmt = get_format(fmt_name)
        rows = sample_rows(100)
        first = fmt.write(client, "/t/f0", rows[:60], SCHEMA, "none")
        fmt.write(client, "/t/f0", rows[60:], SCHEMA, "none", append=True)
        out = list(fmt.scan(client, dict(first.paths), SCHEMA, "none"))
        assert out == rows[:60]

    @pytest.mark.parametrize("fmt_name", ["ao", "co", "parquet"])
    def test_empty_write(self, fmt_name):
        fs = make_fs()
        client = fs.client("h1")
        fmt = get_format(fmt_name)
        result = fmt.write(client, "/t/f0", [], SCHEMA, "none")
        assert result.tupcount == 0
        assert list(fmt.scan(client, dict(result.paths), SCHEMA, "none")) == []

    def test_column_formats_compress_better(self):
        fs = make_fs()
        client = fs.client("h1")
        rows = sample_rows(1000)
        sizes = {}
        for fmt_name in ("ao", "co"):
            result = get_format(fmt_name).write(
                client, f"/{fmt_name}/f0", rows, SCHEMA, "zlib1"
            )
            sizes[fmt_name] = sum(result.paths.values())
        assert sizes["co"] < sizes["ao"]

    def test_unknown_format(self):
        with pytest.raises(StorageError):
            get_format("orc2")

    def test_list_formats(self):
        assert list_formats() == ["ao", "co", "parquet"]

    def test_corrupt_block_detected(self):
        fs = make_fs()
        client = fs.client("h1")
        fmt = get_format("ao")
        result = fmt.write(client, "/t/f0", sample_rows(10), SCHEMA, "none")
        client2 = fs.client("h1")
        data = client2.read_file("/t/f0")
        client2.delete("/t/f0")
        client2.write_file("/t/f0", b"\x00\x00" + data[2:])
        with pytest.raises(StorageError):
            list(fmt.scan(client2, dict(result.paths), SCHEMA, "none"))


@st.composite
def random_rows(draw):
    n = draw(st.integers(0, 60))
    rows = []
    for i in range(n):
        rows.append(
            (
                draw(st.integers(-(2**40), 2**40)),
                draw(st.one_of(st.none(), st.floats(-1e6, 1e6))),
                draw(
                    st.dates(
                        min_value=datetime.date(1970, 1, 1),
                        max_value=datetime.date(2100, 1, 1),
                    )
                ),
                draw(st.one_of(st.none(), st.text(max_size=30))),
                draw(st.booleans()),
            )
        )
    return rows


class TestPropertyRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(rows=random_rows())
    def test_all_formats_roundtrip_random_rows(self, rows):
        fs = make_fs()
        client = fs.client("h1")
        coerced = [SCHEMA.coerce_row(r) for r in rows]
        for fmt_name in ("ao", "co", "parquet"):
            fmt = get_format(fmt_name)
            result = fmt.write(
                client, f"/{fmt_name}/p", coerced, SCHEMA, "quicklz"
            )
            out = list(fmt.scan(client, dict(result.paths), SCHEMA, "quicklz"))
            assert out == coerced
            client.delete(f"/{fmt_name}/p") if fmt_name != "co" else None
            for path in result.paths:
                if client.exists(path):
                    client.delete(path)
