"""Property tests: arbitrary constant expressions through the whole
pipeline (lexer -> parser -> analyzer -> compiler -> evaluation) must
agree with direct Python evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import compile_expr_value
from repro.errors import ExecutorError


@st.composite
def arithmetic(draw, depth=0):
    """A random integer-arithmetic expression and its Python value."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(-50, 50))
        if value < 0:
            return f"({value})", value
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*"]))
    left_text, left_val = draw(arithmetic(depth=depth + 1))
    right_text, right_val = draw(arithmetic(depth=depth + 1))
    value = {"+": left_val + right_val,
             "-": left_val - right_val,
             "*": left_val * right_val}[op]
    return f"({left_text} {op} {right_text})", value


@settings(max_examples=150, deadline=None)
@given(expr=arithmetic())
def test_constant_arithmetic_matches_python(expr):
    text, expected = expr
    assert compile_expr_value_sql(text) == expected


def compile_expr_value_sql(text):
    from repro.sql.parser import parse_statement

    stmt = parse_statement(f"SELECT {text}")
    return compile_expr_value(stmt.items[0].expr)


@st.composite
def comparisons(draw):
    left = draw(st.integers(-10, 10))
    right = draw(st.integers(-10, 10))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    python = {
        "=": left == right, "<>": left != right, "<": left < right,
        "<=": left <= right, ">": left > right, ">=": left >= right,
    }[op]
    return f"{left} {op} {right}", python


@settings(max_examples=100, deadline=None)
@given(expr=comparisons())
def test_constant_comparisons_match_python(expr):
    text, expected = expr
    assert compile_expr_value_sql(text) is expected


@settings(max_examples=60, deadline=None)
@given(
    items=st.lists(st.integers(-5, 5), min_size=1, max_size=5),
    probe=st.integers(-5, 5),
    negated=st.booleans(),
)
def test_in_list_matches_python(items, probe, negated):
    keyword = "NOT IN" if negated else "IN"
    text = f"{probe} {keyword} ({', '.join(map(str, items))})"
    expected = (probe in items) != negated
    assert compile_expr_value_sql(text) is expected


@settings(max_examples=60, deadline=None)
@given(
    condition=st.booleans(),
    then=st.integers(-9, 9),
    otherwise=st.integers(-9, 9),
)
def test_case_matches_python(condition, then, otherwise):
    text = (
        f"CASE WHEN {'true' if condition else 'false'} "
        f"THEN {then} ELSE {otherwise} END"
    )
    assert compile_expr_value_sql(text) == (then if condition else otherwise)


@settings(max_examples=60, deadline=None)
@given(
    text_value=st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
        max_size=12,
    ),
    start=st.integers(1, 6),
    length=st.integers(0, 6),
)
def test_substring_matches_python(text_value, start, length):
    sql = f"substring('{text_value}' from {start} for {length})"
    expected = text_value[start - 1 : start - 1 + length]
    assert compile_expr_value_sql(sql) == expected


def test_division_by_zero_raises():
    with pytest.raises(ExecutorError):
        compile_expr_value_sql("1 / 0")


@settings(max_examples=50, deadline=None)
@given(a=st.integers(-20, 20), b=st.integers(1, 20))
def test_division_matches_python_true_division(a, b):
    assert compile_expr_value_sql(f"{a} / {b}") == pytest.approx(a / b)
