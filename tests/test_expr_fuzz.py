"""Property tests: arbitrary constant expressions through the whole
pipeline (lexer -> parser -> analyzer -> compiler -> evaluation) must
agree with direct Python evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import compile_expr_value
from repro.errors import ExecutorError


@st.composite
def arithmetic(draw, depth=0):
    """A random integer-arithmetic expression and its Python value."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(-50, 50))
        if value < 0:
            return f"({value})", value
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*"]))
    left_text, left_val = draw(arithmetic(depth=depth + 1))
    right_text, right_val = draw(arithmetic(depth=depth + 1))
    value = {"+": left_val + right_val,
             "-": left_val - right_val,
             "*": left_val * right_val}[op]
    return f"({left_text} {op} {right_text})", value


@settings(max_examples=150, deadline=None)
@given(expr=arithmetic())
def test_constant_arithmetic_matches_python(expr):
    text, expected = expr
    assert compile_expr_value_sql(text) == expected


def compile_expr_value_sql(text):
    from repro.sql.parser import parse_statement

    stmt = parse_statement(f"SELECT {text}")
    return compile_expr_value(stmt.items[0].expr)


@st.composite
def comparisons(draw):
    left = draw(st.integers(-10, 10))
    right = draw(st.integers(-10, 10))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    python = {
        "=": left == right, "<>": left != right, "<": left < right,
        "<=": left <= right, ">": left > right, ">=": left >= right,
    }[op]
    return f"{left} {op} {right}", python


@settings(max_examples=100, deadline=None)
@given(expr=comparisons())
def test_constant_comparisons_match_python(expr):
    text, expected = expr
    assert compile_expr_value_sql(text) is expected


@settings(max_examples=60, deadline=None)
@given(
    items=st.lists(st.integers(-5, 5), min_size=1, max_size=5),
    probe=st.integers(-5, 5),
    negated=st.booleans(),
)
def test_in_list_matches_python(items, probe, negated):
    keyword = "NOT IN" if negated else "IN"
    text = f"{probe} {keyword} ({', '.join(map(str, items))})"
    expected = (probe in items) != negated
    assert compile_expr_value_sql(text) is expected


@settings(max_examples=60, deadline=None)
@given(
    condition=st.booleans(),
    then=st.integers(-9, 9),
    otherwise=st.integers(-9, 9),
)
def test_case_matches_python(condition, then, otherwise):
    text = (
        f"CASE WHEN {'true' if condition else 'false'} "
        f"THEN {then} ELSE {otherwise} END"
    )
    assert compile_expr_value_sql(text) == (then if condition else otherwise)


@settings(max_examples=60, deadline=None)
@given(
    text_value=st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
        max_size=12,
    ),
    start=st.integers(1, 6),
    length=st.integers(0, 6),
)
def test_substring_matches_python(text_value, start, length):
    sql = f"substring('{text_value}' from {start} for {length})"
    expected = text_value[start - 1 : start - 1 + length]
    assert compile_expr_value_sql(sql) == expected


def test_division_by_zero_raises():
    with pytest.raises(ExecutorError):
        compile_expr_value_sql("1 / 0")


@settings(max_examples=50, deadline=None)
@given(a=st.integers(-20, 20), b=st.integers(1, 20))
def test_division_matches_python_true_division(a, b):
    assert compile_expr_value_sql(f"{a} / {b}") == pytest.approx(a / b)


# ---------------------------------------------------------------------------
# Fuzzed expressions in row AND batch mode under a fault schedule: the
# differential invariant (identical rows, identical simulated cost) must
# hold even when every scan is reading around a dead DataNode and a dead
# segment's failover host.
# ---------------------------------------------------------------------------

from hypothesis import HealthCheck

from repro.chaos import FaultEvent, FaultInjector, FaultPlan
from repro.engine import Engine

FAULT_FUZZ_ROWS = [(i, (i * 7) % 23 - 11) for i in range(600)]


def _faulted_session(mode):
    """An engine in ``mode`` with a dead DataNode (scans must fall back
    to surviving replicas) and a dead segment (dispatch must use its
    failover assignment) — the same deterministic faults for both modes."""
    engine = Engine(
        num_segment_hosts=3,
        segments_per_host=2,
        seed=0,
        block_size=16 * 1024,
        executor_mode=mode,
    )
    session = engine.connect()
    session.execute("CREATE TABLE fuzz (a INTEGER, b INTEGER) DISTRIBUTED BY (a)")
    session.load_rows("fuzz", FAULT_FUZZ_ROWS)
    injector = FaultInjector(
        engine,
        FaultPlan(
            [
                FaultEvent(0.0, "kill_segment", 2),
                FaultEvent(0.0, "fail_datanode", "host0"),
            ]
        ),
    )
    engine.attach_chaos(injector)
    injector.drain()  # apply the faults before the fuzz queries
    session.query("SELECT count(*) FROM fuzz")  # dispatch assigns failover
    assert engine.segments[2].acting_host is not None
    assert not engine.hdfs.datanodes["host0"].alive
    return session


@pytest.fixture(scope="module")
def row_faulted():
    return _faulted_session("row")


@pytest.fixture(scope="module")
def batch_faulted():
    return _faulted_session("batch")


@st.composite
def column_arithmetic(draw, depth=0):
    """Arithmetic over the fuzz table's columns; the oracle is the other
    executor mode, not Python."""
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return draw(st.sampled_from(["a", "b"]))
        value = draw(st.integers(-20, 20))
        return f"({value})" if value < 0 else str(value)
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(column_arithmetic(depth=depth + 1))
    right = draw(column_arithmetic(depth=depth + 1))
    return f"({left} {op} {right})"


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(expr=column_arithmetic(), ascending=st.booleans())
def test_fuzzed_exprs_row_vs_batch_under_faults(
    row_faulted, batch_faulted, expr, ascending
):
    order = "ASC" if ascending else "DESC"
    sql = (
        f"SELECT a, {expr} FROM fuzz"
        f" WHERE ({expr}) % 5 <> 1 ORDER BY a {order}"
    )
    a = row_faulted.execute(sql)
    b = batch_faulted.execute(sql)
    assert a.rows == b.rows  # exact: values AND order
    assert a.cost.seconds == b.cost.seconds


def test_mid_query_restart_preserves_differential():
    """A segment killed mid-query forces a restart in both modes; the
    retried results must still match bit-for-bit, including the
    simulated backoff charge."""
    results = {}
    for mode in ("row", "batch"):
        engine = Engine(
            num_segment_hosts=3,
            segments_per_host=2,
            seed=0,
            block_size=16 * 1024,
            executor_mode=mode,
        )
        session = engine.connect()
        session.execute(
            "CREATE TABLE fuzz (a INTEGER, b INTEGER) DISTRIBUTED BY (a)"
        )
        session.load_rows("fuzz", FAULT_FUZZ_ROWS)
        engine.attach_chaos(
            FaultInjector(
                engine, FaultPlan([FaultEvent(1e-9, "kill_segment", 1)])
            )
        )
        results[mode] = session.execute(
            "SELECT count(*), sum(b), min(a * b) FROM fuzz"
        )
        assert results[mode].retries >= 1
    assert results["row"].rows == results["batch"].rows
    assert results["row"].cost.seconds == results["batch"].cost.seconds
