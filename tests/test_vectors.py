"""Typed column vectors: unit tests, backend parity, and query-level
edge cases for the vectorized execution path.

Covers the contracts the differential suite leans on:

* vectors hand out Python scalars only (never NumPy scalars),
* NULLs ride an explicit mask (or code -1 for dictionary columns),
* the NumPy and pure-python ``array`` backends are interchangeable,
* selection vectors, all-NULL columns, 0/1-row batches at storage block
  boundaries, and dictionary columns crossing motions all round-trip
  bit-identically between the row and batch executors, and
* compiled kernels are memoized per (plan node, layout) on the engine.
"""

import datetime

import pytest

from repro import Engine
from repro.catalog.schema import Column, DataType, TypeKind
from repro.columnar import vector
from repro.columnar.vector import (
    ConstVector,
    bool_vector,
    dict_vector,
    float_vector,
    int_vector,
    true_selection,
)
from repro.storage.base import decode_column, encode_column


def force_fallback(monkeypatch):
    """Route all vector construction + kernels to the array backend."""
    monkeypatch.setattr(vector, "_np", None)


# ---------------------------------------------------------------- unit tests


class TestVectorBasics:
    def test_python_scalars_only(self):
        iv = int_vector([1, 2, 3])
        fv = float_vector([0.5, 1.5])
        assert [type(v) for v in iv] == [int, int, int]
        assert [type(v) for v in fv] == [float, float]
        assert type(iv[0]) is int and type(fv[1]) is float

    def test_null_mask(self):
        iv = int_vector([1, 0, 3], mask=[False, True, False])
        assert iv.tolist() == [1, None, 3]
        assert iv[1] is None and iv[2] == 3
        assert iv.has_nulls

    def test_empty_vector(self):
        iv = int_vector([])
        assert len(iv) == 0 and iv.tolist() == []
        assert not iv.has_nulls
        assert iv.take([]).tolist() == []

    def test_take_and_gather(self):
        fv = float_vector([0.0, 1.0, 2.0, 3.0], mask=[False, True, False, False])
        taken = fv.take([3, 1])
        assert type(taken) is type(fv)
        assert taken.tolist() == [3.0, None]
        assert fv.gather([0, 2]) == [0.0, 2.0]

    def test_dict_vector(self):
        dv = dict_vector([0, 1, -1, 0], ["a", "b"])
        assert dv.tolist() == ["a", "b", None, "a"]
        assert dv[2] is None and dv[3] == "a"
        assert dv.has_nulls
        taken = dv.take([0, 2])
        assert taken.tolist() == ["a", None]
        assert taken.dictionary is dv.dictionary  # shared, not copied
        assert dv.code_lut(str.upper) == ["A", "B"]

    def test_dict_strings_are_shared_objects(self):
        dv = dict_vector([0, 0, 0], ["shared"])
        a, b, c = dv.tolist()
        assert a is b is c  # one decoded str, not three

    def test_const_vector(self):
        cv = ConstVector(None, 4)
        assert len(cv) == 4 and cv.tolist() == [None] * 4
        assert cv.take([1, 2]).n == 2
        assert cv.gather([0, 3]) == [None, None]

    def test_bool_vector_three_valued(self):
        bv = bool_vector([True, False, True], mask=[False, False, True])
        assert bv.tolist() == [True, False, None]

    def test_true_selection_dense_and_selected(self):
        bv = bool_vector([True, False, True], mask=[False, False, True])
        assert true_selection(bv, 3, None) == [0]
        # mask aligned with a selection: results map back to input rows
        assert true_selection(bv, 10, [4, 6, 8]) == [4]
        assert true_selection([True, None, True], 3, None) == [0, 2]

    def test_true_selection_returns_python_ints(self):
        sel = true_selection(bool_vector([True, True]), 2, None)
        assert sel == [0, 1]
        assert all(type(i) is int for i in sel)


def _roundtrip(values, column):
    payload = bytearray()
    encode_column(values, column, payload)
    decoded, _ = decode_column(bytes(payload), 0, len(values), column)
    return decoded


INT_COL = Column("a", DataType(TypeKind.INT8))
FLOAT_COL = Column("f", DataType(TypeKind.FLOAT8))
TEXT_COL = Column("t", DataType(TypeKind.TEXT))


class TestDecodeRoundTrip:
    @pytest.mark.parametrize("fallback", [False, True])
    def test_int_with_nulls(self, monkeypatch, fallback):
        if fallback:
            force_fallback(monkeypatch)
        values = [5, None, -(2**62), None, 0]
        vec = _roundtrip(values, INT_COL)
        assert vec.tolist() == values
        if fallback or vector.numpy_module() is None:
            assert not vec.is_numpy()
        else:
            assert vec.is_numpy()

    @pytest.mark.parametrize("fallback", [False, True])
    def test_float_dense(self, monkeypatch, fallback):
        if fallback:
            force_fallback(monkeypatch)
        values = [0.0, -1.5, 3.25e300]
        vec = _roundtrip(values, FLOAT_COL)
        assert vec.tolist() == values
        assert vec.mask is None

    @pytest.mark.parametrize("fallback", [False, True])
    def test_text_dictionary(self, monkeypatch, fallback):
        if fallback:
            force_fallback(monkeypatch)
        values = ["x", "y", None, "x", "y", "x"]
        vec = _roundtrip(values, TEXT_COL)
        assert vec.tolist() == values
        # Repeats dedup onto one dictionary entry.
        assert sorted(vec.dictionary) == ["x", "y"]

    def test_all_null_column(self):
        values = [None, None, None]
        assert _roundtrip(values, INT_COL).tolist() == values
        assert _roundtrip(values, TEXT_COL).tolist() == values

    def test_empty_column(self):
        assert _roundtrip([], FLOAT_COL).tolist() == []


# ------------------------------------------------------------- query corpus


def _session(mode, *, rows, num_hosts=2, per_host=2):
    engine = Engine(
        num_segment_hosts=num_hosts, segments_per_host=per_host,
        executor_mode=mode,
    )
    s = engine.connect()
    s.execute(
        "CREATE TABLE vt (a INT NOT NULL, b INT, t TEXT, f FLOAT) "
        "DISTRIBUTED BY (a)"
    )
    s.load_rows("vt", rows)
    return s


def _edge_rows(n):
    return [
        (
            i,
            None,  # all-NULL int column
            None if i % 5 == 0 else f"tag{i % 3}",
            i / 7.0,
        )
        for i in range(n)
    ]


EDGE_QUERIES = [
    # Empty selection: no row survives, on every segment.
    "SELECT a, t FROM vt WHERE a < 0",
    # All-NULL column through filter, aggregation, and output.
    "SELECT b FROM vt WHERE b IS NULL ORDER BY a",
    "SELECT count(b), count(*), sum(b), avg(b) FROM vt",
    # Dictionary columns through group-by and motions.
    "SELECT t, count(*), sum(a) FROM vt GROUP BY t ORDER BY t NULLS LAST",
    # Dictionary columns as join keys (redistribute motion round-trip).
    "SELECT x.a, y.t FROM vt x JOIN vt y ON x.t = y.t"
    " WHERE x.a < 9 ORDER BY x.a, y.a",
    # Selection + late materialization + LIMIT abandonment.
    "SELECT t, f FROM vt WHERE f > 1.0 ORDER BY a LIMIT 3",
]


@pytest.mark.parametrize("nrows", [0, 1, 1023, 1024, 1025])
def test_block_boundary_row_counts(nrows):
    """0/1-row tables and batches straddling the 1024-row block edge."""
    rows = _edge_rows(nrows)
    row_s = _session("row", rows=rows)
    batch_s = _session("batch", rows=rows)
    for sql in EDGE_QUERIES:
        a = row_s.execute(sql)
        b = batch_s.execute(sql)
        assert a.rows == b.rows, sql
        assert a.cost.seconds == b.cost.seconds, sql


def test_dict_column_crosses_motion_intact():
    """Strings from dictionary vectors must hash/route/compare exactly
    like row-path strings across a redistribute motion."""
    rows = [(i, i % 2, f"k{i % 13}", float(i)) for i in range(200)]
    row_s = _session("row", rows=rows)
    batch_s = _session("batch", rows=rows)
    sql = (
        "SELECT t, count(*), sum(a) FROM vt GROUP BY t ORDER BY t"
    )
    a = row_s.execute(sql)
    b = batch_s.execute(sql)
    assert a.rows == b.rows
    assert a.cost.seconds == b.cost.seconds
    assert len(b.rows) == 13


# -------------------------------------------------------- backend parity


def test_numpy_vs_fallback_full_corpus(monkeypatch):
    """The pure-python array backend must match the NumPy backend on the
    whole operator corpus — rows and simulated cost."""
    from tests.test_batch_differential import EXECUTOR_QUERIES, _nums_session

    if vector.numpy_module() is None:
        pytest.skip("NumPy backend disabled; nothing to compare against")

    numpy_results = []
    s = _nums_session("batch")
    for sql in EXECUTOR_QUERIES:
        r = s.execute(sql)
        numpy_results.append((r.rows, r.cost.seconds))
    assert vector.numpy_module() is not None  # precondition of the test

    force_fallback(monkeypatch)
    s = _nums_session("batch")
    for sql, (rows, seconds) in zip(EXECUTOR_QUERIES, numpy_results):
        r = s.execute(sql)
        assert r.rows == rows, sql
        assert r.cost.seconds == seconds, sql


def test_fallback_row_vs_batch(monkeypatch):
    """Differential testing with NumPy off: both executors on arrays."""
    force_fallback(monkeypatch)
    rows = _edge_rows(60)
    row_s = _session("row", rows=rows)
    batch_s = _session("batch", rows=rows)
    for sql in EDGE_QUERIES:
        a = row_s.execute(sql)
        b = batch_s.execute(sql)
        assert a.rows == b.rows, sql
        assert a.cost.seconds == b.cost.seconds, sql


# ---------------------------------------------------- kernel memoization


def test_kernels_compiled_once_per_plan_node(monkeypatch):
    """Re-dispatching a slice to N segments (and re-running the query)
    must reuse memoized kernels instead of recompiling per segment."""
    from repro.executor import slice_runner

    calls = {"batch": 0, "row": 0}
    real_batch = slice_runner.compile_expr_batch
    real_row = slice_runner.compile_expr

    def counting_batch(expr, layout, params):
        calls["batch"] += 1
        return real_batch(expr, layout, params)

    def counting_row(expr, layout, params):
        calls["row"] += 1
        return real_row(expr, layout, params)

    monkeypatch.setattr(slice_runner, "compile_expr_batch", counting_batch)
    monkeypatch.setattr(slice_runner, "compile_expr", counting_row)

    s = _session("batch", rows=_edge_rows(40), num_hosts=4, per_host=1)
    sql = "SELECT t, count(*), sum(a) FROM vt WHERE f >= 1.0 GROUP BY t"
    first = s.execute(sql)
    after_first = dict(calls)
    assert sum(after_first.values()) > 0
    # 4 segments ran the same slices, but each expression compiled once
    # for the whole gang — far fewer compiles than (segments × exprs).
    assert after_first["batch"] <= 8

    # A re-issued query parses a fresh plan (new expr identities), so it
    # compiles each node once more — again independent of segment count:
    # exactly the first run's compile count, not 4x it.
    second = s.execute(sql)
    assert calls["batch"] == 2 * after_first["batch"]
    assert calls["row"] == 2 * after_first["row"]
    assert second.rows == first.rows
    assert second.cost.seconds == first.cost.seconds


def test_kernel_cache_distinguishes_layouts(monkeypatch):
    """Two queries over different layouts must not collide in the cache."""
    s = _session("batch", rows=_edge_rows(40))
    a = s.execute("SELECT a FROM vt WHERE a < 5 ORDER BY a")
    b = s.execute("SELECT a, t FROM vt WHERE a < 5 ORDER BY a")
    assert [r[0] for r in a.rows] == [r[0] for r in b.rows]
    assert len(s.engine.kernel_cache) > 0
