"""Tests for the simulated HDFS: namespace, append, truncate, leases,
replication and failure masking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    FileAlreadyExists,
    FileNotFoundInHdfs,
    HdfsError,
    LeaseConflict,
    TruncateError,
)
from repro.hdfs import Hdfs


@pytest.fixture
def fs():
    filesystem = Hdfs(block_size=64, replication=2, seed=1)
    for host in ("h1", "h2", "h3"):
        filesystem.add_datanode(host, num_disks=3)
    return filesystem


class TestNamespace:
    def test_create_and_read(self, fs):
        client = fs.client("h1")
        client.write_file("/a/b", b"hello world")
        assert client.read_file("/a/b") == b"hello world"

    def test_create_existing_fails(self, fs):
        client = fs.client("h1")
        client.write_file("/x", b"1")
        with pytest.raises(FileAlreadyExists):
            client.create("/x")

    def test_missing_file(self, fs):
        with pytest.raises(FileNotFoundInHdfs):
            fs.client("h1").read_file("/nope")

    def test_exists(self, fs):
        client = fs.client("h1")
        assert not client.exists("/f")
        client.write_file("/f", b"x")
        assert client.exists("/f")

    def test_delete(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"x" * 200)
        client.delete("/f")
        assert not client.exists("/f")
        # replicas dropped from datanodes
        for node in fs.datanodes.values():
            assert all(not disk.blocks for disk in node.disks)

    def test_rename(self, fs):
        client = fs.client("h1")
        client.write_file("/old", b"data")
        fs.rename("/old", "/new")
        assert client.read_file("/new") == b"data"
        assert not client.exists("/old")

    def test_list_status_prefix(self, fs):
        client = fs.client("h1")
        client.write_file("/t/a", b"1")
        client.write_file("/t/b", b"22")
        client.write_file("/u/c", b"333")
        names = [s.path for s in fs.list_status("/t/")]
        assert names == ["/t/a", "/t/b"]

    def test_file_status(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"x" * 150)
        status = client.file_status("/f")
        assert status.length == 150
        assert status.block_count == 3  # 64 + 64 + 22


class TestBlocksAndAppend:
    def test_multi_block_roundtrip(self, fs):
        client = fs.client("h1")
        data = bytes(range(256)) * 3
        client.write_file("/f", data)
        assert client.read_file("/f") == data

    def test_append(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"a" * 100)
        writer = client.append("/f")
        writer.write(b"b" * 100)
        writer.close()
        assert client.read_file("/f") == b"a" * 100 + b"b" * 100

    def test_streaming_writer(self, fs):
        client = fs.client("h1")
        writer = client.create("/f")
        for i in range(10):
            writer.write(bytes([i]) * 30)
        writer.close()
        assert len(client.read_file("/f")) == 300

    def test_positioned_read(self, fs):
        client = fs.client("h1")
        data = bytes(range(200))
        client.write_file("/f", data)
        reader = client.open("/f")
        reader.seek(70)
        assert reader.read(60) == data[70:130]

    def test_write_after_close_fails(self, fs):
        client = fs.client("h1")
        writer = client.create("/f")
        writer.close()
        with pytest.raises(HdfsError):
            writer.write(b"x")

    def test_replication_count(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"z" * 64)
        locations = fs.block_locations("/f")
        assert len(locations) == 1
        assert len(locations[0].hosts) == 2


class TestLeases:
    def test_single_writer(self, fs):
        client1 = fs.client("h1")
        client2 = fs.client("h2")
        writer = client1.create("/f")
        writer.write(b"x")
        with pytest.raises(LeaseConflict):
            client2.append("/f")
        writer.close()
        # lease released: second writer may proceed
        client2.append("/f").close()

    def test_truncate_requires_free_lease(self, fs):
        client1 = fs.client("h1")
        client2 = fs.client("h2")
        writer = client1.create("/f")
        writer.write(b"x" * 100)
        with pytest.raises(LeaseConflict):
            client2.truncate("/f", 10)
        writer.close()
        client2.truncate("/f", 10)


class TestTruncate:
    def test_block_boundary(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"a" * 192)  # exactly 3 blocks
        client.truncate("/f", 128)
        assert client.read_file("/f") == b"a" * 128
        assert client.file_status("/f").block_count == 2

    def test_mid_block(self, fs):
        client = fs.client("h1")
        data = bytes(range(200))
        client.write_file("/f", data)
        client.truncate("/f", 100)
        assert client.read_file("/f") == data[:100]

    def test_to_zero(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"abc" * 50)
        client.truncate("/f", 0)
        assert client.read_file("/f") == b""

    def test_noop(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"abc")
        client.truncate("/f", 3)
        assert client.read_file("/f") == b"abc"

    def test_cannot_extend(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"abc")
        with pytest.raises(TruncateError):
            client.truncate("/f", 10)

    def test_append_after_truncate(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"a" * 100)
        client.truncate("/f", 50)
        writer = client.append("/f")
        writer.write(b"b" * 30)
        writer.close()
        assert client.read_file("/f") == b"a" * 50 + b"b" * 30

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["write", "truncate"]), st.integers(0, 150)),
            min_size=1,
            max_size=12,
        )
    )
    def test_matches_reference_bytearray(self, ops):
        """Property: any append/truncate sequence matches a plain buffer."""
        fs = Hdfs(block_size=32, replication=2, seed=7)
        for host in ("h1", "h2"):
            fs.add_datanode(host)
        client = fs.client("h1")
        client.write_file("/f", b"")
        reference = bytearray()
        counter = 0
        for op, amount in ops:
            if op == "write":
                payload = bytes([counter % 251]) * amount
                counter += 1
                writer = client.append("/f")
                writer.write(payload)
                writer.close()
                reference.extend(payload)
            else:
                target = min(amount, len(reference))
                client.truncate("/f", target)
                del reference[target:]
        assert client.read_file("/f") == bytes(reference)


class TestFailures:
    def test_datanode_failure_masked(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"q" * 300)
        fs.fail_datanode("h1")
        assert client.read_file("/f") == b"q" * 300

    def test_re_replication(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"q" * 300)
        fs.fail_datanode("h1")
        created = fs.check_replication()
        assert created >= 0
        for location in fs.block_locations("/f"):
            assert all(h != "h1" for h in location.hosts)
            assert len(location.hosts) == 2

    def test_disk_failure_masked(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"w" * 300)
        # Fail every disk holding data on h1.
        node = fs.datanodes["h1"]
        for disk in node.disks:
            if disk.blocks:
                node.fail_disk(disk.index)
        assert client.read_file("/f") == b"w" * 300

    def test_restore_datanode(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"e" * 100)
        fs.fail_datanode("h2")
        fs.restore_datanode("h2")
        assert client.read_file("/f") == b"e" * 100

    def test_locality_counters(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"r" * 64)
        before_local = client.local_bytes_read
        client.read_file("/f")
        assert client.local_bytes_read > before_local  # first replica local

    def test_remote_read_counted(self, fs):
        writer_client = fs.client("h1")
        writer_client.write_file("/f", b"r" * 64)
        # a client on a host with no replica must read remotely
        locations = fs.block_locations("/f")
        hosts_with_replica = set(locations[0].hosts)
        other = next(h for h in ("h1", "h2", "h3") if h not in hosts_with_replica)
        remote_client = fs.client(other)
        remote_client.read_file("/f")
        assert remote_client.remote_bytes_read == 64


class TestDiskFailureBlockReport:
    """A failed disk must emit a block-report delta to the NameNode so
    the lost replicas become *detectably* under-replicated (and the
    background re-replication job can heal them)."""

    def _fail_a_loaded_disk(self, fs, host):
        node = fs.datanodes[host]
        disk = next(d for d in node.disks if d.blocks)
        return fs.fail_disk(host, disk.index)

    def test_fail_disk_marks_blocks_under_replicated(self, fs):
        client = fs.client("h1")
        client.write_file("/f", b"w" * 300)
        assert fs.under_replicated() == []
        lost = self._fail_a_loaded_disk(fs, "h1")
        assert lost  # the dead volume held replicas
        under = fs.under_replicated()
        assert set(lost) <= set(under)
        # The NameNode dropped h1 from the lost blocks' location lists.
        for block in fs._inodes["/f"].blocks:
            if block.block_id in lost:
                assert "h1" not in block.hosts

    def test_surviving_disk_keeps_location_entry(self, fs):
        """Only replicas the node can no longer serve are dropped: block
        ids still present on a healthy disk of the same host keep it."""
        client = fs.client("h1")
        client.write_file("/f", b"w" * 600)
        node = fs.datanodes["h1"]
        loaded = [d for d in node.disks if d.blocks]
        if len(loaded) < 2:
            pytest.skip("all replicas landed on one disk for this seed")
        survivors = set(loaded[1].blocks)
        fs.fail_disk("h1", loaded[0].index)
        for block in fs._inodes["/f"].blocks:
            if block.block_id in survivors:
                assert "h1" in block.hosts

    def test_check_replication_heals_disk_loss(self, fs):
        client = fs.client("h1")
        payload = b"w" * 300
        client.write_file("/f", payload)
        self._fail_a_loaded_disk(fs, "h1")
        assert fs.under_replicated()
        fs.check_replication()
        assert fs.under_replicated() == []
        assert client.read_file("/f") == payload
        for location in fs.block_locations("/f"):
            assert len(location.hosts) == fs.replication
