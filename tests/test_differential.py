"""Differential testing: randomly generated queries, executed both by
the full MPP engine and by a deliberately naive in-memory reference
evaluator written independently of the engine code. Any disagreement is
a planner/executor bug.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine
from repro.bench.harness import rows_match

COLUMNS = ("a", "b", "c")


def reference_rows():
    rows = []
    for i in range(60):
        rows.append(
            (
                i % 7,
                None if i % 11 == 0 else (i * 3) % 13,
                i,
            )
        )
    return rows


OTHER_ROWS = [(k, k * 10) for k in range(0, 9)]


@pytest.fixture(scope="module")
def session():
    engine = Engine(num_segment_hosts=3, segments_per_host=2)
    s = engine.connect()
    s.execute("CREATE TABLE t (a INT, b INT, c INT) DISTRIBUTED BY (c)")
    s.load_rows("t", reference_rows())
    s.execute("CREATE TABLE o (k INT, v INT) DISTRIBUTED BY (k)")
    s.load_rows("o", OTHER_ROWS)
    s.execute("ANALYZE")
    return s


# ------------------------------------------------------------- reference
def _cmp(op, x, y):
    if x is None or y is None:
        return None
    return {
        "=": x == y, "<>": x != y, "<": x < y,
        "<=": x <= y, ">": x > y, ">=": x >= y,
    }[op]


def ref_filter(rows, conds, combiner):
    out = []
    for row in rows:
        values = [
            _cmp(op, row[COLUMNS.index(col)], lit) for col, op, lit in conds
        ]
        if combiner == "and":
            keep = all(v is True for v in values)
        else:
            keep = any(v is True for v in values)
        if keep:
            out.append(row)
    return out


def ref_aggregate(rows, group_col, agg, agg_col):
    index = COLUMNS.index(agg_col)
    if group_col is None:
        groups = {(): rows}
    else:
        gindex = COLUMNS.index(group_col)
        groups = {}
        for row in rows:
            groups.setdefault((row[gindex],), []).append(row)
    out = []
    for key, members in groups.items():
        values = [m[index] for m in members if m[index] is not None]
        if agg == "count_star":
            value = len(members)
        elif agg == "count":
            value = len(values)
        elif agg == "sum":
            value = sum(values) if values else None
        elif agg == "min":
            value = min(values) if values else None
        elif agg == "max":
            value = max(values) if values else None
        else:  # avg
            value = sum(values) / len(values) if values else None
        out.append(key + (value,))
    return out


# ------------------------------------------------------------ strategies
conditions = st.lists(
    st.tuples(
        st.sampled_from(COLUMNS),
        st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        st.integers(-2, 14),
    ),
    min_size=0,
    max_size=3,
)


@settings(max_examples=60, deadline=None)
@given(conds=conditions, combiner=st.sampled_from(["and", "or"]))
def test_filters_match_reference(session, conds, combiner):
    where = ""
    if conds:
        joined = f" {combiner} ".join(
            f"{col} {op} {lit}" for col, op, lit in conds
        )
        where = f"WHERE {joined}"
    got = session.query(f"SELECT a, b, c FROM t {where}")
    expected = ref_filter(reference_rows(), conds, combiner) if conds else reference_rows()
    assert rows_match(got, expected)


@settings(max_examples=60, deadline=None)
@given(
    group=st.one_of(st.none(), st.sampled_from(COLUMNS)),
    agg=st.sampled_from(["count_star", "count", "sum", "min", "max", "avg"]),
    agg_col=st.sampled_from(COLUMNS),
    conds=conditions,
)
def test_aggregates_match_reference(session, group, agg, agg_col, conds):
    agg_sql = "count(*)" if agg == "count_star" else f"{agg}({agg_col})"
    select = f"{group}, {agg_sql}" if group else agg_sql
    where = ""
    if conds:
        joined = " and ".join(f"{col} {op} {lit}" for col, op, lit in conds)
        where = f"WHERE {joined}"
    group_clause = f"GROUP BY {group}" if group else ""
    got = session.query(f"SELECT {select} FROM t {where} {group_clause}")
    filtered = ref_filter(reference_rows(), conds, "and")
    expected = ref_aggregate(filtered, group, agg, agg_col)
    if group is None and not filtered and agg == "count_star":
        expected = [(0,)]
    assert rows_match(got, expected), (got, expected)


@settings(max_examples=40, deadline=None)
@given(
    join_col=st.sampled_from(COLUMNS),
    conds=conditions,
)
def test_joins_match_reference(session, join_col, conds):
    where = ""
    if conds:
        joined = " and ".join(f"t.{col} {op} {lit}" for col, op, lit in conds)
        where = f"AND {joined}"
    got = session.query(
        f"SELECT t.a, t.b, t.c, o.k, o.v FROM t, o "
        f"WHERE t.{join_col} = o.k {where}"
    )
    filtered = ref_filter(reference_rows(), conds, "and")
    index = COLUMNS.index(join_col)
    expected = [
        trow + orow
        for trow in filtered
        for orow in OTHER_ROWS
        if trow[index] is not None and trow[index] == orow[0]
    ]
    assert rows_match(got, expected)


@settings(max_examples=30, deadline=None)
@given(
    order_col=st.sampled_from(COLUMNS),
    ascending=st.booleans(),
    limit=st.integers(1, 20),
)
def test_order_limit_match_reference(session, order_col, ascending, limit):
    direction = "ASC" if ascending else "DESC"
    got = session.query(
        f"SELECT c FROM t ORDER BY {order_col} {direction}, c LIMIT {limit}"
    )
    index = COLUMNS.index(order_col)

    def key(row):
        value = row[index]
        # SQL/PostgreSQL: NULLS LAST when ascending, FIRST when
        # descending; bucket before the tiebreaker.
        main = 0 if value is None else value
        if ascending:
            null_rank = 1 if value is None else 0
            return (null_rank, main, row[2])
        null_rank = 0 if value is None else 1
        return (null_rank, -main, row[2])

    expected = [(r[2],) for r in sorted(reference_rows(), key=key)[:limit]]
    assert got == expected
