"""Tests for the MapReduce/YARN substrate of the Stinger baseline."""

import pytest

from repro.baselines import MapReduceCluster, ReducerOutOfMemory
from repro.baselines.mapreduce import Dataset
from repro.simtime import CostModel


def word_count_inputs(scale=1.0):
    lines = [("the quick brown fox",), ("the lazy dog",), ("the fox",)]
    dataset = Dataset.from_rows(lines, scale)

    def mapper(row):
        for word in row[0].split():
            yield word, 1

    return dataset, mapper


def count_reduce(key, values):
    total = 0
    for value in values:
        total += value[0] if isinstance(value, list) else value
    yield (key, total)


class TestJobExecution:
    def test_word_count(self):
        cluster = MapReduceCluster(num_nodes=2, containers_per_node=2)
        dataset, mapper = word_count_inputs()
        output, stats = cluster.run_job(
            "wc", [(dataset, mapper)], count_reduce, num_reducers=2
        )
        assert dict(output.rows)["the"] == 3
        assert dict(output.rows)["fox"] == 2
        assert stats.seconds > 0

    def test_combiner_reduces_pairs(self):
        cluster = MapReduceCluster(num_nodes=2, containers_per_node=2)
        dataset, mapper = word_count_inputs()

        def combiner(key, values):
            return [[sum(values)]]

        output, stats = cluster.run_job(
            "wc", [(dataset, mapper)], count_reduce, combine_fn=combiner
        )
        assert dict(output.rows)["the"] == 3

    def test_multi_input_join_job(self):
        cluster = MapReduceCluster(num_nodes=2, containers_per_node=2)
        left = Dataset.from_rows([(1, "a"), (2, "b")], 1.0)
        right = Dataset.from_rows([(1, "x"), (1, "y")], 1.0)

        def left_map(row):
            yield row[0], (0, row)

        def right_map(row):
            yield row[0], (1, row)

        def join_reduce(key, values):
            lrows = [r for tag, r in values if tag == 0]
            rrows = [r for tag, r in values if tag == 1]
            for l in lrows:
                for r in rrows:
                    yield l + r

        output, _ = cluster.run_job(
            "join", [(left, left_map), (right, right_map)], join_reduce
        )
        assert sorted(output.rows) == [(1, "a", 1, "x"), (1, "a", 1, "y")]

    def test_map_only_job(self):
        cluster = MapReduceCluster(num_nodes=2, containers_per_node=2)
        dataset = Dataset.from_rows([(i,) for i in range(10)], 1.0)
        output, stats = cluster.run_map_only_job(
            "filter", dataset, lambda row: [row] if row[0] % 2 == 0 else []
        )
        assert len(output.rows) == 5
        assert stats.reduce_tasks == 0


class TestScheduling:
    def test_wave_math(self):
        model = CostModel()
        cluster = MapReduceCluster(2, 2, model, scale=1.0)
        big = Dataset(
            rows=[(1,)], nominal_bytes=10 * model.mr_block_size,
            split_bytes=10 * model.mr_block_size,
        )
        _, stats = cluster.run_job(
            "waves", [(big, lambda row: [(1, row)])], lambda k, v: []
        )
        assert stats.map_tasks == 10
        assert stats.map_waves == 3  # 10 tasks on 4 containers

    def test_job_setup_floor(self):
        model = CostModel()
        cluster = MapReduceCluster(2, 2, model)
        tiny = Dataset.from_rows([(1,)], 1.0)
        _, stats = cluster.run_job(
            "tiny", [(tiny, lambda row: [(1, row)])], lambda k, v: []
        )
        assert stats.seconds >= model.mr_job_setup

    def test_bigger_scale_is_slower(self):
        results = {}
        for scale in (1.0, 1000.0):
            cluster = MapReduceCluster(2, 2, scale=scale)
            dataset, mapper = word_count_inputs(scale)
            _, stats = cluster.run_job("wc", [(dataset, mapper)], count_reduce)
            results[scale] = stats.seconds
        assert results[1000.0] > results[1.0]

    def test_cached_io_is_faster(self):
        results = {}
        for cached in (False, True):
            model = CostModel()
            model.io_cached = cached
            cluster = MapReduceCluster(2, 2, model, scale=1e6)
            dataset, mapper = word_count_inputs(1e6)
            _, stats = cluster.run_job("wc", [(dataset, mapper)], count_reduce)
            results[cached] = stats.seconds
        assert results[True] < results[False]


class TestReducerMemory:
    def test_oom_raised(self):
        model = CostModel()
        model.mr_reducer_mem = 1000.0  # absurdly small
        cluster = MapReduceCluster(2, 2, model, scale=1e6)
        dataset, mapper = word_count_inputs(1e6)
        with pytest.raises(ReducerOutOfMemory):
            cluster.run_job(
                "oom", [(dataset, mapper)], count_reduce, num_reducers=1
            )

    def test_check_memory_false_disables(self):
        model = CostModel()
        model.mr_reducer_mem = 1000.0
        cluster = MapReduceCluster(2, 2, model, scale=1e6)
        dataset, mapper = word_count_inputs(1e6)
        output, _ = cluster.run_job(
            "sort-ish",
            [(dataset, mapper)],
            count_reduce,
            num_reducers=1,
            check_memory=False,
        )
        assert output.rows


class TestDatasets:
    def test_cpu_rows_default(self):
        dataset = Dataset.from_rows([(1,), (2,)], 1.0)
        assert dataset.effective_cpu_rows == 2

    def test_cpu_rows_prefilter(self):
        dataset = Dataset(rows=[(1,)], nominal_bytes=100.0, cpu_rows=50)
        assert dataset.effective_cpu_rows == 50

    def test_split_bytes_default(self):
        dataset = Dataset(rows=[], nominal_bytes=42.0)
        assert dataset.effective_split_bytes == 42.0
