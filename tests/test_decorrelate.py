"""Tests for subquery decorrelation: every pattern the 22 TPC-H queries
need, plus the rejections for shapes outside the supported set."""

import pytest

from repro.errors import PlannerError
from repro.planner import exprs as ex
from repro.planner.decorrelate import decorrelate
from repro.planner.logical import DerivedSource
from tests.test_analyzer import DictCatalog, analyze, table


@pytest.fixture
def catalog():
    return DictCatalog(
        tables={
            "t": table("t", "a", "b", "c"),
            "s": table("s", "x", "y"),
        }
    )


class TestInitPlans:
    def test_uncorrelated_scalar_becomes_param(self, catalog):
        query = analyze(catalog, "SELECT 1 FROM t WHERE a > (SELECT max(x) FROM s)")
        decorrelate(query)
        assert len(query.init_plans) == 1
        params = [n for n in ex.walk(query.quals[0]) if isinstance(n, ex.BParam)]
        assert params == [ex.BParam(0)]

    def test_uncorrelated_scalar_in_having(self, catalog):
        query = analyze(
            catalog,
            "SELECT b, sum(a) FROM t GROUP BY b "
            "HAVING sum(a) > (SELECT sum(x) FROM s)",
        )
        decorrelate(query)
        assert len(query.init_plans) == 1

    def test_two_init_plans_numbered(self, catalog):
        query = analyze(
            catalog,
            "SELECT 1 FROM t WHERE a > (SELECT max(x) FROM s) "
            "AND b < (SELECT min(y) FROM s)",
        )
        decorrelate(query)
        assert len(query.init_plans) == 2
        params = sorted(
            n.index
            for qual in query.quals
            for n in ex.walk(qual)
            if isinstance(n, ex.BParam)
        )
        assert params == [0, 1]


class TestSemiJoins:
    def test_in_subquery_becomes_semi(self, catalog):
        query = analyze(catalog, "SELECT a FROM t WHERE a IN (SELECT x FROM s)")
        decorrelate(query)
        assert len(query.rels) == 2
        new_rel = query.rels[1]
        assert new_rel.join_type == "semi"
        assert isinstance(new_rel.source, DerivedSource)
        assert new_rel.join_cond is not None

    def test_not_in_becomes_anti(self, catalog):
        query = analyze(catalog, "SELECT a FROM t WHERE a NOT IN (SELECT x FROM s)")
        decorrelate(query)
        assert query.rels[1].join_type == "anti"

    def test_correlated_exists(self, catalog):
        query = analyze(
            catalog,
            "SELECT a FROM t WHERE EXISTS (SELECT * FROM s WHERE x = a AND y > 0)",
        )
        decorrelate(query)
        rel = query.rels[1]
        assert rel.join_type == "semi"
        sub = rel.source.query
        # Non-correlated predicate stays inside the subquery...
        assert len(sub.quals) == 1
        # ...and the correlation became the join condition, with the
        # inner column exported as a subquery output.
        assert rel.join_cond is not None
        assert len(sub.targets) == 1

    def test_not_exists_becomes_anti(self, catalog):
        query = analyze(
            catalog,
            "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM s WHERE x = a)",
        )
        decorrelate(query)
        assert query.rels[1].join_type == "anti"

    def test_exists_with_inequality_correlation(self, catalog):
        """Q21's pattern: equality plus <> correlations both survive as
        join conditions."""
        query = analyze(
            catalog,
            "SELECT a FROM t WHERE EXISTS "
            "(SELECT * FROM s WHERE x = a AND y <> b)",
        )
        decorrelate(query)
        rel = query.rels[1]
        conds = ex.conjuncts(rel.join_cond)
        assert len(conds) == 2
        assert len(rel.source.query.targets) == 2  # x and y exported

    def test_in_subquery_with_aggregation(self, catalog):
        """Q18's pattern: IN over a grouped/HAVING subquery."""
        query = analyze(
            catalog,
            "SELECT a FROM t WHERE a IN "
            "(SELECT x FROM s GROUP BY x HAVING sum(y) > 10)",
        )
        decorrelate(query)
        assert query.rels[1].join_type == "semi"
        assert query.rels[1].source.query.has_aggregates


class TestCorrelatedScalarAggregates:
    def test_q17_pattern(self, catalog):
        query = analyze(
            catalog,
            "SELECT a FROM t WHERE b < (SELECT avg(y) FROM s WHERE x = a)",
        )
        decorrelate(query)
        assert len(query.rels) == 2
        rel = query.rels[1]
        assert rel.join_type == "inner"
        sub = rel.source.query
        assert sub.group_by  # grouped by the correlation column
        assert len(sub.targets) == 2  # avg + group key
        # The comparison references the derived value and a join qual
        # equates the correlation columns.
        eq_quals = [
            q for q in query.quals if isinstance(q, ex.BOp) and q.op == "="
        ]
        assert eq_quals

    def test_two_correlation_columns(self, catalog):
        """Q20's pattern: correlation on two columns."""
        query = analyze(
            catalog,
            "SELECT a FROM t WHERE c > "
            "(SELECT sum(y) FROM s WHERE x = a AND y = b)",
        )
        decorrelate(query)
        sub = query.rels[1].source.query
        assert len(sub.group_by) == 2

    def test_results_preserved_after_double_decorrelate(self, catalog):
        query = analyze(
            catalog,
            "SELECT a FROM t WHERE b < (SELECT avg(y) FROM s WHERE x = a)",
        )
        decorrelate(query)
        rels_after_first = len(query.rels)
        decorrelate(query)  # idempotent
        assert len(query.rels) == rels_after_first


class TestRejections:
    def test_subquery_under_or_rejected(self, catalog):
        query = analyze(
            catalog,
            "SELECT a FROM t WHERE a = 1 OR EXISTS (SELECT * FROM s WHERE x = a)",
        )
        with pytest.raises(PlannerError):
            decorrelate(query)

    def test_correlated_non_aggregate_scalar_rejected(self, catalog):
        query = analyze(
            catalog, "SELECT a FROM t WHERE b = (SELECT y FROM s WHERE x = a)"
        )
        with pytest.raises(PlannerError):
            decorrelate(query)

    def test_correlated_exists_with_aggregate_rejected(self, catalog):
        query = analyze(
            catalog,
            "SELECT a FROM t WHERE EXISTS "
            "(SELECT sum(y) FROM s WHERE x = a GROUP BY x)",
        )
        with pytest.raises(PlannerError):
            decorrelate(query)

    def test_non_equality_scalar_correlation_rejected(self, catalog):
        query = analyze(
            catalog,
            "SELECT a FROM t WHERE b < (SELECT sum(y) FROM s WHERE x > a)",
        )
        with pytest.raises(PlannerError):
            decorrelate(query)
