"""The determinism & cost sanitizer: rules, suppressions, baseline, CLI.

Three layers of coverage:

* **Rule units** — each of R1..R5 gets positive and negative synthetic
  snippets via :func:`project_from_sources`, so the detectors are pinned
  independently of the live tree.
* **Framework** — suppression comments, baseline round-trips (match /
  stale / count-based consumption), rule selection.
* **The repo gate** — ``test_repo_clean`` is the tier-1 hook: the live
  source tree must have zero unbaselined findings, and the injection
  tests prove the gate actually fires (a wall-clock read dropped into
  executor code, a swallowing handler dropped into engine code) with the
  right rule id and file:line.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    default_baseline_path,
    load_project,
    repo_root,
    run_lint,
)
from repro.lint.core import Finding, project_from_sources
from repro.lint.rules import RULES, get_rules

REPO = repo_root()


def run_rules(sources, select=None):
    """Lint in-memory sources; return findings from the chosen rules."""
    project = project_from_sources(sources)
    return project.run(get_rules(select))


# ================================================================ R1 wall-clock
class TestNoWallClock:
    def test_flags_time_time(self):
        findings = run_rules(
            {"src/repro/executor/runner.py": "import time\nt = time.time()\n"},
            select=["R1"],
        )
        assert [f.rule for f in findings] == ["R1"]
        assert findings[0].line == 2
        assert "time.time()" in findings[0].message

    def test_flags_from_import_and_datetime(self):
        src = (
            "from time import perf_counter\n"
            "from datetime import datetime\n"
            "def f():\n"
            "    return perf_counter(), datetime.now()\n"
        )
        findings = run_rules({"src/repro/engine.py": src}, select=["R1"])
        assert len(findings) == 2
        assert all(f.rule == "R1" for f in findings)
        assert {f.context for f in findings} == {"f"}

    def test_flags_aliased_module(self):
        src = "import time as clock\nstart = clock.monotonic()\n"
        findings = run_rules({"src/repro/hdfs/filesystem.py": src}, select=["R1"])
        assert len(findings) == 1

    def test_bench_and_simtime_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        assert not run_rules({"src/repro/bench/wallclock.py": src}, select=["R1"])
        assert not run_rules({"src/repro/simtime.py": src}, select=["R1"])
        assert not run_rules({"tests/test_x.py": src}, select=["R1"])

    def test_non_clock_time_attrs_ok(self):
        src = "import time\ntime.sleep  # attribute access only, not a clock call\n"
        assert not run_rules({"src/repro/engine.py": src}, select=["R1"])


# ============================================================== R2 seeded rand
class TestSeededRandomness:
    def test_flags_module_level_random(self):
        src = "import random\nx = random.random()\n"
        findings = run_rules({"src/repro/chaos/plan.py": src}, select=["R2"])
        assert [f.rule for f in findings] == ["R2"]
        assert "DeterministicRng" in findings[0].message

    def test_flags_from_random_import(self):
        src = "from random import shuffle\n"
        findings = run_rules({"src/repro/planner/join.py": src}, select=["R2"])
        assert len(findings) == 1

    def test_flags_unseeded_random_construction(self):
        src = "import random\nrng = random.Random()\n"
        findings = run_rules({"src/repro/engine.py": src}, select=["R2"])
        assert len(findings) == 1
        assert "unseeded" in findings[0].message

    def test_rng_module_and_tests_exempt(self):
        src = "import random\nrng = random.Random(7)\n"
        assert not run_rules({"src/repro/util/rng.py": src}, select=["R2"])
        assert not run_rules({"tests/test_y.py": src}, select=["R2"])

    def test_seeded_stream_usage_ok(self):
        src = (
            "from repro.util import DeterministicRng\n"
            "rng = DeterministicRng(7, 'chaos', 'plan')\n"
            "x = rng.random()\n"
        )
        assert not run_rules({"src/repro/chaos/plan.py": src}, select=["R2"])


# ========================================================== R3 cost conformance
class TestCostConformance:
    CHARGED = (
        "class Store:\n"
        "    def put(self, data, acc):\n"
        "        acc.disk_write(len(data))\n"
        "        self.node.store_block(data)\n"
    )
    UNCHARGED = (
        "class Store:\n"
        "    def put(self, data):\n"
        "        self.node.store_block(data)\n"
    )

    def test_flags_uncharged_byte_movement(self):
        findings = run_rules(
            {"src/repro/storage/ao.py": self.UNCHARGED}, select=["R3"]
        )
        assert [f.rule for f in findings] == ["R3"]
        assert "store_block" in findings[0].message
        assert findings[0].context == "Store.put"

    def test_direct_charger_covered(self):
        assert not run_rules(
            {"src/repro/storage/ao.py": self.CHARGED}, select=["R3"]
        )

    def test_covered_via_caller_above(self):
        # The charging happens in a *caller*: put() itself never charges,
        # but scan() charges and calls put(), so put() is in the DOWN set.
        src = (
            "def scan(acc, store, data):\n"
            "    acc.disk_read(len(data))\n"
            "    put(store, data)\n"
            "def put(store, data):\n"
            "    store.store_block(data)\n"
        )
        assert not run_rules({"src/repro/hdfs/datanode.py": src}, select=["R3"])

    def test_out_of_scope_dirs_ignored(self):
        assert not run_rules(
            {"src/repro/planner/join.py": self.UNCHARGED}, select=["R3"]
        )


# ========================================================= R4 exception hygiene
class TestExceptionHygiene:
    def test_flags_swallowing_broad_handler(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings = run_rules({"src/repro/engine.py": src}, select=["R4"])
        assert [f.rule for f in findings] == ["R4"]
        assert findings[0].line == 4

    def test_flags_bare_except_and_cluster_error(self):
        src = (
            "from repro.errors import ClusterError\n"
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ClusterError:\n"
            "        return None\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        return None\n"
        )
        findings = run_rules({"src/repro/dispatch.py": src}, select=["R4"])
        assert len(findings) == 2

    def test_reraise_is_clean(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception as exc:\n"
            "        log(exc)\n"
            "        raise\n"
        )
        assert not run_rules({"src/repro/engine.py": src}, select=["R4"])

    def test_narrow_handler_is_clean(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except (KeyError, ValueError):\n"
            "        return None\n"
        )
        assert not run_rules({"src/repro/engine.py": src}, select=["R4"])

    def test_raise_in_nested_def_does_not_count(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        def handler():\n"
            "            raise ValueError('later, maybe never')\n"
            "        return handler\n"
        )
        findings = run_rules({"src/repro/engine.py": src}, select=["R4"])
        assert len(findings) == 1


# ==================================================== R5 deterministic iteration
class TestDeterministicIteration:
    def test_flags_set_literal_for_loop(self):
        src = "for x in {3, 1, 2}:\n    print(x)\n"
        findings = run_rules({"src/repro/planner/scan.py": src}, select=["R5"])
        assert [f.rule for f in findings] == ["R5"]

    def test_columnar_kernels_in_scope(self):
        src = "for x in {3, 1, 2}:\n    print(x)\n"
        findings = run_rules(
            {"src/repro/columnar/kernels.py": src}, select=["R5"]
        )
        assert [f.rule for f in findings] == ["R5"]

    def test_flags_set_typed_local_comprehension(self):
        src = (
            "def plan(cols):\n"
            "    used = set(cols)\n"
            "    return [c for c in used]\n"
        )
        findings = run_rules({"src/repro/planner/scan.py": src}, select=["R5"])
        assert len(findings) == 1
        assert findings[0].context == "plan"

    def test_flags_keys_iteration_and_list_of_set(self):
        src = (
            "def f(mapping, items):\n"
            "    for k in mapping.keys():\n"
            "        pass\n"
            "    return list(set(items))\n"
        )
        findings = run_rules({"src/repro/catalog/tables.py": src}, select=["R5"])
        assert len(findings) == 2

    def test_sorted_wrapping_is_clean(self):
        src = (
            "def plan(cols):\n"
            "    used = set(cols)\n"
            "    return [c for c in sorted(used)]\n"
        )
        assert not run_rules({"src/repro/planner/scan.py": src}, select=["R5"])

    def test_annotated_param_propagates(self):
        src = (
            "from typing import Set\n"
            "def f(names: Set[str]):\n"
            "    alive = names\n"
            "    for n in alive:\n"
            "        pass\n"
        )
        findings = run_rules({"src/repro/executor/nodes.py": src}, select=["R5"])
        assert len(findings) == 1

    def test_out_of_scope_dirs_ignored(self):
        src = "for x in {3, 1, 2}:\n    print(x)\n"
        assert not run_rules({"src/repro/hdfs/filesystem.py": src}, select=["R5"])


# ================================================================== suppressions
class TestSuppressions:
    def test_inline_allow_drops_finding(self):
        src = "import time\nt = time.time()  # lint: allow[R1]\n"
        assert not run_rules({"src/repro/engine.py": src}, select=["R1"])

    def test_allow_on_preceding_line(self):
        src = (
            "import time\n"
            "# lint: allow[R1] — measured on purpose here\n"
            "t = time.time()\n"
        )
        assert not run_rules({"src/repro/engine.py": src}, select=["R1"])

    def test_allow_names_only_that_rule(self):
        src = "import time\nt = time.time()  # lint: allow[R4]\n"
        findings = run_rules({"src/repro/engine.py": src}, select=["R1"])
        assert len(findings) == 1

    def test_wildcard_allow(self):
        src = "import time\nt = time.time()  # lint: allow[*]\n"
        assert not run_rules({"src/repro/engine.py": src}, select=["R1"])


# ====================================================================== baseline
class TestBaseline:
    def find(self, **kw):
        base = dict(
            rule="R1",
            path="src/repro/engine.py",
            line=10,
            message="m",
            context="f",
            code="t = time.time()",
        )
        base.update(kw)
        return Finding(**base)

    def test_round_trip_and_match(self, tmp_path):
        finding = self.find()
        baseline = Baseline.from_findings([finding], {finding.key(): "why"})
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries[0]["reason"] == "why"
        new, old = loaded.split([finding])
        assert new == [] and old == [finding]
        assert loaded.unused() == []

    def test_line_number_changes_still_match(self, tmp_path):
        baseline = Baseline.from_findings([self.find(line=10)])
        # Same rule/path/context/code on a different line: unrelated edits
        # above the finding must not invalidate the baseline entry.
        new, old = baseline.split([self.find(line=99)])
        assert new == [] and len(old) == 1

    def test_count_based_consumption(self):
        baseline = Baseline.from_findings([self.find()])
        two = [self.find(line=10), self.find(line=20)]
        new, old = baseline.split(two)
        assert len(old) == 1 and len(new) == 1

    def test_stale_entries_reported(self):
        baseline = Baseline.from_findings([self.find()])
        new, old = baseline.split([])
        assert new == [] and old == []
        assert len(baseline.unused()) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []


# ============================================================ R6 obs passivity
class TestObsPassivity:
    def test_flags_charging_call_in_obs(self):
        src = (
            "def record(acc):\n"
            "    acc.fixed(0.01)\n"
        )
        findings = run_rules({"src/repro/obs/trace.py": src}, select=["R6"])
        assert [f.rule for f in findings] == ["R6"]
        assert "fixed()" in findings[0].message

    def test_flags_cost_attribute_write_in_obs(self):
        src = (
            "def record(self, acc):\n"
            "    acc.seconds += 1.0\n"
        )
        findings = run_rules({"src/repro/obs/metrics.py": src}, select=["R6"])
        assert len(findings) == 1
        assert ".seconds" in findings[0].message

    def test_flags_charge_control_call(self):
        src = (
            "from repro.cluster.rpc import charge_control\n"
            "def record(acc):\n"
            "    charge_control(acc, 64)\n"
        )
        findings = run_rules({"src/repro/obs/export.py": src}, select=["R6"])
        assert len(findings) == 1

    def test_reading_the_clock_is_fine(self):
        src = (
            "def mark(acc):\n"
            "    t = acc.seconds\n"
            "    return t\n"
        )
        assert not run_rules({"src/repro/obs/trace.py": src}, select=["R6"])

    def test_outside_obs_not_in_scope(self):
        src = "def f(acc):\n    acc.fixed(1.0)\n"
        assert not run_rules({"src/repro/executor/runner.py": src}, select=["R6"])

    def test_flags_vector_materialization_in_obs(self):
        src = (
            "def snapshot(batch):\n"
            "    return batch.to_rows()\n"
        )
        findings = run_rules({"src/repro/obs/trace.py": src}, select=["R6"])
        assert len(findings) == 1
        assert "materialization" in findings[0].message

    def test_flags_tolist_and_gather_in_obs(self):
        src = (
            "def peek(vec, sel):\n"
            "    return vec.tolist(), vec.gather(sel), vec.take(sel)\n"
        )
        findings = run_rules({"src/repro/obs/metrics.py": src}, select=["R6"])
        assert len(findings) == 3

    def test_bare_materializer_name_not_flagged(self):
        # Only attribute calls are vector forces; a local helper named
        # gather() is not a vector method.
        src = (
            "def gather(xs):\n"
            "    return list(xs)\n"
            "def use(xs):\n"
            "    return gather(xs)\n"
        )
        assert not run_rules({"src/repro/obs/trace.py": src}, select=["R6"])

    def test_materialization_outside_obs_not_in_scope(self):
        src = "def f(vec):\n    return vec.tolist()\n"
        assert not run_rules(
            {"src/repro/executor/slice_runner.py": src}, select=["R6"]
        )


# ================================================================ rule registry
class TestRegistry:
    def test_six_rules_registered(self):
        assert [r.id for r in RULES] == ["R1", "R2", "R3", "R4", "R5", "R6"]

    def test_select_by_id_and_name(self):
        assert [r.id for r in get_rules(["R1", "exception-hygiene"])] == ["R1", "R4"]

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(["R99"])


# =============================================================== repo-wide gate
class TestRepoGate:
    def test_repo_clean(self):
        """Tier-1 gate: zero unbaselined findings on the live tree."""
        new, old, project = run_lint()
        assert new == [], "\n" + "\n".join(f.render() for f in new)
        assert project.files, "lint saw no files — path resolution broke"
        stale = Baseline.load(default_baseline_path())
        stale.split(project.run(get_rules()))
        assert stale.unused() == [], "baseline has stale entries: run --update-baseline"

    def test_baseline_entries_have_reasons(self):
        baseline = Baseline.load(default_baseline_path())
        for entry in baseline.entries:
            reason = entry.get("reason", "")
            assert reason and "TODO" not in reason, entry

    def _lint_tree(self, tree_root):
        new, _, _ = run_lint(root=tree_root)
        return new

    @pytest.fixture()
    def repo_copy(self, tmp_path):
        """A src/repro copy to mutate without touching the live tree."""
        import shutil

        dest = tmp_path / "src" / "repro"
        shutil.copytree(REPO / "src" / "repro", dest)
        return tmp_path

    def test_injected_wall_clock_is_caught(self, repo_copy):
        """Acceptance check: time.time() in executor code must fail R1
        with the right file and line."""
        target = repo_copy / "src" / "repro" / "executor" / "runner.py"
        src = target.read_text()
        clock_line = src.count("\n") + 2  # after the appended import
        target.write_text(src + "import time\n_T0 = time.time()\n")
        findings = self._lint_tree(repo_copy)
        hits = [f for f in findings if f.rule == "R1"]
        assert hits, "injected wall-clock read not caught"
        assert hits[0].path == "src/repro/executor/runner.py"
        assert hits[0].line == clock_line

    def test_injected_swallowing_handler_is_caught(self, repo_copy):
        """Acceptance check: a swallowing except Exception in engine.py
        must fail R4."""
        target = repo_copy / "src" / "repro" / "engine.py"
        src = target.read_text()
        injected = (
            "\n\ndef _swallow(op):\n"
            "    try:\n"
            "        return op()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        line_of_except = src.count("\n") + 1 + 5  # 2 blank + def/try/return
        target.write_text(src + injected)
        findings = self._lint_tree(repo_copy)
        hits = [f for f in findings if f.rule == "R4" and f.path == "src/repro/engine.py"]
        assert hits, "injected swallowing handler not caught"
        assert hits[0].context == "_swallow"
        assert hits[0].line == line_of_except


# ==================================================================== CLI layer
class TestCli:
    def run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True,
            text=True,
            cwd=REPO,
            env=env,
        )

    def test_exit_zero_and_json_shape_on_clean_repo(self):
        proc = self.run_cli("--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        report = json.loads(proc.stdout)
        assert report["findings"] == []
        assert report["rules"] == ["R1", "R2", "R3", "R4", "R5", "R6"]
        assert report["files"] > 50
        assert report["stale_baseline_entries"] == []

    def test_exit_one_on_findings(self, tmp_path):
        bad = tmp_path / "x.py"
        # Path must carry no exempt directory; lint an explicit file.
        bad.write_text("import time\nt = time.time()\n")
        proc = self.run_cli("--no-baseline", str(bad))
        assert proc.returncode == 1
        assert "R1" in proc.stdout

    def test_exit_two_on_internal_error(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        proc = self.run_cli(str(broken))
        assert proc.returncode == 2
        assert "internal error" in proc.stderr

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rid in ("R1", "R2", "R3", "R4", "R5", "R6"):
            assert rid in proc.stdout

    def test_types_flag_degrades_without_mypy(self):
        proc = self.run_cli("--types")
        assert proc.returncode in (0, 1)
        # With mypy absent (the pinned container), the skip is loud.
        try:
            import mypy  # noqa: F401
        except ImportError:
            assert "skipping type check" in proc.stdout
