"""The determinism & cost sanitizer: rules, suppressions, baseline, CLI.

Three layers of coverage:

* **Rule units** — each of R1..R5 gets positive and negative synthetic
  snippets via :func:`project_from_sources`, so the detectors are pinned
  independently of the live tree.
* **Framework** — suppression comments, baseline round-trips (match /
  stale / count-based consumption), rule selection.
* **The repo gate** — ``test_repo_clean`` is the tier-1 hook: the live
  source tree must have zero unbaselined findings, and the injection
  tests prove the gate actually fires (a wall-clock read dropped into
  executor code, a swallowing handler dropped into engine code) with the
  right rule id and file:line.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    default_baseline_path,
    load_project,
    repo_root,
    run_lint,
)
from repro.lint.core import Finding, project_from_sources
from repro.lint.rules import RULES, get_rules

REPO = repo_root()


def run_rules(sources, select=None):
    """Lint in-memory sources; return findings from the chosen rules."""
    project = project_from_sources(sources)
    return project.run(get_rules(select))


# ================================================================ R1 wall-clock
class TestNoWallClock:
    def test_flags_time_time(self):
        findings = run_rules(
            {"src/repro/executor/runner.py": "import time\nt = time.time()\n"},
            select=["R1"],
        )
        assert [f.rule for f in findings] == ["R1"]
        assert findings[0].line == 2
        assert "time.time()" in findings[0].message

    def test_flags_from_import_and_datetime(self):
        src = (
            "from time import perf_counter\n"
            "from datetime import datetime\n"
            "def f():\n"
            "    return perf_counter(), datetime.now()\n"
        )
        findings = run_rules({"src/repro/engine.py": src}, select=["R1"])
        assert len(findings) == 2
        assert all(f.rule == "R1" for f in findings)
        assert {f.context for f in findings} == {"f"}

    def test_flags_aliased_module(self):
        src = "import time as clock\nstart = clock.monotonic()\n"
        findings = run_rules({"src/repro/hdfs/filesystem.py": src}, select=["R1"])
        assert len(findings) == 1

    def test_bench_and_simtime_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        assert not run_rules({"src/repro/bench/wallclock.py": src}, select=["R1"])
        assert not run_rules({"src/repro/simtime.py": src}, select=["R1"])
        assert not run_rules({"tests/test_x.py": src}, select=["R1"])

    def test_non_clock_time_attrs_ok(self):
        src = "import time\ntime.sleep  # attribute access only, not a clock call\n"
        assert not run_rules({"src/repro/engine.py": src}, select=["R1"])


# ============================================================== R2 seeded rand
class TestSeededRandomness:
    def test_flags_module_level_random(self):
        src = "import random\nx = random.random()\n"
        findings = run_rules({"src/repro/chaos/plan.py": src}, select=["R2"])
        assert [f.rule for f in findings] == ["R2"]
        assert "DeterministicRng" in findings[0].message

    def test_flags_from_random_import(self):
        src = "from random import shuffle\n"
        findings = run_rules({"src/repro/planner/join.py": src}, select=["R2"])
        assert len(findings) == 1

    def test_flags_unseeded_random_construction(self):
        src = "import random\nrng = random.Random()\n"
        findings = run_rules({"src/repro/engine.py": src}, select=["R2"])
        assert len(findings) == 1
        assert "unseeded" in findings[0].message

    def test_rng_module_and_tests_exempt(self):
        src = "import random\nrng = random.Random(7)\n"
        assert not run_rules({"src/repro/util/rng.py": src}, select=["R2"])
        assert not run_rules({"tests/test_y.py": src}, select=["R2"])

    def test_seeded_stream_usage_ok(self):
        src = (
            "from repro.util import DeterministicRng\n"
            "rng = DeterministicRng(7, 'chaos', 'plan')\n"
            "x = rng.random()\n"
        )
        assert not run_rules({"src/repro/chaos/plan.py": src}, select=["R2"])


# ========================================================== R3 cost conformance
class TestCostConformance:
    CHARGED = (
        "class Store:\n"
        "    def put(self, data, acc):\n"
        "        acc.disk_write(len(data))\n"
        "        self.node.store_block(data)\n"
    )
    UNCHARGED = (
        "class Store:\n"
        "    def put(self, data):\n"
        "        self.node.store_block(data)\n"
    )

    def test_flags_uncharged_byte_movement(self):
        findings = run_rules(
            {"src/repro/storage/ao.py": self.UNCHARGED}, select=["R3"]
        )
        assert [f.rule for f in findings] == ["R3"]
        assert "store_block" in findings[0].message
        assert findings[0].context == "Store.put"

    def test_direct_charger_covered(self):
        assert not run_rules(
            {"src/repro/storage/ao.py": self.CHARGED}, select=["R3"]
        )

    def test_covered_via_caller_above(self):
        # The charging happens in a *caller*: put() itself never charges,
        # but scan() charges and calls put(), so put() is in the DOWN set.
        src = (
            "def scan(acc, store, data):\n"
            "    acc.disk_read(len(data))\n"
            "    put(store, data)\n"
            "def put(store, data):\n"
            "    store.store_block(data)\n"
        )
        assert not run_rules({"src/repro/hdfs/datanode.py": src}, select=["R3"])

    def test_out_of_scope_dirs_ignored(self):
        assert not run_rules(
            {"src/repro/planner/join.py": self.UNCHARGED}, select=["R3"]
        )


# ========================================================= R4 exception hygiene
class TestExceptionHygiene:
    def test_flags_swallowing_broad_handler(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings = run_rules({"src/repro/engine.py": src}, select=["R4"])
        assert [f.rule for f in findings] == ["R4"]
        assert findings[0].line == 4

    def test_flags_bare_except_and_cluster_error(self):
        src = (
            "from repro.errors import ClusterError\n"
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ClusterError:\n"
            "        return None\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        return None\n"
        )
        findings = run_rules({"src/repro/dispatch.py": src}, select=["R4"])
        assert len(findings) == 2

    def test_reraise_is_clean(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception as exc:\n"
            "        log(exc)\n"
            "        raise\n"
        )
        assert not run_rules({"src/repro/engine.py": src}, select=["R4"])

    def test_narrow_handler_is_clean(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except (KeyError, ValueError):\n"
            "        return None\n"
        )
        assert not run_rules({"src/repro/engine.py": src}, select=["R4"])

    def test_raise_in_nested_def_does_not_count(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        def handler():\n"
            "            raise ValueError('later, maybe never')\n"
            "        return handler\n"
        )
        findings = run_rules({"src/repro/engine.py": src}, select=["R4"])
        assert len(findings) == 1


# ==================================================== R5 deterministic iteration
class TestDeterministicIteration:
    def test_flags_set_literal_for_loop(self):
        src = "for x in {3, 1, 2}:\n    print(x)\n"
        findings = run_rules({"src/repro/planner/scan.py": src}, select=["R5"])
        assert [f.rule for f in findings] == ["R5"]

    def test_columnar_kernels_in_scope(self):
        src = "for x in {3, 1, 2}:\n    print(x)\n"
        findings = run_rules(
            {"src/repro/columnar/kernels.py": src}, select=["R5"]
        )
        assert [f.rule for f in findings] == ["R5"]

    def test_flags_set_typed_local_comprehension(self):
        src = (
            "def plan(cols):\n"
            "    used = set(cols)\n"
            "    return [c for c in used]\n"
        )
        findings = run_rules({"src/repro/planner/scan.py": src}, select=["R5"])
        assert len(findings) == 1
        assert findings[0].context == "plan"

    def test_flags_keys_iteration_and_list_of_set(self):
        src = (
            "def f(mapping, items):\n"
            "    for k in mapping.keys():\n"
            "        pass\n"
            "    return list(set(items))\n"
        )
        findings = run_rules({"src/repro/catalog/tables.py": src}, select=["R5"])
        assert len(findings) == 2

    def test_sorted_wrapping_is_clean(self):
        src = (
            "def plan(cols):\n"
            "    used = set(cols)\n"
            "    return [c for c in sorted(used)]\n"
        )
        assert not run_rules({"src/repro/planner/scan.py": src}, select=["R5"])

    def test_annotated_param_propagates(self):
        src = (
            "from typing import Set\n"
            "def f(names: Set[str]):\n"
            "    alive = names\n"
            "    for n in alive:\n"
            "        pass\n"
        )
        findings = run_rules({"src/repro/executor/nodes.py": src}, select=["R5"])
        assert len(findings) == 1

    def test_out_of_scope_dirs_ignored(self):
        src = "for x in {3, 1, 2}:\n    print(x)\n"
        assert not run_rules({"src/repro/hdfs/filesystem.py": src}, select=["R5"])


# ================================================================== suppressions
class TestSuppressions:
    def test_inline_allow_drops_finding(self):
        src = "import time\nt = time.time()  # lint: allow[R1]\n"
        assert not run_rules({"src/repro/engine.py": src}, select=["R1"])

    def test_allow_on_preceding_line(self):
        src = (
            "import time\n"
            "# lint: allow[R1] — measured on purpose here\n"
            "t = time.time()\n"
        )
        assert not run_rules({"src/repro/engine.py": src}, select=["R1"])

    def test_allow_names_only_that_rule(self):
        src = "import time\nt = time.time()  # lint: allow[R4]\n"
        findings = run_rules({"src/repro/engine.py": src}, select=["R1"])
        assert len(findings) == 1

    def test_wildcard_allow(self):
        src = "import time\nt = time.time()  # lint: allow[*]\n"
        assert not run_rules({"src/repro/engine.py": src}, select=["R1"])


# ====================================================================== baseline
class TestBaseline:
    def find(self, **kw):
        base = dict(
            rule="R1",
            path="src/repro/engine.py",
            line=10,
            message="m",
            context="f",
            code="t = time.time()",
        )
        base.update(kw)
        return Finding(**base)

    def test_round_trip_and_match(self, tmp_path):
        finding = self.find()
        baseline = Baseline.from_findings([finding], {finding.key(): "why"})
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries[0]["reason"] == "why"
        new, old = loaded.split([finding])
        assert new == [] and old == [finding]
        assert loaded.unused() == []

    def test_line_number_changes_still_match(self, tmp_path):
        baseline = Baseline.from_findings([self.find(line=10)])
        # Same rule/path/context/code on a different line: unrelated edits
        # above the finding must not invalidate the baseline entry.
        new, old = baseline.split([self.find(line=99)])
        assert new == [] and len(old) == 1

    def test_count_based_consumption(self):
        baseline = Baseline.from_findings([self.find()])
        two = [self.find(line=10), self.find(line=20)]
        new, old = baseline.split(two)
        assert len(old) == 1 and len(new) == 1

    def test_stale_entries_reported(self):
        baseline = Baseline.from_findings([self.find()])
        new, old = baseline.split([])
        assert new == [] and old == []
        assert len(baseline.unused()) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []


# ============================================================ R6 obs passivity
class TestObsPassivity:
    def test_flags_charging_call_in_obs(self):
        src = (
            "def record(acc):\n"
            "    acc.fixed(0.01)\n"
        )
        findings = run_rules({"src/repro/obs/trace.py": src}, select=["R6"])
        assert [f.rule for f in findings] == ["R6"]
        assert "fixed()" in findings[0].message

    def test_flags_cost_attribute_write_in_obs(self):
        src = (
            "def record(self, acc):\n"
            "    acc.seconds += 1.0\n"
        )
        findings = run_rules({"src/repro/obs/metrics.py": src}, select=["R6"])
        assert len(findings) == 1
        assert ".seconds" in findings[0].message

    def test_flags_charge_control_call(self):
        src = (
            "from repro.cluster.rpc import charge_control\n"
            "def record(acc):\n"
            "    charge_control(acc, 64)\n"
        )
        findings = run_rules({"src/repro/obs/export.py": src}, select=["R6"])
        assert len(findings) == 1

    def test_reading_the_clock_is_fine(self):
        src = (
            "def mark(acc):\n"
            "    t = acc.seconds\n"
            "    return t\n"
        )
        assert not run_rules({"src/repro/obs/trace.py": src}, select=["R6"])

    def test_outside_obs_not_in_scope(self):
        src = "def f(acc):\n    acc.fixed(1.0)\n"
        assert not run_rules({"src/repro/executor/runner.py": src}, select=["R6"])

    def test_flags_vector_materialization_in_obs(self):
        src = (
            "def snapshot(batch):\n"
            "    return batch.to_rows()\n"
        )
        findings = run_rules({"src/repro/obs/trace.py": src}, select=["R6"])
        assert len(findings) == 1
        assert "materialization" in findings[0].message

    def test_flags_tolist_and_gather_in_obs(self):
        src = (
            "def peek(vec, sel):\n"
            "    return vec.tolist(), vec.gather(sel), vec.take(sel)\n"
        )
        findings = run_rules({"src/repro/obs/metrics.py": src}, select=["R6"])
        assert len(findings) == 3

    def test_bare_materializer_name_not_flagged(self):
        # Only attribute calls are vector forces; a local helper named
        # gather() is not a vector method.
        src = (
            "def gather(xs):\n"
            "    return list(xs)\n"
            "def use(xs):\n"
            "    return gather(xs)\n"
        )
        assert not run_rules({"src/repro/obs/trace.py": src}, select=["R6"])

    def test_materialization_outside_obs_not_in_scope(self):
        src = "def f(vec):\n    return vec.tolist()\n"
        assert not run_rules(
            {"src/repro/executor/slice_runner.py": src}, select=["R6"]
        )


# ================================================================ rule registry
class TestRegistry:
    def test_nine_rules_registered(self):
        assert [r.id for r in RULES] == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"
        ]

    def test_select_by_id_and_name(self):
        assert [r.id for r in get_rules(["R1", "exception-hygiene"])] == ["R1", "R4"]

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(["R99"])


# =============================================================== repo-wide gate
class TestRepoGate:
    def test_repo_clean(self):
        """Tier-1 gate: zero unbaselined findings on the live tree."""
        new, old, project = run_lint()
        assert new == [], "\n" + "\n".join(f.render() for f in new)
        assert project.files, "lint saw no files — path resolution broke"
        stale = Baseline.load(default_baseline_path())
        stale.split(project.run(get_rules()))
        assert stale.unused() == [], "baseline has stale entries: run --update-baseline"

    def test_baseline_entries_have_reasons(self):
        baseline = Baseline.load(default_baseline_path())
        for entry in baseline.entries:
            reason = entry.get("reason", "")
            assert reason and "TODO" not in reason, entry

    def _lint_tree(self, tree_root):
        new, _, _ = run_lint(root=tree_root)
        return new

    @pytest.fixture()
    def repo_copy(self, tmp_path):
        """A src/repro copy to mutate without touching the live tree."""
        import shutil

        dest = tmp_path / "src" / "repro"
        shutil.copytree(REPO / "src" / "repro", dest)
        return tmp_path

    def test_injected_wall_clock_is_caught(self, repo_copy):
        """Acceptance check: time.time() in executor code must fail R1
        with the right file and line."""
        target = repo_copy / "src" / "repro" / "executor" / "runner.py"
        src = target.read_text()
        clock_line = src.count("\n") + 2  # after the appended import
        target.write_text(src + "import time\n_T0 = time.time()\n")
        findings = self._lint_tree(repo_copy)
        hits = [f for f in findings if f.rule == "R1"]
        assert hits, "injected wall-clock read not caught"
        assert hits[0].path == "src/repro/executor/runner.py"
        assert hits[0].line == clock_line

    def test_injected_swallowing_handler_is_caught(self, repo_copy):
        """Acceptance check: a swallowing except Exception in engine.py
        must fail R4."""
        target = repo_copy / "src" / "repro" / "engine.py"
        src = target.read_text()
        injected = (
            "\n\ndef _swallow(op):\n"
            "    try:\n"
            "        return op()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        line_of_except = src.count("\n") + 1 + 5  # 2 blank + def/try/return
        target.write_text(src + injected)
        findings = self._lint_tree(repo_copy)
        hits = [f for f in findings if f.rule == "R4" and f.path == "src/repro/engine.py"]
        assert hits, "injected swallowing handler not caught"
        assert hits[0].context == "_swallow"
        assert hits[0].line == line_of_except


# ==================================================================== CLI layer
class TestCli:
    def run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True,
            text=True,
            cwd=REPO,
            env=env,
        )

    def test_exit_zero_and_json_shape_on_clean_repo(self):
        proc = self.run_cli("--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        report = json.loads(proc.stdout)
        assert report["findings"] == []
        assert report["rules"] == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"
        ]
        assert report["files"] > 50
        assert report["stale_baseline_entries"] == []

    def test_exit_one_on_findings(self, tmp_path):
        bad = tmp_path / "x.py"
        # Path must carry no exempt directory; lint an explicit file.
        bad.write_text("import time\nt = time.time()\n")
        proc = self.run_cli("--no-baseline", str(bad))
        assert proc.returncode == 1
        assert "R1" in proc.stdout

    def test_exit_two_on_internal_error(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        proc = self.run_cli(str(broken))
        assert proc.returncode == 2
        assert "internal error" in proc.stderr

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rid in ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"):
            assert rid in proc.stdout

    def test_types_flag_degrades_without_mypy(self):
        proc = self.run_cli("--types")
        assert proc.returncode in (0, 1)
        # With mypy absent (the pinned container), the skip is loud.
        try:
            import mypy  # noqa: F401
        except ImportError:
            assert "skipping type check" in proc.stdout


# ============================================================= R7 isolation
class TestCrossQueryIsolation:
    """R7: mutable module/class state written by code reachable from the
    concurrent entry points must be registered or namespaced."""

    ENTRY = "src/repro/executor/concurrent.py"

    def _sources(self, registry_entries=""):
        sources = {
            self.ENTRY: (
                "from repro.mycache import put\n"
                "def run_batch():\n"
                "    put(1)\n"
            ),
            "src/repro/mycache.py": (
                "CACHE = {}\n"
                "def put(k):\n"
                "    CACHE[k] = k\n"
            ),
        }
        if registry_entries is not None:
            sources["src/repro/sanitize/registry.py"] = (
                "SHARED_STATE = {" + registry_entries + "}\n"
            )
        return sources

    def test_reachable_module_mutation_is_flagged(self):
        findings = run_rules(self._sources(), select=["R7"])
        assert [f.rule for f in findings] == ["R7"]
        assert findings[0].path == "src/repro/mycache.py"
        assert findings[0].context == "put"
        assert "CACHE" in findings[0].message
        assert "src/repro/mycache.py::CACHE" in findings[0].message

    def test_registered_state_is_exempt(self):
        findings = run_rules(
            self._sources(
                "'src/repro/mycache.py::CACHE': 'pure memo, idempotent'"
            ),
            select=["R7"],
        )
        assert findings == []

    def test_unreachable_mutation_is_ignored(self):
        sources = self._sources()
        # Same mutation, but nothing in an entry file calls it.
        sources[self.ENTRY] = "def run_batch():\n    return 0\n"
        findings = run_rules(sources, select=["R7"])
        assert findings == []

    def test_mutator_call_is_flagged(self):
        sources = self._sources()
        sources["src/repro/mycache.py"] = (
            "SEEN = set()\n"
            "def put(k):\n"
            "    SEEN.add(k)\n"
        )
        findings = run_rules(sources, select=["R7"])
        assert [f.rule for f in findings] == ["R7"]
        assert "SEEN" in findings[0].message

    def test_local_shadow_is_not_flagged(self):
        sources = self._sources()
        sources["src/repro/mycache.py"] = (
            "CACHE = {}\n"
            "def put(k):\n"
            "    CACHE = {}\n"
            "    CACHE[k] = k\n"
            "    return CACHE\n"
        )
        findings = run_rules(sources, select=["R7"])
        assert findings == []

    def test_class_body_mutable_in_entry_file(self):
        sources = {
            self.ENTRY: (
                "class Runner:\n"
                "    inflight = {}\n"
                "    def go(self, sn):\n"
                "        self.inflight.setdefault(sn, 0)\n"
            ),
            "src/repro/sanitize/registry.py": "SHARED_STATE = {}\n",
        }
        findings = run_rules(sources, select=["R7"])
        assert [f.rule for f in findings] == ["R7"]
        assert "Runner.inflight" in findings[0].message

    def test_instance_rebound_attr_is_not_flagged(self):
        sources = {
            self.ENTRY: (
                "class Runner:\n"
                "    inflight = {}\n"
                "    def __init__(self):\n"
                "        self.inflight = {}\n"
                "    def go(self, sn):\n"
                "        self.inflight.setdefault(sn, 0)\n"
            ),
            "src/repro/sanitize/registry.py": "SHARED_STATE = {}\n",
        }
        findings = run_rules(sources, select=["R7"])
        assert findings == []

    def test_live_registry_parses_and_has_reasons(self):
        from repro.lint.rules import CrossQueryIsolationRule

        project = load_project()
        registry = CrossQueryIsolationRule._registry(project)
        assert registry, "SHARED_STATE not found in the linted tree"
        for key, reason in registry.items():
            assert "::" in key
            assert len(reason) > 10, f"{key}: reason too thin to audit"


# ========================================================== R8 determinism
class TestSchedulerDeterminism:
    SCOPE = "src/repro/simtime/scheduler.py"

    def test_id_key_is_flagged(self):
        findings = run_rules(
            {self.SCOPE: "def key_of(task):\n    return id(task)\n"},
            select=["R8"],
        )
        assert [f.rule for f in findings] == ["R8"]
        assert "id()" in findings[0].message

    def test_out_of_scope_file_is_ignored(self):
        findings = run_rules(
            {"src/repro/storage/cache.py": "def key_of(t):\n    return id(t)\n"},
            select=["R8"],
        )
        assert findings == []

    def test_unkeyed_heappush_is_flagged(self):
        src = (
            "from heapq import heappush\n"
            "def push(heap, task):\n"
            "    heappush(heap, task)\n"
        )
        findings = run_rules({self.SCOPE: src}, select=["R8"])
        assert [f.rule for f in findings] == ["R8"]
        assert "heap" in findings[0].message

    def test_tuple_heappush_is_clean(self):
        src = (
            "from heapq import heappush\n"
            "def push(heap, t, seq, key):\n"
            "    heappush(heap, (t, 0, seq, key))\n"
        )
        assert run_rules({self.SCOPE: src}, select=["R8"]) == []

    def test_min_over_dict_view_is_flagged(self):
        src = (
            "def soonest(ready):\n"
            "    return min(ready.values())\n"
        )
        findings = run_rules({self.SCOPE: src}, select=["R8"])
        assert [f.rule for f in findings] == ["R8"]
        assert "values" in findings[0].message

    def test_unsorted_set_iteration_is_flagged_as_r8(self):
        src = (
            "def drain(parked):\n"
            "    out = []\n"
            "    for key in parked:\n"
            "        out.append(key)\n"
            "    return out\n"
        )
        findings = run_rules(
            {self.SCOPE: "PARKED = set()\n" + src.replace("parked", "PARKED")},
            select=["R8"],
        )
        assert findings and all(f.rule == "R8" for f in findings)

    def test_sorted_iteration_is_clean(self):
        src = (
            "PARKED = set()\n"
            "def drain():\n"
            "    return [k for k in sorted(PARKED)]\n"
        )
        assert run_rules({self.SCOPE: src}, select=["R8"]) == []


# ============================================================ R9 rpc pairing
class TestRpcPairing:
    def test_dispatch_without_abort_is_flagged(self):
        src = (
            "from repro.cluster.rpc import DISPATCH, COMPLETE, RpcMessage\n"
            "def send(bus, payload):\n"
            "    bus.send(RpcMessage(kind=DISPATCH, sender='m', payload=payload))\n"
            "    return COMPLETE\n"
        )
        findings = run_rules(
            {"src/repro/cluster/dispatcher.py": src}, select=["R9"]
        )
        assert [f.rule for f in findings] == ["R9"]
        assert "ABORT" in findings[0].message

    def test_dispatch_with_both_partners_is_clean(self):
        src = (
            "from repro.cluster.rpc import ABORT, COMPLETE, DISPATCH, RpcMessage\n"
            "def send(bus, payload):\n"
            "    bus.send(RpcMessage(kind=DISPATCH, sender='m', payload=payload))\n"
            "def cleanup(bus):\n"
            "    bus.send(RpcMessage(kind=ABORT, sender='m', payload=None))\n"
            "def finish():\n"
            "    return COMPLETE\n"
        )
        assert run_rules(
            {"src/repro/cluster/dispatcher.py": src}, select=["R9"]
        ) == []

    def test_break_on_named_charged_iterator_is_flagged(self):
        src = (
            "def skim(child, acc, n):\n"
            "    rows = child(acc)\n"
            "    out = []\n"
            "    for row in rows:\n"
            "        if len(out) >= n:\n"
            "            break\n"
            "        out.append(row)\n"
            "    return out\n"
        )
        findings = run_rules(
            {"src/repro/executor/skim.py": src}, select=["R9"]
        )
        assert [f.rule for f in findings] == ["R9"]
        assert "rows" in findings[0].message

    def test_closed_in_finally_is_clean(self):
        src = (
            "def skim(child, acc, n):\n"
            "    rows = child(acc)\n"
            "    out = []\n"
            "    try:\n"
            "        for row in rows:\n"
            "            if len(out) >= n:\n"
            "                break\n"
            "            out.append(row)\n"
            "    finally:\n"
            "        rows.close()\n"
            "    return out\n"
        )
        assert run_rules(
            {"src/repro/executor/skim.py": src}, select=["R9"]
        ) == []

    def test_getattr_close_in_finally_is_clean(self):
        src = (
            "def skim(child, acc, n):\n"
            "    rows = child(acc)\n"
            "    out = []\n"
            "    try:\n"
            "        for row in rows:\n"
            "            break\n"
            "    finally:\n"
            "        close = getattr(rows, 'close', None)\n"
            "        if close is not None:\n"
            "            close()\n"
            "    return out\n"
        )
        assert run_rules(
            {"src/repro/executor/skim.py": src}, select=["R9"]
        ) == []

    def test_contextlib_closing_is_clean(self):
        src = (
            "from contextlib import closing\n"
            "def skim(child, acc, n):\n"
            "    rows = child(acc)\n"
            "    out = []\n"
            "    with closing(rows):\n"
            "        for row in rows:\n"
            "            break\n"
            "    return out\n"
        )
        assert run_rules(
            {"src/repro/executor/skim.py": src}, select=["R9"]
        ) == []

    def test_anonymous_charged_iterator_break_is_flagged(self):
        src = (
            "def skim(child, acc):\n"
            "    for row in child(acc):\n"
            "        break\n"
        )
        findings = run_rules(
            {"src/repro/executor/skim.py": src}, select=["R9"]
        )
        assert [f.rule for f in findings] == ["R9"]
        assert "anonymous" in findings[0].message

    def test_exhausted_loop_without_break_is_clean(self):
        src = (
            "def consume(child, acc):\n"
            "    out = []\n"
            "    for row in child(acc):\n"
            "        out.append(row)\n"
            "    return out\n"
        )
        assert run_rules(
            {"src/repro/executor/skim.py": src}, select=["R9"]
        ) == []

    def test_out_of_scope_dir_is_ignored(self):
        src = (
            "def skim(child, acc):\n"
            "    for row in child(acc):\n"
            "        break\n"
        )
        assert run_rules({"src/repro/tpch/gen.py": src}, select=["R9"]) == []


# ===================================================== injected-race gate
class TestInjectedConcurrencyViolations:
    """Acceptance checks: each new rule must fire on a planted violation
    in a copy of the live tree, with the right rule id and file."""

    @pytest.fixture()
    def repo_copy(self, tmp_path):
        import shutil

        dest = tmp_path / "src" / "repro"
        shutil.copytree(REPO / "src" / "repro", dest)
        return tmp_path

    def _lint_tree(self, tree_root, select=None):
        new, _, _ = run_lint(root=tree_root, rules=get_rules(select))
        return new

    def test_injected_shared_dict_is_caught_by_r7(self, repo_copy):
        target = repo_copy / "src" / "repro" / "executor" / "concurrent.py"
        src = target.read_text()
        target.write_text(
            src + "\n_RACE = {}\n\n\ndef _poison(sn):\n    _RACE[sn] = sn\n"
        )
        hits = [f for f in self._lint_tree(repo_copy, ["R7"])]
        assert hits, "injected cross-query shared dict not caught"
        assert hits[0].rule == "R7"
        assert hits[0].path == "src/repro/executor/concurrent.py"
        assert hits[0].context == "_poison"
        assert "_RACE" in hits[0].message

    def test_injected_id_key_is_caught_by_r8(self, repo_copy):
        target = repo_copy / "src" / "repro" / "simtime" / "scheduler.py"
        src = target.read_text()
        line = src.count("\n") + 3  # blank + def, id() on the return line
        target.write_text(
            src + "\ndef _bad_key(obj):\n    return id(obj)\n"
        )
        hits = self._lint_tree(repo_copy, ["R8"])
        assert hits, "injected id() key not caught"
        assert hits[0].rule == "R8"
        assert hits[0].path == "src/repro/simtime/scheduler.py"
        assert hits[0].line == line

    def test_injected_abandoned_iterator_is_caught_by_r9(self, repo_copy):
        target = repo_copy / "src" / "repro" / "executor" / "runner.py"
        src = target.read_text()
        target.write_text(
            src
            + "\ndef _skim_rows(child, acc):\n"
            "    rows = child(acc)\n"
            "    for row in rows:\n"
            "        break\n"
        )
        hits = self._lint_tree(repo_copy, ["R9"])
        assert hits, "injected abandoned charged iterator not caught"
        assert hits[0].rule == "R9"
        assert hits[0].path == "src/repro/executor/runner.py"
        assert hits[0].context == "_skim_rows"


# ============================================================== determinism
class TestLintDeterminism:
    def test_findings_identical_across_runs_and_file_order(self):
        """The lint gate itself obeys R5's spirit: two full runs — one
        with the project's file list shuffled — must produce
        byte-identical findings (order included)."""
        import random

        project_a = load_project()
        findings_a = project_a.run(get_rules())

        project_b = load_project()
        random.Random(0xC0FFEE).shuffle(project_b.files)
        findings_b = project_b.run(get_rules())

        rendered_a = [f.render() for f in findings_a]
        rendered_b = [f.render() for f in findings_b]
        assert rendered_a == rendered_b
        assert [f.key() for f in findings_a] == [f.key() for f in findings_b]

    def test_repeat_run_is_byte_identical(self):
        first = [f.render() for f in load_project().run(get_rules())]
        second = [f.render() for f in load_project().run(get_rules())]
        assert first == second


# ============================================================ changed mode
class TestChangedMode:
    def _git(self, cwd, *args):
        return subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
            cwd=cwd, capture_output=True, text=True, check=True,
        )

    def test_changed_files_diff_plus_untracked(self, tmp_path):
        from repro.lint.__main__ import changed_files

        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text("A = 1\n")
        (pkg / "b.py").write_text("B = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        self._git(tmp_path, "init", "-b", "main")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-m", "seed")
        # One tracked modification, one untracked file, one deletion,
        # one non-source change: only the first two count.
        (pkg / "a.py").write_text("A = 2\n")
        (pkg / "c.py").write_text("C = 1\n")
        (pkg / "b.py").unlink()
        (tmp_path / "notes.txt").write_text("still not python\n")

        changed = changed_files(tmp_path)
        rel = sorted(str(p.relative_to(tmp_path)) for p in changed)
        assert rel == ["src/repro/a.py", "src/repro/c.py"]

    def test_changed_agrees_with_full_run(self):
        """--changed must report exactly the full run's findings for the
        files it lints — same rules, same keys, no subset-only noise."""
        cli = TestCli()
        changed_proc = cli.run_cli("--changed", "--json", "--no-baseline")
        if "no changed files" in changed_proc.stdout:
            pytest.skip("working tree matches main: nothing to compare")
        assert changed_proc.returncode in (0, 1), changed_proc.stderr
        changed_report = json.loads(changed_proc.stdout)
        from repro.lint.__main__ import changed_files

        changed_paths = {
            p.relative_to(REPO).as_posix() for p in changed_files(REPO)
        }
        full_proc = cli.run_cli("--json", "--no-baseline")
        full_report = json.loads(full_proc.stdout)
        full_on_changed = [
            f for f in full_report["findings"] if f["path"] in changed_paths
        ]
        assert changed_report["findings"] == full_on_changed

    def test_changed_excludes_explicit_paths(self):
        proc = TestCli().run_cli("--changed", "src/repro/engine.py")
        assert proc.returncode == 2
        assert "mutually exclusive" in proc.stderr


# ============================================================ baseline drift
class TestBaselineDrift:
    def test_drifted_pairs_stale_entry_with_moved_finding(self):
        entry = {
            "rule": "R4",
            "path": "src/repro/x.py",
            "context": "old_fn",
            "code": "except Exception:",
            "reason": "legacy fence",
        }
        baseline = Baseline([entry])
        moved = Finding(
            rule="R4",
            path="src/repro/x.py",
            line=42,
            message="swallowed",
            context="new_fn",
            code="except Exception:",
        )
        new, old = baseline.split([moved])
        assert new == [moved] and old == []
        drifts = baseline.drifted([moved])
        assert len(drifts) == 1
        assert drifts[0]["old_context"] == "old_fn"
        assert drifts[0]["new_context"] == "new_fn"
        assert drifts[0]["line"] == 42

    def test_truly_fixed_entry_is_stale_not_drifted(self):
        entry = {
            "rule": "R4",
            "path": "src/repro/x.py",
            "context": "old_fn",
            "code": "except Exception:",
            "reason": "legacy fence",
        }
        baseline = Baseline([entry])
        baseline.split([])
        assert baseline.unused() == [entry]
        assert baseline.drifted([]) == []

    def test_cli_reports_drift_loudly(self, tmp_path):
        """A baseline entry whose context went stale must surface as a
        loud BASELINE DRIFT line carrying both contexts — not as two
        disconnected half-truths."""
        entries = Baseline.load(default_baseline_path()).entries
        assert entries, "live baseline unexpectedly empty"
        mutated = [dict(e) for e in entries]
        real_context = mutated[0]["context"]
        mutated[0]["context"] = "renamed_away_fn"
        drifted_path = tmp_path / "baseline.json"
        drifted_path.write_text(json.dumps(mutated))

        proc = TestCli().run_cli("--baseline", str(drifted_path))
        assert proc.returncode == 1
        assert "BASELINE DRIFT" in proc.stdout
        assert "renamed_away_fn" in proc.stdout
        assert real_context in proc.stdout

        json_proc = TestCli().run_cli("--baseline", str(drifted_path), "--json")
        report = json.loads(json_proc.stdout)
        drifted = report["drifted_baseline_entries"]
        assert len(drifted) == 1
        assert drifted[0]["old_context"] == "renamed_away_fn"
        assert drifted[0]["new_context"] == real_context
