"""Tests for the benchmark harness: scale math, caching, comparisons."""

import pytest

from repro.bench.harness import (
    BenchConfig,
    HawqBench,
    NOMINAL_160GB,
    get_data,
    get_hawq,
    raw_bytes,
    rows_match,
    suite_seconds,
)
from repro.bench.reporting import format_table, print_figure


class TestScaleMath:
    def test_model_scale_definition(self):
        config = BenchConfig(
            nominal_bytes=160e9, sim_segments=16, paper_segments=96
        )
        # nominal per real segment / actual per simulated segment
        actual = 2.5e6
        expected = (160e9 / 96) / (actual / 16)
        assert config.model_scale(actual) == pytest.approx(expected)

    def test_raw_bytes_counts_all_tables(self):
        data = get_data(0.001)
        total = raw_bytes(data)
        assert total > 0
        assert total > sum(1 for _ in data.lineitem)  # more than 1B/row

    def test_suite_seconds_skips_oom(self):
        class FakeCost:
            seconds = 2.0

        class FakeResult:
            cost = FakeCost()

        class FakeStinger:
            seconds = 5.0

        results = {
            1: FakeResult(),
            2: (FakeStinger(), "ok"),
            3: (None, "oom"),
        }
        assert suite_seconds(results) == 7.0


class TestRowsMatch:
    def test_order_insensitive(self):
        assert rows_match([(1, "a"), (2, "b")], [(2, "b"), (1, "a")])

    def test_float_tolerance(self):
        assert rows_match([(1.0000000001,)], [(1.0,)])
        assert not rows_match([(1.1,)], [(1.0,)])

    def test_none_values(self):
        assert rows_match([(None, 1)], [(None, 1)])
        assert not rows_match([(None,)], [(1,)])

    def test_length_mismatch(self):
        assert not rows_match([(1,)], [(1,), (2,)])

    def test_float_noise_does_not_reorder(self):
        left = [(1.0, "x"), (1.0 + 1e-12, "y")]
        right = [(1.0, "x"), (1.0, "y")]
        assert rows_match(left, right)


class TestCaching:
    def test_data_memoized(self):
        assert get_data(0.001) is get_data(0.001)
        assert get_data(0.001) is not get_data(0.001, seed=1)

    def test_hawq_bench_memoized(self):
        config = BenchConfig(
            nominal_bytes=NOMINAL_160GB, scale_factor=0.001, io_cached=True
        )
        assert get_hawq(config) is get_hawq(
            BenchConfig(
                nominal_bytes=NOMINAL_160GB, scale_factor=0.001, io_cached=True
            )
        )

    def test_query_results_memoized(self):
        config = BenchConfig(
            nominal_bytes=NOMINAL_160GB, scale_factor=0.001, io_cached=True
        )
        bench = get_hawq(config)
        assert bench.run_query(6) is bench.run_query(6)

    def test_stored_bytes_positive(self):
        config = BenchConfig(
            nominal_bytes=NOMINAL_160GB, scale_factor=0.001, io_cached=True
        )
        bench = get_hawq(config)
        assert bench.table_stored_bytes("lineitem") > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [("a", 1.5), ("long-name", 12345.0)]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "12,345" in text

    def test_print_figure_returns_text(self, capsys):
        text = print_figure("Title", ["c"], [(1,)], notes=["note"])
        assert "Title" in text
        assert "note" in text
        assert "Title" in capsys.readouterr().out
