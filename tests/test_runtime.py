"""Tests for the message-passing master/segment runtime: the RPC bus,
the exchange fabric, and the scheduler-composed query timing."""

import pytest

from repro import Engine
from repro.cluster.rpc import DISPATCH, RpcBus, RpcMessage
from repro.errors import InterconnectError, SegmentDown
from repro.interconnect.exchange import ExchangeFabric
from repro.network import SimNetwork
from repro.planner.dispatch import QD_SEGMENT
from repro.simtime import CostAccumulator, CostModel


def _bus():
    net = SimNetwork()
    return net, RpcBus(net)


class TestRpcBus:
    def test_roundtrip_delivery(self):
        net, bus = _bus()
        got = []
        bus.register("master", lambda m: got.append(m))
        bus.register("seg0", lambda m: got.append(m))
        bus.send(
            "master", "seg0", RpcMessage(kind=DISPATCH, sender="master")
        )
        net.run()
        assert len(got) == 1 and got[0].sender == "master"

    def test_duplicate_name_rejected(self):
        _net, bus = _bus()
        bus.register("seg0", lambda m: None)
        with pytest.raises(InterconnectError):
            bus.register("seg0", lambda m: None)

    def test_send_to_dropped_channel_raises(self):
        _net, bus = _bus()
        bus.register("master", lambda m: None)
        bus.register("seg0", lambda m: None)
        bus.drop("seg0")
        assert not bus.is_open("seg0")
        with pytest.raises(SegmentDown):
            bus.send("master", "seg0", RpcMessage(kind=DISPATCH, sender="master"))

    def test_send_from_dropped_channel_raises(self):
        # A killed worker discovers its own death when it reports back.
        _net, bus = _bus()
        bus.register("master", lambda m: None)
        bus.register("seg0", lambda m: None)
        bus.drop("seg0")
        with pytest.raises(SegmentDown):
            bus.send("seg0", "master", RpcMessage(kind=DISPATCH, sender="seg0"))

    def test_in_flight_datagram_to_dead_channel_vanishes(self):
        # UDP semantics: the endpoint stays bound, data just disappears.
        net, bus = _bus()
        got = []
        bus.register("master", lambda m: None)
        bus.register("seg0", lambda m: got.append(m))
        bus.send("master", "seg0", RpcMessage(kind=DISPATCH, sender="master"))
        bus.drop("seg0")
        net.run()
        assert got == []

    def test_charged_send_pays_bytes_plus_one_latency(self):
        _net, bus = _bus()
        bus.register("master", lambda m: None)
        bus.register("seg0", lambda m: None)
        model = CostModel()
        # Control traffic is a fixed cost: plan bytes do not grow with
        # data volume, so the scale factor must not touch them.
        model.scale = 1000.0
        acc = CostAccumulator(model)
        bus.send(
            "master",
            "seg0",
            RpcMessage(kind=DISPATCH, sender="master", size=9000),
            acc=acc,
        )
        expected = 9000 / model.net_bw + model.net_latency
        assert acc.seconds == pytest.approx(expected)
        assert acc.net_bytes == 9000


class TestExchangeFabric:
    def test_streams_concatenate_in_sender_order(self):
        net = SimNetwork()
        fabric = ExchangeFabric(net)
        for seg in (QD_SEGMENT, 0, 1, 2):
            fabric.attach(seg)
        # Send out of segment order; receive must still be segment-asc.
        fabric.send(7, 5, 2, QD_SEGMENT, [("c",)], 8)
        fabric.send(7, 5, 0, QD_SEGMENT, [("a",)], 8)
        fabric.send(7, 5, 1, QD_SEGMENT, [("b",)], 8)
        net.run()
        rows, nbytes = fabric.receive(7, 5, QD_SEGMENT)
        assert rows == [("a",), ("b",), ("c",)]
        assert nbytes == 24
        assert len(fabric.records) == 3

    def test_receive_drains_inbox(self):
        net = SimNetwork()
        fabric = ExchangeFabric(net)
        fabric.attach(0)
        fabric.attach(1)
        fabric.send(7, 1, 0, 1, [(1,)], 4)
        net.run()
        assert fabric.receive(7, 1, 1)[0] == [(1,)]
        assert fabric.receive(7, 1, 1) == ([], 0)

    def test_clear_scoped_to_one_query(self):
        # Two in-flight queries share the fabric; clearing one must not
        # disturb the other's streams or records.
        net = SimNetwork()
        fabric = ExchangeFabric(net)
        fabric.attach(0)
        fabric.attach(1)
        fabric.send(7, 1, 0, 1, [(1,)], 4)
        fabric.send(8, 1, 0, 1, [(2,)], 4)
        net.run()
        fabric.clear(7)
        assert fabric.receive(7, 1, 1) == ([], 0)
        assert fabric.receive(8, 1, 1)[0] == [(2,)]
        assert [r.query_id for r in fabric.records] == [8]

    def test_reset_clears_streams_and_records(self):
        net = SimNetwork()
        fabric = ExchangeFabric(net)
        fabric.attach(0)
        fabric.attach(1)
        fabric.send(7, 1, 0, 1, [(1,)], 4)
        net.run()
        fabric.reset()
        assert fabric.receive(7, 1, 1) == ([], 0)
        assert fabric.records == []

    def test_attach_is_idempotent(self):
        # A revived worker re-attaches to its old exchange endpoint.
        fabric = ExchangeFabric(SimNetwork())
        fabric.attach(0)
        fabric.attach(0)
        assert len(fabric._addresses) == 1


@pytest.fixture(scope="module")
def session():
    engine = Engine(num_segment_hosts=2, segments_per_host=2)
    s = engine.connect()
    s.execute(
        "CREATE TABLE pts (id INT NOT NULL, v INT) DISTRIBUTED BY (id)"
    )
    s.execute(
        "INSERT INTO pts VALUES "
        + ", ".join(f"({i}, {i * 3})" for i in range(32))
    )
    return s


class TestDistributedExecution:
    def test_seconds_decompose_into_makespan_plus_overhead(self, session):
        result = session.execute("SELECT v, count(*) FROM pts GROUP BY v")
        assert result.makespan > 0
        assert result.overhead_seconds > 0
        assert result.cost.seconds == pytest.approx(
            result.makespan + result.overhead_seconds
        )
        assert result.critical_path  # non-empty chain ending at the top
        top = result.plan.top_slice.slice_id
        assert result.critical_path[-1][0] == top

    def test_every_gang_slice_runs_on_workers_not_inline(self, session):
        result = session.execute(
            "SELECT v, count(*) FROM pts GROUP BY v ORDER BY v"
        )
        gangs = {s.slice_id: s.gang for s in result.plan.slices}
        for slice_id, timing in result.slices.items():
            if gangs[slice_id] == "1":
                assert set(timing.tasks) == {QD_SEGMENT}
            else:
                # One task per segment, each executed by a SegmentWorker.
                assert set(timing.tasks) == set(
                    range(session.engine.num_segments)
                )

    def test_direct_dispatch_contacts_one_segment(self, session):
        result = session.execute("SELECT v FROM pts WHERE id = 7")
        assert result.plan.direct_dispatch_segment is not None
        gang_n = [
            timing
            for slice_id, timing in result.slices.items()
            if QD_SEGMENT not in timing.tasks
        ]
        assert gang_n  # the scan slice exists...
        for timing in gang_n:
            assert len(timing.tasks) == 1  # ...and ran on one segment only

    def test_direct_dispatch_charges_fewer_dispatches(self, session):
        # Fixed dispatch costs are charged on the RPC send path, so a
        # plan contacting one segment pays fewer per-segment costs.
        direct = session.execute("SELECT v FROM pts WHERE id = 7")
        full = session.execute("SELECT v FROM pts WHERE v = 21")
        assert full.plan.direct_dispatch_segment is None
        assert direct.overhead_seconds < full.overhead_seconds

    def test_explain_analyze_reports_per_segment_timelines(self, session):
        result = session.execute(
            "EXPLAIN ANALYZE SELECT v, count(*) FROM pts GROUP BY v"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "actual time=" in text
        assert "rows sent=" in text
        assert "seg0:" in text and "seg3:" in text
        assert "critical path" in text
        assert "Total:" in text

    def test_restart_after_kill_outside_query(self, session):
        engine = session.engine
        engine.fail_segment(0)
        try:
            engine.fault_detector.assign_failover()
            result = session.execute("SELECT count(*) FROM pts")
            assert result.rows == [(32,)]
        finally:
            engine.recover_segment(0)
