"""Tests for expression evaluation semantics and executor operators,
driven end-to-end through a small engine (the executor's natural API)."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine
from repro.errors import ExecutorError
from repro.executor.aggregates import make_state
from repro.executor.expr import (
    add_interval,
    compile_expr,
    estimate_row_bytes,
    like_match,
    sql_arith,
    sql_compare,
)
from repro.planner import exprs as ex


@pytest.fixture(scope="module")
def session():
    engine = Engine(num_segment_hosts=2, segments_per_host=2)
    s = engine.connect()
    s.execute(
        "CREATE TABLE nums (a INT NOT NULL, b INT, t TEXT, d DATE, f FLOAT) "
        "DISTRIBUTED BY (a)"
    )
    rows = []
    for i in range(40):
        rows.append(
            (
                i,
                None if i % 7 == 0 else i * 2,
                None if i % 11 == 0 else f"str{i % 4}",
                datetime.date(1995, 1, 1) + datetime.timedelta(days=i * 17),
                i / 3.0,
            )
        )
    s.load_rows("nums", [s.engine.catalog.get_schema("nums",
        s.engine.txns.begin().statement_snapshot()).coerce_row(r) for r in rows])
    return s


class TestValueSemantics:
    def test_comparisons_with_null(self):
        assert sql_compare("=", None, 1) is None
        assert sql_compare("<", 1, None) is None
        assert sql_compare("<>", 2, 3) is True

    def test_arithmetic_with_null(self):
        assert sql_arith("+", None, 1) is None
        assert sql_arith("*", 2, None) is None

    def test_division(self):
        assert sql_arith("/", 7, 2) == 3.5  # SQL numeric, not floor

    def test_division_by_zero(self):
        with pytest.raises(ExecutorError):
            sql_arith("/", 1, 0)

    def test_concat(self):
        assert sql_arith("||", "a", 1) == "a1"

    def test_like(self):
        assert like_match("forest green", "forest%")
        assert like_match("abc", "a_c")
        assert not like_match("abc", "a_d")
        assert like_match(None, "x%") is None
        assert like_match("special requests here", "%special%requests%")

    def test_add_interval_months_clamp(self):
        assert add_interval(datetime.date(1999, 1, 31), 1, "month") == datetime.date(
            1999, 2, 28
        )

    def test_add_interval_year(self):
        assert add_interval(datetime.date(1994, 1, 1), 1, "year") == datetime.date(
            1995, 1, 1
        )

    def test_interval_subtract(self):
        assert add_interval(
            datetime.date(1998, 12, 1), 90, "day", sign=-1
        ) == datetime.date(1998, 9, 2)

    @given(
        row=st.tuples(
            st.integers(-100, 100),
            st.one_of(st.none(), st.text(max_size=8)),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_estimate_row_bytes_positive(self, row):
        assert estimate_row_bytes(row) > 0


class TestCompiledExpressions:
    LAYOUT = [("r", 0, 0), ("r", 0, 1)]

    def run(self, expr, row):
        return compile_expr(expr, self.LAYOUT)(row)

    def test_three_valued_and(self):
        var = ex.BVar(0, 0)
        null = ex.BConst(None)
        expr = ex.BOp("and", ex.BOp("=", var, var), ex.BOp("=", null, null))
        assert self.run(expr, (1, 2)) is None  # true AND unknown = unknown
        false_side = ex.BOp(
            "and", ex.BOp("=", ex.BConst(1), ex.BConst(2)), ex.BOp("=", null, null)
        )
        assert self.run(false_side, (1, 2)) is False  # false AND unknown

    def test_three_valued_or(self):
        null_eq = ex.BOp("=", ex.BConst(None), ex.BConst(1))
        true_side = ex.BOp("or", ex.BOp("=", ex.BConst(1), ex.BConst(1)), null_eq)
        assert self.run(true_side, ()) is True
        unknown = ex.BOp("or", ex.BOp("=", ex.BConst(1), ex.BConst(2)), null_eq)
        assert self.run(unknown, ()) is None

    def test_not_null(self):
        expr = ex.BNot(ex.BOp("=", ex.BConst(None), ex.BConst(1)))
        assert self.run(expr, ()) is None

    def test_case_first_match(self):
        expr = ex.BCase(
            whens=(
                (ex.BOp(">", ex.BVar(0, 0), ex.BConst(5)), ex.BConst("big")),
                (ex.BOp(">", ex.BVar(0, 0), ex.BConst(1)), ex.BConst("mid")),
            ),
            else_result=ex.BConst("small"),
        )
        assert self.run(expr, (10,)) == "big"
        assert self.run(expr, (3,)) == "mid"
        assert self.run(expr, (0,)) == "small"

    def test_case_no_else_null(self):
        expr = ex.BCase(
            whens=((ex.BOp(">", ex.BVar(0, 0), ex.BConst(5)), ex.BConst(1)),)
        )
        assert self.run(expr, (0,)) is None

    def test_in_list(self):
        expr = ex.BIn(ex.BVar(0, 0), (ex.BConst(1), ex.BConst(2)), negated=False)
        assert self.run(expr, (2,)) is True
        assert self.run(expr, (3,)) is False
        assert self.run(expr, (None,)) is None

    def test_functions(self):
        sub = ex.BFunc("substring", (ex.BConst("13-555"), ex.BConst(1), ex.BConst(2)))
        assert self.run(sub, ()) == "13"
        assert self.run(ex.BFunc("upper", (ex.BConst("ab"),)), ()) == "AB"
        assert self.run(ex.BFunc("coalesce", (ex.BConst(None), ex.BConst(3))), ()) == 3
        assert self.run(ex.BFunc("nullif", (ex.BConst(3), ex.BConst(3))), ()) is None

    def test_extract(self):
        expr = ex.BExtract("year", ex.BConst(datetime.date(1997, 3, 1)))
        assert self.run(expr, ()) == 1997

    def test_cast(self):
        expr = ex.BCast(ex.BConst("42"), "int")
        assert self.run(expr, ()) == 42

    def test_missing_column_raises(self):
        with pytest.raises(ExecutorError):
            compile_expr(ex.BVar(9, 9), self.LAYOUT)


class TestAggregateStates:
    def test_count_star_counts_nulls(self):
        state = make_state(ex.BAgg("count", None))
        for value in (1, None, 2):
            state.accumulate(value)
        assert state.finalize() == 3

    def test_count_column_skips_nulls(self):
        state = make_state(ex.BAgg("count", ex.BVar(0, 0)))
        for value in (1, None, 2):
            state.accumulate(value)
        assert state.finalize() == 2

    def test_sum_empty_is_null(self):
        assert make_state(ex.BAgg("sum", ex.BVar(0, 0))).finalize() is None

    def test_avg(self):
        state = make_state(ex.BAgg("avg", ex.BVar(0, 0)))
        for value in (2, 4, None):
            state.accumulate(value)
        assert state.finalize() == 3

    def test_min_max(self):
        lo = make_state(ex.BAgg("min", ex.BVar(0, 0)))
        hi = make_state(ex.BAgg("max", ex.BVar(0, 0)))
        for value in (5, None, 1, 9):
            lo.accumulate(value)
            hi.accumulate(value)
        assert (lo.finalize(), hi.finalize()) == (1, 9)

    def test_merge(self):
        a = make_state(ex.BAgg("avg", ex.BVar(0, 0)))
        b = make_state(ex.BAgg("avg", ex.BVar(0, 0)))
        a.accumulate(2)
        b.accumulate(4)
        a.merge(b)
        assert a.finalize() == 3

    def test_distinct(self):
        state = make_state(ex.BAgg("count", ex.BVar(0, 0), distinct=True))
        for value in (1, 1, 2, None, 2):
            state.accumulate(value)
        assert state.finalize() == 2

    def test_distinct_merge_rejected(self):
        a = make_state(ex.BAgg("sum", ex.BVar(0, 0), distinct=True))
        b = make_state(ex.BAgg("sum", ex.BVar(0, 0), distinct=True))
        with pytest.raises(ExecutorError):
            a.merge(b)


class TestOperatorsEndToEnd:
    def test_filter_keeps_only_true(self, session):
        rows = session.query("SELECT a FROM nums WHERE b > 20")
        # b is NULL every 7th row: NULL comparisons must not pass
        assert all(a % 7 != 0 for (a,) in rows)

    def test_left_join_pads_nulls(self, session):
        session.execute(
            "CREATE TABLE rhs (a INT, tag TEXT) DISTRIBUTED BY (a)"
        )
        session.execute("INSERT INTO rhs VALUES (1, 'one'), (3, 'three')")
        rows = session.query(
            "SELECT n.a, r.tag FROM nums n LEFT JOIN rhs r ON n.a = r.a "
            "WHERE n.a < 5 ORDER BY n.a"
        )
        assert rows == [
            (0, None),
            (1, "one"),
            (2, None),
            (3, "three"),
            (4, None),
        ]

    def test_count_left_join_null_column(self, session):
        rows = session.query(
            "SELECT count(r.tag) FROM nums n LEFT JOIN rhs r ON n.a = r.a"
        )
        assert rows == [(2,)]

    def test_sort_nulls_last_asc(self, session):
        rows = session.query("SELECT b FROM nums ORDER BY b LIMIT 40")
        values = [r[0] for r in rows]
        nulls_at = [i for i, v in enumerate(values) if v is None]
        assert nulls_at == list(range(len(values) - len(nulls_at), len(values)))

    def test_sort_desc_nulls_first(self, session):
        rows = session.query("SELECT b FROM nums ORDER BY b DESC LIMIT 5")
        assert rows[0][0] is None

    def test_sort_multi_key_stable_with_nulls(self, session):
        rows = session.query(
            "SELECT t, b, a FROM nums ORDER BY t NULLS LAST, b DESC, a"
        )

        def reference_key(row):
            t, b, a = row
            return (
                (1, t) if t is not None else (2, ""),  # asc, NULLS LAST
                (0,) if b is None else (1, -b),        # desc, NULLS FIRST
                a,
            )

        assert rows == sorted(rows, key=reference_key)
        # Same multiset of rows, and ties on (t, b) keep ascending a —
        # i.e. the later keys really are applied, not just the first.
        assert sorted(rows, key=repr) == sorted(
            session.query("SELECT t, b, a FROM nums"), key=repr
        )
        for prev, cur in zip(rows, rows[1:]):
            if prev[0] == cur[0] and prev[1] == cur[1]:
                assert prev[2] < cur[2]

    def test_limit(self, session):
        assert len(session.query("SELECT a FROM nums LIMIT 7")) == 7

    def test_group_by_includes_null_group(self, session):
        rows = session.query("SELECT t, count(*) FROM nums GROUP BY t")
        groups = {r[0] for r in rows}
        assert None in groups

    def test_aggregate_over_empty_input(self, session):
        rows = session.query("SELECT count(*), sum(a), min(a) FROM nums WHERE a < 0")
        assert rows == [(0, None, None)]

    def test_group_by_empty_input_no_rows(self, session):
        rows = session.query(
            "SELECT t, count(*) FROM nums WHERE a < 0 GROUP BY t"
        )
        assert rows == []

    def test_semi_join_no_duplicates(self, session):
        session.execute("CREATE TABLE dups (a INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO dups VALUES (1), (1), (1), (2)")
        rows = session.query(
            "SELECT a FROM nums WHERE a IN (SELECT a FROM dups) ORDER BY a"
        )
        assert rows == [(1,), (2,)]

    def test_anti_join(self, session):
        rows = session.query(
            "SELECT a FROM nums WHERE a NOT IN (SELECT a FROM dups) AND a < 5 "
            "ORDER BY a"
        )
        assert rows == [(0,), (3,), (4,)]

    def test_date_arithmetic_in_where(self, session):
        rows = session.query(
            "SELECT count(*) FROM nums "
            "WHERE d < date '1995-01-01' + interval '2' month"
        )
        assert rows[0][0] > 0

    def test_no_from_select(self, session):
        assert session.query("SELECT 1 + 2, 'x' || 'y'") == [(3, "xy")]

    def test_scalar_functions_in_query(self, session):
        rows = session.query(
            "SELECT substring(t from 1 for 3) FROM nums WHERE t IS NOT NULL LIMIT 1"
        )
        assert rows[0][0] == "str"
