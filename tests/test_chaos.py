"""Chaos suite: seeded fault schedules must never corrupt an answer.

The property tests run the TPC-H chaos script under 50 randomized-but-
seeded fault schedules (segment kills, disk/DataNode failures, master
crashes, transaction aborts, interconnect degradation) and assert the
three chaos properties: answers bit-identical to the fault-free twin,
failures always clean ClusterErrors, and recovery invariants after heal
(replication restored, catalog correct on the serving master, committed
data exact, no orphaned segfiles). The targeted tests pin each recovery
path individually.
"""

import pytest

from repro.chaos import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    build_engine,
    fault_free_baseline,
    generate_data,
    orphaned_files,
    random_plan,
    run_drill,
    run_schedule,
    run_smoke,
)
from repro.engine import Engine
from repro.errors import (
    ClusterError,
    MasterUnavailable,
    QueryRetriesExhausted,
    SegmentDown,
    TransactionAbortedByFault,
)
from repro.network import NetworkConditions

N_SCHEDULES = 50


@pytest.fixture(scope="module")
def data():
    return generate_data()


@pytest.fixture(scope="module")
def baseline(data):
    return fault_free_baseline(data)


# ---------------------------------------------------------------------------
# The property suite: 50 seeded schedules.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_chaos_schedule_properties_hold(seed, data, baseline):
    report = run_schedule(seed, data, baseline)
    assert report.violations == []


def test_smoke(data):
    """The ``python -m repro.chaos --smoke`` sweep, tier-1 sized."""
    summary = run_smoke(schedules=3, data=data)
    assert summary["ok"], summary["violations"]
    assert summary["faults_fired"] > 0


def test_schedules_fire_diverse_faults(data, baseline):
    """Across the seeds the sweep must actually exercise every recovery
    path: restarts, promotions and clean failures all occur somewhere."""
    reports = [run_schedule(seed, data, baseline) for seed in (3, 7, 11, 19)]
    fired = [note for report in reports for _, note in report.fired]
    assert any("kill_segment" in note for note in fired)
    assert len(fired) > 0


# ---------------------------------------------------------------------------
# Targeted recovery paths.
# ---------------------------------------------------------------------------


def _small_table(session, rows=4000):
    session.execute("CREATE TABLE t (a INTEGER, b INTEGER) DISTRIBUTED BY (a)")
    session.load_rows("t", [(i, i * 2) for i in range(rows)])


SQL = "SELECT count(*), sum(b), min(a), max(b) FROM t"


def test_mid_query_segment_kill_is_restarted():
    """Acceptance: killing one segment mid-query yields a *successful*
    query — restarted against a failover assignment — with the same rows
    as a fault-free run, and the result records that a restart happened."""
    engine = build_engine()
    session = engine.connect()
    _small_table(session)
    expected = session.query(SQL)

    injector = FaultInjector(
        engine, FaultPlan([FaultEvent(1e-9, "kill_segment", 1)])
    )
    engine.attach_chaos(injector)
    result = session.execute(SQL)

    assert result.retries >= 1  # the dispatcher really did restart
    assert result.rows == expected
    killed = engine.segments[1]
    assert not killed.alive
    assert killed.acting_host is not None  # failover host took over
    assert killed.acting_host != killed.host
    assert any("kill_segment" in note for _, note in injector.fired)


def test_retry_backoff_charges_simulated_time():
    engine = build_engine()
    session = engine.connect()
    _small_table(session)
    fault_free = session.execute(SQL)

    engine.attach_chaos(
        FaultInjector(engine, FaultPlan([FaultEvent(1e-9, "kill_segment", 0)]))
    )
    result = session.execute(SQL)
    assert result.retries >= 1
    assert result.cost.seconds > fault_free.cost.seconds


def test_retries_exhausted_is_a_clean_error():
    engine = Engine(
        num_segment_hosts=3,
        segments_per_host=2,
        seed=0,
        replication=3,
        block_size=16 * 1024,
        max_query_retries=0,
    )
    session = engine.connect()
    _small_table(session, rows=500)
    engine.attach_chaos(
        FaultInjector(engine, FaultPlan([FaultEvent(1e-9, "kill_segment", 0)]))
    )
    with pytest.raises(QueryRetriesExhausted):
        session.execute(SQL)


def test_reads_fall_back_to_surviving_replicas():
    """A dead DataNode is masked by HDFS replica fallback: the query
    succeeds without even a restart."""
    engine = build_engine()
    session = engine.connect()
    _small_table(session)
    expected = session.query(SQL)

    engine.hdfs.fail_datanode("host1")
    result = session.execute(SQL)
    assert result.rows == expected
    assert result.retries == 0


def test_master_crash_mid_query_promotes_standby():
    engine = build_engine()
    session = engine.connect()
    _small_table(session)
    expected = session.query(SQL)

    engine.attach_chaos(
        FaultInjector(engine, FaultPlan([FaultEvent(1e-9, "crash_master")]))
    )
    with pytest.raises(MasterUnavailable):
        session.execute(SQL)

    # The promoted standby now serves: committed data intact, same rows.
    assert engine.standby is None
    assert session.query(SQL) == expected


def test_wal_point_abort_rolls_back_and_leaves_no_orphans():
    engine = build_engine()
    session = engine.connect()
    session.execute("CREATE TABLE t2 (a INTEGER) DISTRIBUTED BY (a)")
    injector = FaultInjector(engine, FaultPlan(abort_at_lsn_offsets=[1]))
    engine.attach_chaos(injector)

    with pytest.raises(TransactionAbortedByFault):
        session.execute("INSERT INTO t2 VALUES (1)")
    injector.detach()
    engine.chaos = None

    assert session.query("SELECT count(*) FROM t2") == [(0,)]
    assert orphaned_files(engine) == []  # truncate-on-abort reclaimed all


def test_abort_txn_event_only_fires_in_query():
    engine = build_engine()
    session = engine.connect()
    _small_table(session, rows=500)
    injector = FaultInjector(
        engine, FaultPlan([FaultEvent(1e-9, "abort_txn")])
    )
    engine.attach_chaos(injector)
    with pytest.raises(TransactionAbortedByFault):
        session.execute(SQL)
    # Consumed: the next query runs clean.
    assert session.execute(SQL).retries == 0


def test_all_segments_down_fails_clean():
    engine = build_engine()
    session = engine.connect()
    _small_table(session, rows=500)
    for segment in engine.segments:
        engine.fail_segment(segment.segment_id)
    with pytest.raises(ClusterError):
        session.execute(SQL)


# ---------------------------------------------------------------------------
# Plans and determinism.
# ---------------------------------------------------------------------------


HOSTS = ["host0", "host1", "host2"]


def test_random_plan_is_deterministic():
    a = random_plan(7, 1.0, hosts=HOSTS, num_segments=6)
    b = random_plan(7, 1.0, hosts=HOSTS, num_segments=6)
    assert a == b


def test_random_plan_respects_survivability_bounds():
    for seed in range(200):
        plan = random_plan(seed, 1.0, hosts=HOSTS, num_segments=6, replication=3)
        kinds = [event.kind for event in plan.events]
        assert kinds.count("fail_disk") <= 2  # replication - 1
        assert kinds.count("crash_master") <= 1  # one standby
        assert kinds.count("fail_datanode") == kinds.count("revive_datanode")
        assert all(0.0 <= event.at <= 1.0 for event in plan.events)
        # fail_disk events never target the same host twice.
        disk_hosts = [e.target for e in plan.events if e.kind == "fail_disk"]
        assert len(disk_hosts) == len(set(disk_hosts))


def test_unknown_event_kind_rejected():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        FaultEvent(0.0, "set_fire_to_rack")


def test_schedule_reports_are_reproducible(data, baseline):
    a = run_schedule(13, data, baseline)
    b = run_schedule(13, data, baseline)
    assert a.fired == b.fired
    assert a.clean_failures == b.clean_failures
    assert a.retries == b.retries


# ---------------------------------------------------------------------------
# Interconnect drill: packet chaos.
# ---------------------------------------------------------------------------


def test_drill_survives_degraded_fabric():
    report = run_drill(3)
    assert report.ok
    assert report.retransmits > 0  # the loss actually bit


def test_drill_drops_corrupted_packets_and_still_delivers():
    report = run_drill(
        5, conditions=NetworkConditions(corrupt_rate=0.2), messages=120
    )
    assert report.ok
    assert report.corrupt_dropped > 0


def test_drill_is_deterministic():
    assert run_drill(11) == run_drill(11)
