"""End-to-end engine tests: DDL, DML, transactions, views, EXPLAIN,
ANALYZE, metadata dispatch, and the full SQL surface."""

import datetime

import pytest

from repro import Engine
from repro.errors import (
    DuplicateObject,
    SemanticError,
    TransactionError,
    UndefinedObject,
)


@pytest.fixture
def engine():
    return Engine(num_segment_hosts=2, segments_per_host=2)


@pytest.fixture
def session(engine):
    return engine.connect()


class TestDdl:
    def test_create_insert_select(self, session):
        session.execute("CREATE TABLE t (a INT, b TEXT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, NULL)")
        rows = session.query("SELECT a, b FROM t ORDER BY a")
        assert rows == [(1, "x"), (2, "y"), (3, None)]

    def test_duplicate_table(self, session):
        session.execute("CREATE TABLE t (a INT)")
        with pytest.raises(DuplicateObject):
            session.execute("CREATE TABLE t (a INT)")

    def test_storage_options(self, session, engine):
        session.execute(
            "CREATE TABLE t (a INT) WITH (appendonly=true, orientation=column, "
            "compresstype=zlib, compresslevel=9)"
        )
        snapshot = engine.txns.begin().statement_snapshot()
        schema = engine.catalog.get_schema("t", snapshot)
        assert schema.storage_format == "co"
        assert schema.compression == "zlib9"

    def test_default_distribution_first_column(self, session, engine):
        session.execute("CREATE TABLE t (a INT, b INT)")
        snapshot = engine.txns.begin().statement_snapshot()
        schema = engine.catalog.get_schema("t", snapshot)
        assert schema.distribution.columns == ("a",)

    def test_drop_table(self, session):
        session.execute("CREATE TABLE t (a INT)")
        session.execute("DROP TABLE t")
        with pytest.raises(SemanticError):
            session.query("SELECT * FROM t")

    def test_drop_missing(self, session):
        with pytest.raises(UndefinedObject):
            session.execute("DROP TABLE never_existed")
        session.execute("DROP TABLE IF EXISTS never_existed")  # no error

    def test_drop_blocked_by_view(self, session):
        session.execute("CREATE TABLE t (a INT)")
        session.execute("CREATE VIEW v AS SELECT a FROM t")
        with pytest.raises(SemanticError, match="depend"):
            session.execute("DROP TABLE t")
        session.execute("DROP VIEW v")
        session.execute("DROP TABLE t")

    def test_insert_column_subset(self, session):
        session.execute("CREATE TABLE t (a INT, b TEXT, c INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO t (c, a) VALUES (30, 1)")
        assert session.query("SELECT a, b, c FROM t") == [(1, None, 30)]

    def test_insert_select(self, session):
        session.execute("CREATE TABLE src (a INT) DISTRIBUTED BY (a)")
        session.execute("CREATE TABLE dst (a INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO src VALUES (1), (2), (3)")
        session.execute("INSERT INTO dst SELECT a FROM src WHERE a > 1")
        assert sorted(session.query("SELECT a FROM dst")) == [(2,), (3,)]

    def test_truncate_table(self, session):
        session.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.execute("TRUNCATE TABLE t")
        assert session.query("SELECT count(*) FROM t") == [(0,)]


class TestPartitionedTables:
    def test_create_routes_and_prunes(self, session):
        session.execute(
            """
            CREATE TABLE sales (id INT, d DATE, amt DECIMAL(10,2))
            DISTRIBUTED BY (id)
            PARTITION BY RANGE (d)
            (START (date '2008-01-01') INCLUSIVE
             END (date '2008-07-01') EXCLUSIVE
             EVERY (INTERVAL '1 month'))
            """
        )
        session.execute(
            "INSERT INTO sales VALUES (1, date '2008-01-15', 10.0), "
            "(2, date '2008-03-02', 20.0), (3, date '2008-06-30', 30.0)"
        )
        assert session.query("SELECT count(*) FROM sales") == [(3,)]
        rows = session.query(
            "SELECT sum(amt) FROM sales WHERE d >= date '2008-03-01' "
            "AND d < date '2008-04-01'"
        )
        assert rows == [(20.0,)]

    def test_out_of_range_insert_fails(self, session):
        session.execute(
            """
            CREATE TABLE sales (id INT, d DATE)
            DISTRIBUTED BY (id)
            PARTITION BY RANGE (d)
            (START (date '2008-01-01') END (date '2008-02-01'))
            """
        )
        from repro.errors import ExecutorError

        with pytest.raises(ExecutorError, match="no partition"):
            session.execute("INSERT INTO sales VALUES (1, date '2020-01-01')")

    def test_list_partitions(self, session):
        session.execute(
            """
            CREATE TABLE t (id INT, region TEXT)
            DISTRIBUTED BY (id)
            PARTITION BY LIST (region)
            (PARTITION asia VALUES ('ASIA'),
             PARTITION rest VALUES ('EUROPE', 'AFRICA'))
            """
        )
        session.execute(
            "INSERT INTO t VALUES (1, 'ASIA'), (2, 'EUROPE'), (3, 'AFRICA')"
        )
        assert session.query("SELECT count(*) FROM t WHERE region = 'ASIA'") == [
            (1,)
        ]


class TestTransactions:
    def test_commit_visibility(self, engine):
        s1, s2 = engine.connect(), engine.connect()
        s1.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        s1.execute("BEGIN")
        s1.execute("INSERT INTO t VALUES (1)")
        # Uncommitted insert invisible to another session.
        assert s2.query("SELECT count(*) FROM t") == [(0,)]
        # ...but visible to the inserting transaction itself.
        assert s1.query("SELECT count(*) FROM t") == [(1,)]
        s1.execute("COMMIT")
        assert s2.query("SELECT count(*) FROM t") == [(1,)]

    def test_rollback_discards(self, engine):
        session = engine.connect()
        session.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.execute("ROLLBACK")
        assert session.query("SELECT count(*) FROM t") == [(0,)]

    def test_rollback_truncates_physical_garbage(self, engine):
        """Aborted appends leave physical bytes that are truncated
        eagerly (Section 5.3) so files match committed logical lengths."""
        session = engine.connect()
        session.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (2), (3), (4)")
        session.execute("ROLLBACK")
        assert session.query("SELECT a FROM t") == [(1,)]
        # committed data still loadable after further inserts reuse lanes
        session.execute("INSERT INTO t VALUES (9)")
        assert sorted(session.query("SELECT a FROM t")) == [(1,), (9,)]

    def test_ddl_rolls_back(self, engine):
        session = engine.connect()
        session.execute("BEGIN")
        session.execute("CREATE TABLE t (a INT)")
        session.execute("ROLLBACK")
        with pytest.raises(SemanticError):
            session.query("SELECT * FROM t")

    def test_read_committed_sees_commits_between_statements(self, engine):
        writer, reader = engine.connect(), engine.connect()
        writer.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        reader.execute("BEGIN")
        assert reader.query("SELECT count(*) FROM t") == [(0,)]
        writer.execute("INSERT INTO t VALUES (1)")
        assert reader.query("SELECT count(*) FROM t") == [(1,)]
        reader.execute("COMMIT")

    def test_serializable_snapshot_frozen(self, engine):
        writer, reader = engine.connect(), engine.connect()
        writer.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        reader.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
        assert reader.query("SELECT count(*) FROM t") == [(0,)]
        writer.execute("INSERT INTO t VALUES (1)")
        assert reader.query("SELECT count(*) FROM t") == [(0,)]
        reader.execute("COMMIT")
        assert reader.query("SELECT count(*) FROM t") == [(1,)]

    def test_concurrent_writers_swimlanes(self, engine):
        """Two open transactions appending to one table use different
        lanes and neither clobbers the other (Section 5.4)."""
        s1, s2 = engine.connect(), engine.connect()
        s1.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        s1.execute("BEGIN")
        s2.execute("BEGIN")
        s1.execute("INSERT INTO t VALUES (1)")
        s2.execute("INSERT INTO t VALUES (2)")
        s1.execute("COMMIT")
        s2.execute("COMMIT")
        assert sorted(engine.connect().query("SELECT a FROM t")) == [(1,), (2,)]

    def test_nested_begin_rejected(self, session):
        session.execute("BEGIN")
        with pytest.raises(TransactionError):
            session.execute("BEGIN")
        session.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, session):
        with pytest.raises(TransactionError):
            session.execute("COMMIT")

    def test_failed_statement_aborts_txn(self, session):
        session.execute("BEGIN")
        with pytest.raises(SemanticError):
            session.query("SELECT * FROM missing_table")
        assert not session.in_transaction


class TestViewsAndMeta:
    def test_view_roundtrip(self, session):
        session.execute("CREATE TABLE t (a INT, b INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        session.execute("CREATE VIEW v AS SELECT a, b * 2 AS dbl FROM t")
        assert session.query("SELECT dbl FROM v ORDER BY a") == [(20,), (40,)]

    def test_explain(self, session):
        session.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        rows = session.execute("EXPLAIN SELECT count(*) FROM t").rows
        text = "\n".join(r[0] for r in rows)
        assert "SeqScan(t)" in text
        assert "Gather" in text or "gather" in text

    def test_analyze_populates_stats(self, session, engine):
        session.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO t VALUES (1), (2), (3)")
        session.execute("ANALYZE t")
        snapshot = engine.txns.begin().statement_snapshot()
        stats = engine.catalog.get_stats("t", snapshot)
        assert stats.row_count == 3

    def test_set_statement_accepted(self, session):
        session.execute("SET random_gucs TO whatever")
        session.execute("SET TRANSACTION ISOLATION LEVEL SERIALIZABLE")

    def test_metadata_dispatch_plan_size(self, session, engine):
        """Self-described plans are measured and compressed (3.1)."""
        from repro.planner.analyzer import Analyzer
        from repro.planner.dispatch import build_self_described_plan
        from repro.engine import _CatalogAdapter
        from repro.sql.parser import parse_statement

        session.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO t VALUES (1)")
        txn = engine.txns.begin()
        snapshot = txn.statement_snapshot()
        analyzer = Analyzer(_CatalogAdapter(engine.catalog, snapshot))
        query = analyzer.analyze(parse_statement("SELECT * FROM t"))
        plan = session._plan(query, snapshot)
        sdp = build_self_described_plan(plan, engine.catalog, snapshot)
        assert "t" in sdp.metadata
        assert sdp.metadata["t"].segfiles
        assert 0 < sdp.compressed_bytes < sdp.plan_bytes

    def test_query_cost_is_positive(self, session):
        session.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO t VALUES (1)")
        result = session.execute("SELECT * FROM t")
        assert result.cost.seconds > 0
        assert result.cost.tuples >= 1

    def test_direct_dispatch_lookup(self, session):
        session.execute("CREATE TABLE t (a INT, b TEXT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO t VALUES (7, 'seven')")
        result = session.execute("SELECT b FROM t WHERE a = 7")
        assert result.rows == [("seven",)]
        assert result.plan.direct_dispatch_segment is not None


class TestExplainAnalyze:
    def test_annotations_present(self, session):
        session.execute("CREATE TABLE ea (a INT, b INT) DISTRIBUTED BY (a)")
        session.execute(
            "INSERT INTO ea VALUES " + ", ".join(f"({i}, {i % 3})" for i in range(30))
        )
        rows = session.execute(
            "EXPLAIN ANALYZE SELECT b, count(*) FROM ea GROUP BY b"
        ).rows
        text = "\n".join(r[0] for r in rows)
        assert "actual time=" in text
        assert "rows sent=" in text
        assert "Total:" in text

    def test_explain_analyze_actually_executes(self, session):
        session.execute("CREATE TABLE ea2 (a INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO ea2 VALUES (1), (2)")
        result = session.execute("EXPLAIN ANALYZE SELECT count(*) FROM ea2")
        assert result.cost.tuples >= 2


class TestCopy:
    def test_copy_from_and_to(self, session, engine):
        session.execute(
            "CREATE TABLE ct (a INT, b TEXT, d DATE) DISTRIBUTED BY (a)"
        )
        engine.hdfs.client().write_file(
            "/load/in.tbl", b"1|x|1994-01-01\n2||1995-06-07\n"
        )
        result = session.execute("COPY ct FROM '/load/in.tbl'")
        assert result.message == "COPY 2"
        assert sorted(session.query("SELECT a FROM ct")) == [(1,), (2,)]
        session.execute("COPY ct TO '/load/out.tbl'")
        exported = engine.hdfs.client().read_file("/load/out.tbl").decode()
        assert sorted(exported.splitlines()) == [
            "1|x|1994-01-01",
            "2||1995-06-07",
        ]

    def test_copy_custom_delimiter(self, session, engine):
        session.execute("CREATE TABLE cd (a INT, b TEXT) DISTRIBUTED BY (a)")
        engine.hdfs.client().write_file("/load/c.csv", b"5,hello\n")
        session.execute("COPY cd FROM '/load/c.csv' DELIMITER ','")
        assert session.query("SELECT a, b FROM cd") == [(5, "hello")]

    def test_copy_is_transactional(self, session, engine):
        session.execute("CREATE TABLE tx (a INT) DISTRIBUTED BY (a)")
        engine.hdfs.client().write_file("/load/tx.tbl", b"7\n8\n")
        session.execute("BEGIN")
        session.execute("COPY tx FROM '/load/tx.tbl'")
        session.execute("ROLLBACK")
        assert session.query("SELECT count(*) FROM tx") == [(0,)]


class TestVacuum:
    def test_vacuum_reclaims_crash_garbage(self, session, engine):
        session.execute("CREATE TABLE vt (a INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO vt VALUES (1), (2)")
        # Simulate a crashed writer: physical bytes beyond the committed
        # logical length, with no transaction left to truncate them.
        snapshot = engine.txns.begin().statement_snapshot()
        segfile = engine.catalog.segfiles("vt", snapshot)[0]
        path = next(iter(segfile["paths"]))
        client = engine.segments[segfile["segment_id"]].client(engine.hdfs)
        writer = client.append(path)
        writer.write(b"CRASH GARBAGE")
        writer.close()
        result = session.execute("VACUUM vt")
        assert "reclaimed 13 bytes" in result.message
        assert sorted(session.query("SELECT a FROM vt")) == [(1,), (2,)]

    def test_global_vacuum_drops_dead_catalog_versions(self, session, engine):
        session.execute("CREATE TABLE dead (a INT)")
        session.execute("DROP TABLE dead")
        result = session.execute("VACUUM")
        assert "dead catalog rows" in result.message
        # the dropped table's versions are physically gone
        rows = engine.catalog.table("pg_class")._rows
        assert all(v.data["name"] != "dead" for v in rows)

    def test_vacuum_missing_table(self, session):
        with pytest.raises(UndefinedObject):
            session.execute("VACUUM ghost")
