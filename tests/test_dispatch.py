"""Tests for metadata dispatch: self-described plans (paper 3.1)."""

import pytest

from repro import Engine
from repro.engine import _CatalogAdapter
from repro.planner.analyzer import Analyzer
from repro.planner.dispatch import build_self_described_plan, tables_in_plan
from repro.sql.parser import parse_statement


@pytest.fixture
def env():
    engine = Engine(num_segment_hosts=2, segments_per_host=2)
    session = engine.connect()
    session.execute("CREATE TABLE t (a INT, b INT) DISTRIBUTED BY (a)")
    session.execute("CREATE TABLE s (x INT) DISTRIBUTED BY (x)")
    session.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    session.execute("INSERT INTO s VALUES (10)")
    session.execute(
        """
        CREATE TABLE pt (id INT, g INT) DISTRIBUTED BY (id)
        PARTITION BY RANGE (g) (START (0) END (10) EVERY (5))
        """
    )
    session.execute("INSERT INTO pt VALUES (1, 2), (2, 7)")
    return engine, session


def plan_for(engine, session, sql):
    txn = engine.txns.begin()
    snapshot = txn.statement_snapshot()
    analyzer = Analyzer(_CatalogAdapter(engine.catalog, snapshot))
    query = analyzer.analyze(parse_statement(sql))
    plan = session._plan(query, snapshot)
    return plan, snapshot


class TestTablesInPlan:
    def test_join_lists_both(self, env):
        engine, session = env
        plan, _ = plan_for(engine, session, "SELECT 1 FROM t, s WHERE b = x")
        assert tables_in_plan(plan) == {"t", "s"}

    def test_partitioned_table_lists_selected_children(self, env):
        engine, session = env
        plan, _ = plan_for(engine, session, "SELECT * FROM pt WHERE g = 7")
        names = tables_in_plan(plan)
        assert names == {"pt_1_prt_2"}  # pruned to one child

    def test_init_plan_tables_included(self, env):
        engine, session = env
        plan, _ = plan_for(
            engine, session, "SELECT a FROM t WHERE b > (SELECT max(x) FROM s)"
        )
        assert tables_in_plan(plan) == {"t", "s"}


class TestSelfDescribedPlan:
    def test_contains_schemas_and_segfiles(self, env):
        engine, session = env
        plan, snapshot = plan_for(engine, session, "SELECT * FROM t")
        sdp = build_self_described_plan(plan, engine.catalog, snapshot)
        meta = sdp.metadata["t"]
        assert meta.schema.name == "t"
        assert meta.storage_format == "ao"
        total_rows = sum(
            lane.tupcount
            for lanes in meta.segfiles.values()
            for lane in lanes
        )
        assert total_rows == 2

    def test_logical_lengths_follow_snapshot(self, env):
        """The self-described plan carries the *snapshot's* logical
        lengths — a later insert must not appear in an older plan."""
        engine, session = env
        plan, snapshot = plan_for(engine, session, "SELECT * FROM t")
        before = build_self_described_plan(plan, engine.catalog, snapshot)
        session.execute("INSERT INTO t VALUES (3, 30)")
        after_txn = engine.txns.begin()
        after = build_self_described_plan(
            plan, engine.catalog, after_txn.statement_snapshot()
        )
        bytes_before = sum(
            sum(lane.paths.values())
            for lanes in before.metadata["t"].segfiles.values()
            for lane in lanes
        )
        bytes_after = sum(
            sum(lane.paths.values())
            for lanes in after.metadata["t"].segfiles.values()
            for lane in lanes
        )
        assert bytes_after > bytes_before

    def test_plan_is_compressed(self, env):
        engine, session = env
        plan, snapshot = plan_for(
            engine, session, "SELECT b, count(*) FROM t GROUP BY b"
        )
        sdp = build_self_described_plan(plan, engine.catalog, snapshot)
        assert 0 < sdp.compressed_bytes < sdp.plan_bytes

    def test_bigger_query_bigger_plan(self, env):
        engine, session = env
        small, snapshot = plan_for(engine, session, "SELECT a FROM t")
        big, _ = plan_for(
            engine,
            session,
            "SELECT t.b, count(*) FROM t, s WHERE t.b = s.x "
            "GROUP BY t.b ORDER BY 2 DESC LIMIT 3",
        )
        small_sdp = build_self_described_plan(small, engine.catalog, snapshot)
        big_sdp = build_self_described_plan(big, engine.catalog, snapshot)
        assert big_sdp.plan_bytes > small_sdp.plan_bytes
