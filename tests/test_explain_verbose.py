"""Golden tests for ``EXPLAIN (ANALYZE, VERBOSE)`` on TPC-H Q1/Q3/Q6.

The goldens pin the *structural* plan tree (slice headers and operator
lines with annotations stripped), which must stay stable across cost
model tweaks; separate assertions check the verbose annotations —
per-operator ``(actual rows=... calls=... time=...)`` and per-scan
``(read=... remote=... cache hits=...)`` — are present and internally
consistent with the query's own timing.
"""

import re

import pytest

from repro.engine import Engine
from repro.tpch import QUERIES, load_tpch

SCALE = 0.001


@pytest.fixture(scope="module")
def session():
    engine = Engine(num_segment_hosts=2, segments_per_host=2, seed=7)
    session = engine.connect()
    load_tpch(session, scale=SCALE)
    return session


def _explain(session, number, options="ANALYZE, VERBOSE"):
    stmt = QUERIES[number][0]
    result = session.execute(f"EXPLAIN ({options}) {stmt}")
    return [row[0] for row in result.rows]


def _structure(lines):
    """Operator tree with annotations and timing lines stripped."""
    out = []
    for line in lines:
        if line.lstrip().startswith("->") or line.startswith("Slice"):
            out.append(line.split("  (actual")[0].rstrip())
    return out


GOLDEN_Q1 = [
    "Slice 2 (QD):",
    "  -> Sort",
    "    -> MotionRecv(slice 1, gather)",
    "Slice 1 (gang of N):",
    "  -> Motion(gather)",
    "    -> Sort",
    "      -> Project",
    "        -> HashAgg(final, 2 keys, 8 aggs)",
    "          -> MotionRecv(slice 0, redistribute)",
    "Slice 0 (gang of N):",
    "  -> Motion(redistribute)",
    "    -> HashAgg(partial, 2 keys, 8 aggs)",
    "      -> SeqScan(lineitem, filter)",
]

GOLDEN_Q3 = [
    "Slice 2 (QD):",
    "  -> Limit",
    "    -> Sort",
    "      -> MotionRecv(slice 1, gather)",
    "Slice 1 (gang of N):",
    "  -> Motion(gather)",
    "    -> Limit",
    "      -> Sort",
    "        -> Project",
    "          -> HashAgg(single, 3 keys, 1 aggs)",
    "            -> HashJoin(inner, 1 keys)",
    "              -> SeqScan(lineitem, filter)",
    "              -> HashJoin(inner, 1 keys)",
    "                -> SeqScan(orders, filter)",
    "                -> MotionRecv(slice 0, broadcast)",
    "Slice 0 (gang of N):",
    "  -> Motion(broadcast)",
    "    -> SeqScan(customer, filter)",
]

GOLDEN_Q6 = [
    "Slice 1 (QD):",
    "  -> Project",
    "    -> HashAgg(final, 0 keys, 1 aggs)",
    "      -> MotionRecv(slice 0, gather)",
    "Slice 0 (gang of N):",
    "  -> Motion(gather)",
    "    -> HashAgg(partial, 0 keys, 1 aggs)",
    "      -> SeqScan(lineitem, filter)",
]

GOLDENS = {1: GOLDEN_Q1, 3: GOLDEN_Q3, 6: GOLDEN_Q6}


class TestGoldenStructure:
    @pytest.mark.parametrize("number", sorted(GOLDENS))
    def test_plan_tree_matches_golden(self, session, number):
        lines = _explain(session, number)
        assert _structure(lines) == GOLDENS[number]


class TestVerboseAnnotations:
    @pytest.mark.parametrize("number", sorted(GOLDENS))
    def test_every_operator_line_has_actuals(self, session, number):
        lines = _explain(session, number)
        op_lines = [l for l in lines if l.lstrip().startswith("->")]
        assert op_lines
        for line in op_lines:
            assert re.search(
                r"\(actual rows=\d+ calls=\d+ time=\d+\.\d+s\)", line
            ), line

    @pytest.mark.parametrize("number", sorted(GOLDENS))
    def test_scan_lines_annotate_storage(self, session, number):
        lines = _explain(session, number)
        scans = [l for l in lines if "SeqScan(" in l]
        assert scans
        for line in scans:
            assert re.search(
                r"\(read=\d+B remote=\d+B cache hits=\d+/\d+\)", line
            ), line

    def test_q3_scan_reads_positive_bytes(self, session):
        lines = _explain(session, 3)
        scan = next(l for l in lines if "SeqScan(lineitem" in l)
        read = int(re.search(r"read=(\d+)B", scan).group(1))
        assert read > 0

    @pytest.mark.parametrize("number", sorted(GOLDENS))
    def test_slice_times_bounded_by_critical_path(self, session, number):
        lines = _explain(session, number)
        slice_times = [
            float(m.group(1))
            for l in lines
            for m in [re.search(r"\(actual time=(\d+\.\d+)s,", l)]
            if m
        ]
        assert slice_times
        total = next(l for l in lines if l.startswith("Total:"))
        path = float(
            re.search(r"critical path (\d+\.\d+)s", total).group(1)
        )
        # Slice finish times print at 4 decimals; allow that rounding.
        assert all(t <= path + 1e-4 for t in slice_times)


class TestOptionForms:
    def test_paren_and_legacy_forms_agree(self, session):
        stmt = QUERIES[6][0]
        paren = [
            r[0]
            for r in session.execute(
                f"EXPLAIN (ANALYZE, VERBOSE) {stmt}"
            ).rows
        ]
        legacy = [
            r[0]
            for r in session.execute(
                f"EXPLAIN ANALYZE VERBOSE {stmt}"
            ).rows
        ]
        assert _structure(paren) == _structure(legacy)

    def test_analyze_without_verbose_has_no_operator_actuals(self, session):
        lines = _explain(session, 6, options="ANALYZE")
        assert not any("actual rows=" in l for l in lines)
        assert not any("cache hits=" in l for l in lines)
        # ...but the per-slice timing EXPLAIN ANALYZE always had stays.
        assert any("actual time=" in l for l in lines)

    def test_plain_explain_has_no_actuals(self, session):
        stmt = QUERIES[6][0]
        lines = [r[0] for r in session.execute(f"EXPLAIN {stmt}").rows]
        assert not any("actual" in l for l in lines)

    def test_unknown_option_is_rejected(self, session):
        stmt = QUERIES[6][0]
        with pytest.raises(Exception, match="(?i)unknown EXPLAIN option"):
            session.execute(f"EXPLAIN (TURBO) {stmt}")

    def test_verbose_does_not_perturb_totals(self, session):
        """Observability passivity at the EXPLAIN level: the simulated
        Total line is identical with and without VERBOSE."""
        stmt = QUERIES[1][0]
        plain = [
            r[0]
            for r in session.execute(f"EXPLAIN (ANALYZE) {stmt}").rows
        ]
        verbose = [
            r[0]
            for r in session.execute(
                f"EXPLAIN (ANALYZE, VERBOSE) {stmt}"
            ).rows
        ]
        total_plain = next(l for l in plain if l.startswith("Total:"))
        total_verbose = next(l for l in verbose if l.startswith("Total:"))
        assert total_plain == total_verbose
