"""DetSan, the runtime cross-query isolation sanitizer.

Three layers:

* **Guard units** — ownership claiming, release-on-delete, registry
  exemption, scope nesting, and each proxy type's mutation hooks,
  exercised directly against :class:`repro.sanitize.DetSan`.
* **Engine wiring** — ``install_engine``/``uninstall_engine`` swap the
  engine-lifetime caches in and back out with contents preserved.
* **Concurrent runs** — a seeded multi-stream batch under DetSan is
  violation-free AND bit-identical to the unsanitized run; stripping a
  registry entry makes the same batch raise
  :class:`~repro.sanitize.IsolationViolation` (the sanitizer actually
  fires); the ``python -m repro.sanitize`` sweep CLI exits 0/1
  accordingly.
"""

import os
import subprocess
import sys
from collections import OrderedDict

import pytest

from repro.chaos.suite import build_engine, generate_data, load_workload
from repro.executor.concurrent import ConcurrentRunner
from repro.lint import repo_root
from repro.sanitize import DetSan, IsolationViolation, SHARED_STATE, runtime_labels
from repro.sanitize.__main__ import run_seed, sweep_streams

REPO = repo_root()


# ============================================================= guard semantics
class TestOwnership:
    def test_first_writer_claims_then_foreign_write_raises(self):
        ds = DetSan(registry={})
        d = ds.guard_dict({}, "X")
        with ds.scope(1):
            d["k"] = "a"
            d["k"] = "b"  # same owner: fine
        with ds.scope(2), pytest.raises(IsolationViolation) as exc:
            d["k"] = "c"
        assert "X" in str(exc.value)
        assert ds.violations and ds.violations[0].owner == 1
        assert ds.violations[0].writer == 2

    def test_registered_label_is_exempt(self):
        ds = DetSan(registry={"X": "deliberately shared"})
        d = ds.guard_dict({}, "X")
        with ds.scope(1):
            d["k"] = "a"
        with ds.scope(2):
            d["k"] = "b"  # registry entry: cross-query write allowed
        assert ds.violations == []
        assert ds.counts["X"] == 2

    def test_delete_releases_ownership(self):
        ds = DetSan(registry={})
        d = ds.guard_dict({}, "X")
        with ds.scope(1):
            d["slot"] = "q1"
            del d["slot"]
        with ds.scope(2):
            d["slot"] = "q2"  # released: the handoff is not a race
        assert ds.violations == []

    def test_pop_releases_ownership(self):
        ds = DetSan(registry={})
        d = ds.guard_dict({}, "X")
        with ds.scope(1):
            d["slot"] = "q1"
            d.pop("slot")
        with ds.scope(2):
            d["slot"] = "q2"
        assert ds.violations == []

    def test_unscoped_mutations_counted_never_owned(self):
        ds = DetSan(registry={})
        d = ds.guard_dict({}, "X")
        d["setup"] = 1  # engine setup, no scope: counted, unowned
        with ds.scope(1):
            d["setup"] = 2  # first *scoped* write claims
        assert ds.violations == []
        assert ds.counts["X"] == 2
        assert ds.scoped_counts.get("X", 0) == 1

    def test_scope_nesting_innermost_wins(self):
        ds = DetSan(registry={})
        d = ds.guard_dict({}, "X")
        with ds.scope(1):
            with ds.scope(2):
                d["k"] = "inner"
            with pytest.raises(IsolationViolation):
                d["k"] = "outer"  # owner is 2, writer is 1
        assert ds.current is None

    def test_setdefault_only_notes_on_insert(self):
        ds = DetSan(registry={})
        d = ds.guard_dict({}, "X")
        with ds.scope(1):
            d.setdefault("k", []).append(1)
        with ds.scope(2):
            d.setdefault("k", []).append(2)  # read, not a write
        assert ds.violations == []
        assert ds.counts["X"] == 1

    def test_update_and_clear(self):
        ds = DetSan(registry={})
        d = ds.guard_dict({"a": 1}, "X")
        with ds.scope(1):
            d.update(b=2)
        with ds.scope(2), pytest.raises(IsolationViolation):
            d.update({"b": 3})
        d2 = ds.guard_dict({}, "Y")
        with ds.scope(1):
            d2["k"] = 1
            d2.clear()
        with ds.scope(2):
            d2["k"] = 2  # clear released everything
        assert [v.label for v in ds.violations] == ["X"]

    def test_guarded_ordered_dict_keeps_type(self):
        ds = DetSan(registry={})
        od = ds.guard_dict(OrderedDict([("a", 1)]), "X")
        assert isinstance(od, OrderedDict)
        assert list(od) == ["a"]

    def test_guard_list_whole_structure_ownership(self):
        ds = DetSan(registry={})
        lst = ds.guard_list([], "L")
        with ds.scope(1):
            lst.append("x")
        with ds.scope(2), pytest.raises(IsolationViolation):
            lst.append("y")

    def test_guard_list_empty_releases(self):
        ds = DetSan(registry={})
        lst = ds.guard_list([], "L")
        with ds.scope(1):
            lst.append("x")
            lst.pop()
        with ds.scope(2):
            lst.append("y")  # emptied: ownership released
        assert ds.violations == []

    def test_guard_set_per_element(self):
        ds = DetSan(registry={})
        s = ds.guard_set(set(), "S")
        with ds.scope(1):
            s.add("a")
        with ds.scope(2):
            s.add("b")  # distinct element: no conflict
        assert ds.violations == []

    def test_guard_set_conflict(self):
        ds = DetSan(registry={})
        s = ds.guard_set(set(), "S")
        with ds.scope(1):
            s.add("a")
        with ds.scope(2), pytest.raises(IsolationViolation):
            s.discard("a")

    def test_unhashable_key_degrades_to_whole_structure(self):
        ds = DetSan(registry={})
        d = ds.guard_dict({}, "X")
        with ds.scope(1):
            d[("ok",)] = 1
        # an unhashable-key mutation must not crash the tracker
        ds.note("X", "touch", key=["unhashable"])
        assert ds.counts["X"] == 2

    def test_summary_shape(self):
        ds = DetSan(registry={})
        d = ds.guard_dict({}, "X")
        with ds.scope(1):
            d["k"] = 1
        s = ds.summary()
        assert s["structures"] == {"X": 1}
        assert s["total_mutations"] == 1
        assert s["scoped_mutations"] == 1
        assert s["tracked_entries"] == 1
        assert s["violations"] == []


# =============================================================== engine wiring
class TestEngineInstall:
    def test_install_uninstall_round_trip(self):
        import repro.executor.expr as expr_mod
        from repro.sanitize import GuardedDict

        engine = build_engine(0)
        ds = DetSan()
        plain_entries = engine.block_cache._entries
        plain_kernels = engine.kernel_cache
        ds.install_engine(engine)
        try:
            assert engine.detsan is ds
            assert isinstance(engine.kernel_cache, GuardedDict)
            assert isinstance(expr_mod._LIKE_CACHE, GuardedDict)
            assert type(engine.block_cache._entries).__name__ == (
                "GuardedOrderedDict"
            )
            guarded = engine.kernel_cache
            ds.install_engine(engine)  # idempotent: no double-wrap
            assert engine.kernel_cache is guarded
        finally:
            ds.uninstall_engine(engine)
        assert engine.detsan is None
        assert type(engine.block_cache._entries) is type(plain_entries)
        assert type(engine.kernel_cache) is dict
        assert type(expr_mod._LIKE_CACHE) is dict

    def test_uninstall_preserves_contents(self):
        engine = build_engine(0)
        engine.kernel_cache["warm"] = "kernel"
        ds = DetSan()
        ds.install_engine(engine)
        engine.kernel_cache["hot"] = "kernel2"
        ds.uninstall_engine(engine)
        assert engine.kernel_cache == {"warm": "kernel", "hot": "kernel2"}


# ============================================================= concurrent runs
def _run_batch(seed, detsan=None, streams=2):
    engine = build_engine(seed)
    load_workload(engine, generate_data())
    runner = ConcurrentRunner(
        engine, sweep_streams(seed, streams), detsan=detsan,
        allow_failures=True,
    )
    return runner.run()


class TestConcurrentRuns:
    def test_seeded_batch_is_clean_and_counted(self):
        ds = DetSan()
        result = _run_batch(3, detsan=ds)
        assert all(o.ok for o in result.outcomes)
        assert ds.violations == []
        summary = ds.summary()
        assert summary["total_mutations"] > 0
        # The shared scheduler bookkeeping must actually be watched.
        assert any(
            label.startswith("EventScheduler.")
            for label in summary["structures"]
        )
        assert summary["scoped_mutations"] == summary["total_mutations"]

    def test_sanitized_run_is_bit_identical(self):
        plain = _run_batch(3)
        sanitized = _run_batch(3, detsan=DetSan())
        assert plain.makespan == sanitized.makespan
        for a, b in zip(plain.outcomes, sanitized.outcomes):
            assert a.rows == b.rows
            assert a.finish == b.finish
            assert a.charged_seconds == b.charged_seconds

    def test_stripped_registry_fires(self):
        """Planted violation: un-register the scheduler's slot map and
        the very first cross-query slot reuse must raise."""
        registry = dict(runtime_labels())
        del registry["EventScheduler._busy"]
        ds = DetSan(registry=registry)
        with pytest.raises(IsolationViolation) as exc:
            _run_batch(3, detsan=ds, streams=4)
        assert "EventScheduler._busy" in str(exc.value)
        assert "registry" in str(exc.value)

    def test_run_seed_helper_is_clean(self):
        sanitizer = run_seed(0, 2)
        assert sanitizer.violations == []
        assert sanitizer.total_mutations > 0

    def test_registry_labels_cover_guarded_structures(self):
        """Every runtime label DetSan installs by default must trace
        back to a registry entry with a non-empty reason."""
        labels = runtime_labels()
        for key, reason in SHARED_STATE.items():
            assert "::" in key, key
            assert reason.strip(), key
        for label in (
            "EventScheduler._busy",
            "_QueueState.running",
            "BlockDecodeCache._entries",
            "Engine.kernel_cache",
            "_LIKE_CACHE",
        ):
            assert label in labels


# ======================================================================== CLI
class TestCli:
    def run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.sanitize", *args],
            capture_output=True, text=True, cwd=REPO, env=env,
        )

    def test_sweep_exit_zero_and_reports_counts(self):
        proc = self.run_cli("--seeds", "2", "--streams", "2")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 violations" in proc.stdout
        assert "EventScheduler._busy" in proc.stdout
        assert "seed 0: clean" in proc.stdout
        assert "seed 1: clean" in proc.stdout
