"""TPC-H integration: dbgen properties, all 22 queries on HAWQ, and a
full cross-validation of HAWQ's answers against the independently
implemented Stinger engine (two engines, one truth)."""

import datetime

import pytest

from repro import Engine
from repro.baselines import StingerEngine
from repro.bench.harness import rows_match
from repro.tpch import QUERIES, TABLE_NAMES, generate, load_tpch
from repro.tpch.dbgen import CURRENT_DATE, END_DATE, START_DATE

SCALE = 0.001


@pytest.fixture(scope="module")
def data():
    return generate(SCALE, seed=77)


@pytest.fixture(scope="module")
def hawq(data):
    engine = Engine(num_segment_hosts=4, segments_per_host=1)
    session = engine.connect()
    load_tpch(session, scale=SCALE, data=data)
    return session


@pytest.fixture(scope="module")
def stinger(data, hawq):
    engine = StingerEngine(num_nodes=4, containers_per_node=2, scale=100.0)
    snapshot = hawq.engine.txns.begin().statement_snapshot()
    for table in TABLE_NAMES:
        schema = hawq.engine.catalog.get_schema(table, snapshot)
        engine.load_table(schema, getattr(data, table))
    return engine


class TestDbgen:
    def test_cardinality_ratios(self, data):
        counts = data.counts()
        assert counts["region"] == 5
        assert counts["nation"] == 25
        assert counts["partsupp"] == 4 * counts["part"]
        assert counts["orders"] == 10 * counts["customer"]
        assert 1 * counts["orders"] <= counts["lineitem"] <= 7 * counts["orders"]

    def test_deterministic(self):
        a, b = generate(0.001, seed=5), generate(0.001, seed=5)
        assert a.lineitem == b.lineitem
        assert a.orders == b.orders

    def test_seed_changes_data(self):
        a, b = generate(0.001, seed=5), generate(0.001, seed=6)
        assert a.lineitem != b.lineitem

    def test_value_domains(self, data):
        for row in data.lineitem[:500]:
            assert 1 <= row[4] <= 50  # quantity
            assert 0 <= row[6] <= 0.10  # discount
            assert 0 <= row[7] <= 0.08  # tax
            assert row[8] in ("R", "A", "N")
            assert row[9] in ("F", "O")
            assert START_DATE <= row[10] <= END_DATE + datetime.timedelta(days=151)
            assert row[12] > row[10]  # receipt after ship

    def test_returnflag_consistent_with_receipt(self, data):
        for row in data.lineitem[:500]:
            if row[12] <= CURRENT_DATE:
                assert row[8] in ("R", "A")
            else:
                assert row[8] == "N"

    def test_one_third_of_customers_never_order(self, data):
        ordering = {o[1] for o in data.orders}
        assert all(c % 3 != 0 for c in ordering)

    def test_query_predicate_vocabulary_present(self, data):
        part_names = " ".join(p[1] for p in data.part)
        assert "forest" in part_names  # Q20
        assert "green" in part_names  # Q9
        segments = {c[6] for c in data.customer}
        assert "BUILDING" in segments  # Q3
        assert any(
            "special" in o[8] and "requests" in o[8] for o in data.orders
        )  # Q13
        # Q16's supplier-complaints comments appear at ~2%: check at a
        # scale with enough suppliers for the expectation to hold.
        bigger = generate(0.01, seed=3)
        assert any(
            "Customer" in s[6] and "Complaints" in s[6] for s in bigger.supplier
        )

    def test_orderstatus_matches_linestatus(self, data):
        lines_by_order = {}
        for line in data.lineitem:
            lines_by_order.setdefault(line[0], []).append(line[9])
        for order in data.orders[:300]:
            statuses = set(lines_by_order[order[0]])
            if statuses == {"F"}:
                assert order[2] == "F"
            elif statuses == {"O"}:
                assert order[2] == "O"
            else:
                assert order[2] == "P"


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_query_runs_on_hawq(hawq, number):
    result = None
    for stmt in QUERIES[number]:
        r = hawq.execute(stmt)
        if r.plan is not None:
            result = r
    assert result is not None
    assert result.cost.seconds > 0
    # Aggregation queries must return at least the empty-aggregate row.
    if number in (1, 6, 14, 17, 19):
        assert len(result.rows) >= 1


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_hawq_matches_stinger(hawq, stinger, number):
    """Cross-validation: two independently implemented engines (MPP
    pipelined vs rule-based MapReduce) must agree on every query."""
    hawq_result = None
    for stmt in QUERIES[number]:
        r = hawq.execute(stmt)
        if r.plan is not None:
            hawq_result = r
    stinger_result = None
    for stmt in QUERIES[number]:
        r = stinger.execute(stmt)
        if r.column_names:
            stinger_result = r
    assert rows_match(hawq_result.rows, stinger_result.rows), (
        f"Q{number}: HAWQ {len(hawq_result.rows)} rows vs "
        f"Stinger {len(stinger_result.rows)} rows"
    )


def test_limit_queries_ordering_agrees(hawq, stinger):
    """LIMIT queries additionally need matching order, not just sets."""
    for number in (2, 3, 10, 18, 21):
        hawq_rows = None
        for stmt in QUERIES[number]:
            r = hawq.execute(stmt)
            if r.plan is not None:
                hawq_rows = r.rows
        stinger_rows = None
        for stmt in QUERIES[number]:
            r = stinger.execute(stmt)
            if r.column_names:
                stinger_rows = r.rows
        # compare only the deterministic sort prefix of each row
        assert len(hawq_rows) == len(stinger_rows)
