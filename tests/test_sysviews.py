"""PR 10 system views: SQL-queryable cluster telemetry.

The load-bearing properties:

* **SQL composition** — all four pg_stat_* views answer through the
  ordinary SQL path (filter / ORDER BY / aggregation), resolved as
  zero-cost master-only scans.
* **Passivity** — interleaving system-view queries between workload
  statements under 4-stream concurrency leaves every original
  statement's rows AND charged seconds bit-identical (the views read
  the live registries, never touch them).
* **Liveness** — ``pg_stat_activity`` reflects queued / running /
  cancelling statements mid-schedule; ``pg_resqueue_status`` shows
  waiters and head-of-line while a queue is saturated.
* **Chaos probe** — a query killed mid-schedule surfaces as
  cancelling/gone in interleaved introspection, and the survivors
  stay bit-identical to a cancel-only baseline.
"""

import pytest

from repro.engine import Engine
from repro.executor.concurrent import ConcurrentRunner
from repro.obs.activity import ClusterTelemetry, fingerprint
from repro.obs.export import prometheus_violations, render_prometheus
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.sysviews import (
    SYSTEM_VIEW_COLUMNS,
    render_top,
    system_view_rows,
    system_view_schema,
)


# --------------------------------------------------------------- fixtures
def build_engine(seed: int = 11) -> Engine:
    engine = Engine(num_segment_hosts=2, segments_per_host=2, seed=seed)
    session = engine.connect()
    session.execute(
        "CREATE TABLE conc (a INT, b INT, c VARCHAR(8)) DISTRIBUTED BY (a)"
    )
    rows = [(i, (i * 7) % 100, f"v{i % 13}") for i in range(300)]
    session.load_rows("conc", rows)
    session.execute("ANALYZE")
    return engine


HEAVY = "SELECT c, count(*), sum(b) FROM conc GROUP BY c ORDER BY c"
LIGHT = "SELECT count(*) FROM conc WHERE a % 3 = 0"
POOL = [
    HEAVY,
    "SELECT a, b FROM conc WHERE b < 40 ORDER BY a",
    LIGHT,
    "SELECT a, c FROM conc WHERE a = 17",
]
ACTIVITY_PROBE = (
    "SELECT query_id, state, queue FROM pg_stat_activity ORDER BY query_id"
)


def outcome_of(batch, stream, index):
    for outcome in batch.outcomes:
        if outcome.stream == stream and outcome.index == index:
            return outcome
    raise AssertionError(f"no outcome for ({stream}, {index})")


# ------------------------------------------------------- SQL composition
class TestSystemViewSql:
    def test_segments_view_covers_cluster(self):
        engine = build_engine()
        session = engine.connect()
        session.execute(HEAVY)
        rows = session.execute(
            "SELECT segment_id, host, tasks, busy_seconds, utilization "
            "FROM pg_stat_segments ORDER BY segment_id"
        ).rows
        assert [row[0] for row in rows] == list(range(engine.num_segments))
        assert all(row[2] > 0 for row in rows)  # every segment ran tasks
        assert all(0.0 <= row[4] <= 1.0 for row in rows)

    def test_views_compose_with_filter_order_agg(self):
        engine = build_engine()
        session = engine.connect()
        session.execute(HEAVY)
        agg = session.execute("SELECT count(*) FROM pg_stat_segments").rows
        assert agg == [(engine.num_segments,)]
        filtered = session.execute(
            "SELECT queue, slots FROM pg_resqueue_status "
            "WHERE waiters = 0 ORDER BY queue"
        ).rows
        assert ("pg_default", 20) in filtered
        top = session.execute(
            "SELECT fingerprint, calls FROM pg_stat_statements "
            "WHERE calls >= 1 ORDER BY calls DESC, fingerprint"
        ).rows
        assert len(top) >= 1

    def test_activity_serial_statement_sees_itself(self):
        engine = build_engine()
        session = engine.connect()
        rows = session.execute(
            "SELECT query_id, state, queue, attempt FROM pg_stat_activity"
        ).rows
        assert len(rows) == 1
        assert rows[0][1] == "running"
        assert rows[0][2] == "pg_default"
        assert rows[0][3] == 1

    def test_statement_repository_normalizes_literals(self):
        engine = build_engine()
        session = engine.connect()
        session.execute("SELECT a, c FROM conc WHERE a = 17")
        session.execute("SELECT  a, c FROM conc  WHERE a = 230;")
        rows = session.execute(
            "SELECT fingerprint, calls, total_rows FROM pg_stat_statements "
            "WHERE fingerprint = 'select a, c from conc where a = ?'"
        ).rows
        assert len(rows) == 1
        assert rows[0][1] == 2  # both literal variants, one fingerprint
        assert rows[0][2] == 2  # one matching row each

    def test_statement_repository_accumulates_charges(self):
        engine = build_engine()
        session = engine.connect()
        first = session.execute(HEAVY)
        second = session.execute(HEAVY)
        rows = session.execute(
            "SELECT calls, total_seconds, mean_seconds "
            "FROM pg_stat_statements WHERE fingerprint = "
            f"'{fingerprint(HEAVY)}'"
        ).rows
        assert rows[0][0] == 2
        expected = first.cost.seconds + second.cost.seconds
        assert rows[0][1] == pytest.approx(expected)
        assert rows[0][2] == pytest.approx(expected / 2)

    def test_fingerprint_rules(self):
        assert fingerprint("SELECT * FROM t WHERE a = 7") == (
            "select * from t where a = ?"
        )
        assert fingerprint("select *  from t where a=19;") == (
            "select * from t where a=?"
        )
        assert fingerprint("SELECT 'x''y' FROM t") == "select ? from t"
        # identifiers containing digits survive normalization
        assert fingerprint("SELECT v2 FROM t1") == "select v2 from t1"

    def test_schema_matches_columns(self):
        for name, columns in sorted(SYSTEM_VIEW_COLUMNS.items()):
            schema = system_view_schema(name)
            assert [col.name for col in schema.columns] == columns


# ------------------------------------------------------------- passivity
class TestPassivityDifferential:
    def test_interleaved_introspection_is_bit_identical(self):
        """The tentpole differential: a 4-stream workload with a
        system-view query interleaved after every statement returns
        bit-identical rows and charged seconds for every original
        statement — introspection reads never perturb execution."""
        statements = [
            [POOL[(stream + i) % len(POOL)] for i in range(3)]
            for stream in range(4)
        ]
        baseline = ConcurrentRunner(build_engine(), statements).run()

        probes = [
            ACTIVITY_PROBE,
            "SELECT queue, slots_in_use, waiters FROM pg_resqueue_status "
            "ORDER BY queue",
            "SELECT segment_id, tasks FROM pg_stat_segments "
            "ORDER BY segment_id",
            "SELECT fingerprint, calls FROM pg_stat_statements "
            "ORDER BY fingerprint",
        ]
        interleaved = []
        for stream in range(4):
            mixed = []
            for i, sql in enumerate(statements[stream]):
                mixed.append(sql)
                mixed.append(probes[(stream + i) % len(probes)])
            interleaved.append(mixed)
        probed = ConcurrentRunner(build_engine(), interleaved).run()

        for stream in range(4):
            for i in range(3):
                original = outcome_of(baseline, stream, i)
                shadowed = outcome_of(probed, stream, 2 * i)
                assert shadowed.rows == original.rows
                assert shadowed.charged_seconds == original.charged_seconds
                assert shadowed.serial_seconds == original.serial_seconds

    def test_probes_observe_live_running_statements(self):
        """The interleaved introspection statements actually see their
        concurrent peers running — liveness, not just passivity."""
        interleaved = [
            [POOL[(stream + i) % len(POOL)], ACTIVITY_PROBE]
            for stream in range(4)
            for i in (0,)
        ]
        batch = ConcurrentRunner(build_engine(), interleaved).run()
        probe_outcomes = [o for o in batch.outcomes if o.index == 1]
        assert probe_outcomes
        saw_running = sum(
            1
            for outcome in probe_outcomes
            if outcome.rows and "running" in [r[1] for r in outcome.rows]
        )
        assert saw_running >= 1

    def test_serial_probe_between_statements_is_passive(self):
        """Serial flavor of the differential: interleaving system-view
        SELECTs between serial statements changes nothing."""
        engine_a = build_engine()
        session_a = engine_a.connect()
        plain = [session_a.execute(sql) for sql in POOL]

        engine_b = build_engine()
        session_b = engine_b.connect()
        probed = []
        for sql in POOL:
            probed.append(session_b.execute(sql))
            session_b.execute("SELECT count(*) FROM pg_stat_activity")
            session_b.execute("SELECT count(*) FROM pg_stat_segments")
        for before, after in zip(plain, probed):
            assert after.rows == before.rows
            assert after.cost.seconds == before.cost.seconds


# -------------------------------------------------------------- liveness
class TestLiveState:
    def test_queued_statements_visible_under_contention(self):
        engine = build_engine()
        engine.connect().execute(
            "CREATE RESOURCE QUEUE narrow WITH (active_statements=1)"
        )
        streams = [
            [HEAVY, HEAVY],
            [HEAVY, HEAVY],
            [
                "SELECT query_id, state, queue, queue_wait_seconds "
                "FROM pg_stat_activity WHERE state = 'queued' "
                "ORDER BY query_id",
                "SELECT queue, slots_in_use, waiters, head_of_line "
                "FROM pg_resqueue_status WHERE waiters > 0",
            ],
        ]
        batch = ConcurrentRunner(
            engine, streams, queues={0: "narrow", 1: "narrow"}
        ).run()
        queued_rows = outcome_of(batch, 2, 0).rows
        assert queued_rows, "no queued statement observed"
        for row in queued_rows:
            assert row[1] == "queued"
            assert row[2] == "narrow"
            assert row[3] >= 0.0
        status_rows = outcome_of(batch, 2, 1).rows
        assert status_rows
        queue, in_use, waiters, head = status_rows[0]
        assert queue == "narrow"
        assert in_use == 1  # single slot saturated
        assert waiters >= 1
        assert head is not None  # head-of-line query id published

    def test_attempt_and_slice_progress_columns(self):
        engine = build_engine()
        streams = [
            [HEAVY],
            [
                "SELECT attempt, slices_dispatched, slices_completed "
                "FROM pg_stat_activity WHERE state = 'running' "
                "ORDER BY query_id"
            ],
        ]
        batch = ConcurrentRunner(engine, streams).run()
        rows = outcome_of(batch, 1, 0).rows
        assert rows
        for attempt, dispatched, completed in rows:
            assert attempt >= 1
            assert dispatched >= completed >= 0


# ----------------------------------------------------------- chaos probe
class TestCancelProbe:
    def test_killed_query_gone_and_survivors_identical(self):
        streams = [[HEAVY, LIGHT], [LIGHT, HEAVY]]
        cancel = {(0, 0): 0.05}
        baseline = ConcurrentRunner(
            build_engine(),
            [list(s) for s in streams],
            allow_failures=True,
            cancel_at=dict(cancel),
        ).run()
        killed_base = outcome_of(baseline, 0, 0)
        assert killed_base.error is not None
        assert "QueryCanceled" in killed_base.error

        probed = ConcurrentRunner(
            build_engine(),
            [list(streams[0]), list(streams[1]),
             [ACTIVITY_PROBE, ACTIVITY_PROBE, ACTIVITY_PROBE]],
            allow_failures=True,
            cancel_at=dict(cancel),
        ).run()
        killed = outcome_of(probed, 0, 0)
        assert killed.error is not None and "QueryCanceled" in killed.error

        # After the cancel lands, the killed id must surface only as
        # cancelling or not at all — never queued/running again.
        for outcome in probed.outcomes:
            if outcome.stream != 2:
                continue
            if outcome.submit < 0.05:
                continue  # probe dispatched before the cancel event
            for query_id, state, *_rest in outcome.rows:
                if query_id == killed.query_id:
                    assert state == "cancelling"

        for stream, index in [(0, 1), (1, 0), (1, 1)]:
            original = outcome_of(baseline, stream, index)
            shadowed = outcome_of(probed, stream, index)
            assert shadowed.rows == original.rows
            assert shadowed.charged_seconds == original.charged_seconds

    def test_pending_serial_cancel_shows_cancelling(self):
        """Unit-level: a registered statement with a pending cancel
        request reads as 'cancelling' in pg_stat_activity."""
        engine = build_engine()
        telemetry = engine.telemetry
        telemetry.serial_begin(9999, "pg_default")
        try:
            engine.cancel_query(9999)
            rows = system_view_rows(telemetry, "pg_stat_activity")
            mine = [row for row in rows if row[0] == 9999]
            assert mine and mine[0][1] == "cancelling"
        finally:
            telemetry.serial_end(9999)
            engine._cancel_requests.discard(9999)
        assert not [
            row
            for row in system_view_rows(telemetry, "pg_stat_activity")
            if row[0] == 9999
        ]


# ---------------------------------------------------- queue pressure (S1)
class TestQueuePressureMetrics:
    def test_waiters_and_slots_gauges_published(self):
        engine = build_engine()
        engine.connect().execute(
            "CREATE RESOURCE QUEUE narrow WITH (active_statements=1)"
        )
        ConcurrentRunner(
            engine,
            [[HEAVY, LIGHT], [LIGHT, HEAVY], [HEAVY, LIGHT]],
            queues={0: "narrow", 1: "narrow", 2: "narrow"},
        ).run()
        snap = engine.metrics.snapshot()
        # Queue-depth histogram: one observation per submission.
        assert snap.total("resqueue_queue_depth.count") >= 6
        assert snap["resqueue_queue_depth{queue=narrow}.count"] >= 6
        # Gauges exist and settled back to idle after the batch.
        assert snap["resqueue_waiters{queue=narrow}"] == 0
        assert snap["resqueue_slots_in_use{queue=narrow}"] == 0
        # The depth is sampled at submission before the new statement
        # parks, so a nonzero max needs a second parker arriving while
        # the first still waits — three streams on one slot guarantee it.
        assert snap["resqueue_queue_depth{queue=narrow}.max"] >= 1

    def test_occupancy_rows_shape(self):
        from repro.cluster.resqueue import (
            QueueSpec,
            ResourceQueueManager,
        )

        manager = ResourceQueueManager(
            {"q": QueueSpec(name="q", slots=1, memory_limit=100.0)}
        )
        manager.submit(1, "q", 50.0, 0.0, lambda t: None)
        manager.submit(2, "q", 50.0, 1.0, lambda t: None)
        manager.submit(3, "q", 50.0, 2.0, lambda t: None)
        rows = manager.occupancy()
        assert rows == [("q", 1, 1, 100.0, 50.0, 2, 2)]
        manager.release(1, 3.0)
        rows = manager.occupancy()
        assert rows == [("q", 1, 1, 100.0, 50.0, 1, 3)]


# ------------------------------------------------- metrics suffixes (S2)
class TestMetricsHistogramSuffixes:
    def build_snapshot(self) -> MetricsSnapshot:
        registry = MetricsRegistry()
        registry.counter("n", node="seg0").inc(1)
        registry.counter("n", node="seg1").inc(2)
        registry.histogram("h", queue="a").observe(2.0)
        registry.histogram("h", queue="a").observe(4.0)
        registry.histogram("h", queue="b").observe(10.0)
        return registry.snapshot()

    def test_total_counters_unchanged(self):
        snap = self.build_snapshot()
        assert snap.total("n") == 3
        assert snap.total("missing") == 0

    def test_total_histogram_components(self):
        snap = self.build_snapshot()
        assert snap.total("h.count") == 3
        assert snap.total("h.total") == 16.0
        assert snap.total("h.max") == 14.0  # per-label maxima summed
        # A bare histogram name no longer sums unrelated components.
        assert snap.total("h") == 0.0

    def test_by_label_histogram_components(self):
        snap = self.build_snapshot()
        assert snap.by_label("h.count") == {"queue=a": 2, "queue=b": 1}
        assert snap.by_label("h.total") == {"queue=a": 6.0, "queue=b": 10.0}
        assert snap.by_label("n") == {"node=seg0": 1, "node=seg1": 2}

    def test_unlabeled_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(5.0)
        snap = registry.snapshot()
        assert snap.total("h.count") == 1
        assert snap.by_label("h.total") == {"": 5.0}
        assert snap.total("h") == 0.0

    def test_mean_is_sum_over_count(self):
        snap = self.build_snapshot()
        mean = snap.total("h.total") / snap.total("h.count")
        assert mean == pytest.approx(16.0 / 3)


# ------------------------------------------------------------ prometheus
class TestPrometheusExport:
    def test_rendered_registry_is_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("requests", node="seg0").inc(3)
        registry.counter("requests", node="seg1").inc(4)
        registry.gauge("depth", queue="pg_default").set(2)
        registry.histogram("wait_seconds", queue="pg_default").observe(0.5)
        registry.histogram("wait_seconds", queue="pg_default").observe(1.5)
        text = render_prometheus(registry)
        assert prometheus_violations(text) == []
        assert '# TYPE requests counter' in text
        assert 'requests{node="seg0"} 3' in text
        assert 'wait_seconds_count{queue="pg_default"} 2' in text
        assert 'wait_seconds_sum{queue="pg_default"} 2' in text
        assert 'wait_seconds_min{queue="pg_default"} 0.5' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert prometheus_violations("") == []

    def test_violations_caught(self):
        bad = "\n".join(
            [
                "# TYPE ok counter",
                "ok 1",
                "broken metric line",
                'untyped_sample{x="y"} 2',
                "# TYPE bad notakind",
            ]
        )
        problems = prometheus_violations(bad)
        assert len(problems) == 3
        assert any("malformed sample" in p for p in problems)
        assert any("precedes its TYPE" in p for p in problems)
        assert any("malformed TYPE" in p for p in problems)

    def test_engine_metrics_render_clean(self):
        engine = build_engine()
        engine.connect().execute(HEAVY)
        text = render_prometheus(engine.metrics)
        assert text
        assert prometheus_violations(text) == []


# ------------------------------------------------------------- dashboard
class TestDashboard:
    def test_render_top_from_live_snapshot(self):
        engine = build_engine()
        snapshots = []

        def probe(stream, index):
            snapshots.append(engine.telemetry.overview())

        ConcurrentRunner(
            engine, [[HEAVY, LIGHT], [LIGHT, HEAVY]], before_query=probe
        ).run()
        busiest = max(
            snapshots, key=lambda snap: (len(snap["activity"]), snap["now"])
        )
        text = render_top(busiest)
        assert "statements" in text
        assert "resource queues" in text
        assert "pg_default" in text
        assert "seg0" in text

    def test_overview_idle_engine(self):
        engine = build_engine()
        overview = engine.telemetry.overview()
        assert overview["activity"] == []
        assert len(overview["segments"]) == engine.num_segments
        text = render_top(overview)
        assert "(idle)" in text


# ----------------------------------------------------------- EXPLAIN skew
class TestExplainSkew:
    def test_verbose_analyze_reports_gang_skew(self):
        engine = build_engine()
        session = engine.connect()
        lines = [
            row[0]
            for row in session.execute(
                f"EXPLAIN (ANALYZE, VERBOSE) {HEAVY}"
            ).rows
        ]
        skew = [line for line in lines if "skew: max=" in line]
        assert skew, "no skew annotation in verbose output"
        import re

        match = re.search(
            r"max=(\d+\.\d+)s mean=(\d+\.\d+)s min=(\d+\.\d+)s "
            r"across (\d+) tasks",
            skew[0],
        )
        assert match is not None
        top, mean, low, count = (
            float(match.group(1)),
            float(match.group(2)),
            float(match.group(3)),
            int(match.group(4)),
        )
        assert top >= mean >= low >= 0.0
        assert count >= 2

    def test_plain_analyze_has_no_skew_line(self):
        engine = build_engine()
        session = engine.connect()
        lines = [
            row[0]
            for row in session.execute(f"EXPLAIN ANALYZE {HEAVY}").rows
        ]
        assert not [line for line in lines if "skew:" in line]
