"""Tests for types, schemas, partitions, the catalog service and CaQL."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import (
    CatalogService,
    Column,
    DataType,
    Distribution,
    TableSchema,
    TypeKind,
    execute_caql,
    parse_caql,
)
from repro.catalog.schema import Partition, PartitionSpec, hash_values
from repro.catalog.stats import ColumnStats, TableStats
from repro.errors import (
    CaqlSyntaxError,
    CatalogError,
    DuplicateObject,
    SemanticError,
    UndefinedObject,
)
from repro.txn.mvcc import XidManager


class TestDataTypes:
    @pytest.mark.parametrize(
        "text,kind,length,scale",
        [
            ("INT", TypeKind.INT4, None, None),
            ("integer", TypeKind.INT4, None, None),
            ("INT8", TypeKind.INT8, None, None),
            ("bigint", TypeKind.INT8, None, None),
            ("DECIMAL(15,2)", TypeKind.DECIMAL, 15, 2),
            ("numeric(5)", TypeKind.DECIMAL, 5, None),
            ("DOUBLE PRECISION", TypeKind.FLOAT8, None, None),
            ("CHAR(1)", TypeKind.CHAR, 1, None),
            ("VARCHAR(79)", TypeKind.VARCHAR, 79, None),
            ("text", TypeKind.TEXT, None, None),
            ("DATE", TypeKind.DATE, None, None),
            ("BOOLEAN", TypeKind.BOOL, None, None),
            ("bytea", TypeKind.BYTEA, None, None),
        ],
    )
    def test_parse(self, text, kind, length, scale):
        parsed = DataType.parse(text)
        assert parsed.kind is kind
        assert parsed.length == length
        assert parsed.scale == scale

    def test_parse_garbage(self):
        with pytest.raises(CatalogError):
            DataType.parse("wibble(3)")

    def test_coerce_decimal_rounds_to_scale(self):
        assert DataType.parse("DECIMAL(10,2)").coerce(1.23456) == 1.23

    def test_coerce_char_truncates(self):
        assert DataType.parse("CHAR(3)").coerce("abcdef") == "abc"

    def test_coerce_date_from_string(self):
        assert DataType.parse("DATE").coerce("1994-05-01") == datetime.date(
            1994, 5, 1
        )

    def test_coerce_none_passthrough(self):
        assert DataType.parse("INT").coerce(None) is None

    @given(
        value=st.one_of(
            st.integers(-(2**62), 2**62),
            st.floats(-1e12, 1e12),
            st.text(max_size=50),
            st.dates(
                min_value=datetime.date(1, 1, 1),
                max_value=datetime.date(5000, 1, 1),
            ),
            st.booleans(),
            st.binary(max_size=40),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_encode_decode_roundtrip(self, value):
        if isinstance(value, bool):
            dtype = DataType.parse("bool")
        elif isinstance(value, int):
            dtype = DataType.parse("int8")
        elif isinstance(value, float):
            dtype = DataType.parse("float8")
        elif isinstance(value, str):
            dtype = DataType.parse("text")
        elif isinstance(value, bytes):
            dtype = DataType.parse("bytea")
        else:
            dtype = DataType.parse("date")
        buf = bytearray()
        dtype.encode(value, buf)
        decoded, offset = dtype.decode(bytes(buf), 0)
        assert decoded == value
        assert offset == len(buf)


def make_schema():
    return TableSchema(
        name="T1",
        columns=[
            Column("a", DataType.parse("INT"), not_null=True),
            Column("b", DataType.parse("TEXT")),
        ],
        distribution=Distribution.hash("a"),
    )


class TestTableSchema:
    def test_name_lowercased(self):
        assert make_schema().name == "t1"

    def test_duplicate_column(self):
        with pytest.raises(CatalogError):
            TableSchema(
                name="t",
                columns=[
                    Column("x", DataType.parse("INT")),
                    Column("X", DataType.parse("INT")),
                ],
            )

    def test_unknown_distribution_column(self):
        with pytest.raises(SemanticError):
            TableSchema(
                name="t",
                columns=[Column("x", DataType.parse("INT"))],
                distribution=Distribution.hash("nope"),
            )

    def test_coerce_row_null_violation(self):
        with pytest.raises(CatalogError):
            make_schema().coerce_row((None, "x"))

    def test_coerce_row_arity(self):
        with pytest.raises(CatalogError):
            make_schema().coerce_row((1,))

    def test_row_encode_decode_with_nulls(self):
        schema = make_schema()
        row = schema.coerce_row((5, None))
        buf = bytearray()
        schema.encode_row(row, buf)
        decoded, offset = schema.decode_row(bytes(buf), 0)
        assert decoded == row
        assert offset == len(buf)

    def test_hash_row_stable_and_bounded(self):
        schema = make_schema()
        values = {schema.hash_row((i, "x"), 8) for i in range(100)}
        assert values <= set(range(8))
        assert len(values) > 1  # spreads
        assert schema.hash_row((42, "y"), 8) == schema.hash_row((42, "z"), 8)

    def test_hash_row_on_random_table_fails(self):
        schema = TableSchema(
            name="r",
            columns=[Column("x", DataType.parse("INT"))],
            distribution=Distribution.random(),
        )
        with pytest.raises(CatalogError):
            schema.hash_row((1,), 4)

    def test_hash_values_deterministic_across_runs(self):
        # FNV over repr: fixed expected value guards against drift that
        # would silently break co-location of already-loaded data.
        assert hash_values((42, "abc"), 1000) == hash_values((42, "abc"), 1000)


class TestPartitions:
    def spec(self):
        return PartitionSpec(
            column="d",
            kind="range",
            partitions=(
                Partition("1", lower=0, upper=10),
                Partition("2", lower=10, upper=20),
            ),
        )

    def test_route(self):
        spec = self.spec()
        assert spec.route(0).name == "1"
        assert spec.route(9).name == "1"
        assert spec.route(10).name == "2"
        assert spec.route(25) is None

    def test_may_satisfy_eq(self):
        part = Partition("1", lower=0, upper=10)
        assert part.may_satisfy("=", 5)
        assert not part.may_satisfy("=", 15)

    def test_may_satisfy_range(self):
        part = Partition("1", lower=10, upper=20)
        assert not part.may_satisfy("<", 5)
        assert part.may_satisfy(">=", 15)
        assert not part.may_satisfy(">=", 25)

    def test_list_partition(self):
        part = Partition("odd", in_values=(1, 3, 5))
        assert part.contains(3)
        assert not part.contains(2)
        assert part.may_satisfy("=", 5)
        assert not part.may_satisfy("=", 4)


class TestCatalogService:
    @pytest.fixture
    def env(self):
        catalog = CatalogService()
        xids = XidManager()
        return catalog, xids

    def begin(self, xids):
        xid = xids.begin()
        return xid, xids.snapshot(xid)

    def test_create_and_lookup(self, env):
        catalog, xids = env
        xid, snapshot = self.begin(xids)
        catalog.create_table(make_schema(), xid, snapshot)
        xids.commit(xid)
        xid2, snapshot2 = self.begin(xids)
        assert catalog.get_schema("t1", snapshot2).name == "t1"

    def test_duplicate_create(self, env):
        catalog, xids = env
        xid, snapshot = self.begin(xids)
        catalog.create_table(make_schema(), xid, snapshot)
        xids.commit(xid)
        xid2, snapshot2 = self.begin(xids)
        with pytest.raises(DuplicateObject):
            catalog.create_table(make_schema(), xid2, snapshot2)

    def test_uncommitted_invisible_to_others(self, env):
        catalog, xids = env
        xid, snapshot = self.begin(xids)
        catalog.create_table(make_schema(), xid, snapshot)
        other_xid, other_snapshot = self.begin(xids)
        assert catalog.lookup_relation("t1", other_snapshot) is None
        # ... but visible to itself
        assert catalog.lookup_relation("t1", snapshot) is not None

    def test_aborted_create_rolls_back(self, env):
        catalog, xids = env
        xid, snapshot = self.begin(xids)
        catalog.create_table(make_schema(), xid, snapshot)
        xids.abort(xid)
        xid2, snapshot2 = self.begin(xids)
        assert catalog.lookup_relation("t1", snapshot2) is None

    def test_drop(self, env):
        catalog, xids = env
        xid, snapshot = self.begin(xids)
        catalog.create_table(make_schema(), xid, snapshot)
        xids.commit(xid)
        xid2, snapshot2 = self.begin(xids)
        catalog.drop_table("t1", xid2, snapshot2)
        xids.commit(xid2)
        xid3, snapshot3 = self.begin(xids)
        with pytest.raises(UndefinedObject):
            catalog.get_schema("t1", snapshot3)

    def test_segfile_registry(self, env):
        catalog, xids = env
        xid, snapshot = self.begin(xids)
        catalog.register_segfile("t1", 0, 0, {"/p": 100}, xid, 400, 10)
        xids.commit(xid)
        xid2, snapshot2 = self.begin(xids)
        files = catalog.segfiles("t1", snapshot2)
        assert len(files) == 1
        assert files[0]["paths"] == {"/p": 100}
        # A reader that started before the update commits must keep
        # seeing the old logical length (snapshot semantics, Section 5.4).
        _, old_reader_snapshot = self.begin(xids)
        catalog.update_segfile(
            snapshot2, "t1", 0, 0, {"paths": {"/p": 180}}, xid2
        )
        xids.commit(xid2)
        _, snapshot3 = self.begin(xids)
        assert catalog.segfiles("t1", snapshot3)[0]["paths"] == {"/p": 180}
        assert catalog.segfiles("t1", old_reader_snapshot)[0]["paths"] == {
            "/p": 100
        }

    def test_segment_status(self, env):
        catalog, xids = env
        xid, snapshot = self.begin(xids)
        catalog.register_segment(0, "h0", xid)
        catalog.register_segment(1, "h1", xid)
        xids.commit(xid)
        xid2, snapshot2 = self.begin(xids)
        catalog.set_segment_status(1, "down", xid2, snapshot2)
        xids.commit(xid2)
        _, snapshot3 = self.begin(xids)
        down = catalog.segments(snapshot3, status="down")
        assert [s["segment_id"] for s in down] == [1]

    def test_stats_roundtrip(self, env):
        catalog, xids = env
        xid, snapshot = self.begin(xids)
        stats = TableStats(row_count=10, columns={"a": ColumnStats(n_distinct=5)})
        catalog.set_stats("t1", stats, xid, snapshot)
        xids.commit(xid)
        _, snapshot2 = self.begin(xids)
        assert catalog.get_stats("t1", snapshot2).row_count == 10

    def test_dependencies(self, env):
        catalog, xids = env
        xid, _ = self.begin(xids)
        catalog.add_dependency("v1", "t1", xid)
        xids.commit(xid)
        _, snapshot = self.begin(xids)
        assert catalog.dependents_of("t1", snapshot) == ["v1"]


class TestCaql:
    @pytest.fixture
    def env(self):
        catalog = CatalogService()
        xids = XidManager()
        xid = xids.begin()
        snapshot = xids.snapshot(xid)
        for i in range(3):
            execute_caql(
                catalog,
                "INSERT INTO gp_segment_configuration (segment_id, host, status) "
                f"VALUES ({i}, 'h{i}', 'up')",
                snapshot=snapshot,
                xid=xid,
            )
        xids.commit(xid)
        xid2 = xids.begin()
        return catalog, xids.snapshot(xid2), xid2

    def test_select_all(self, env):
        catalog, snapshot, xid = env
        result = execute_caql(
            catalog,
            "SELECT * FROM gp_segment_configuration ORDER BY segment_id",
            snapshot=snapshot,
            xid=xid,
        )
        assert [r["segment_id"] for r in result.rows] == [0, 1, 2]

    def test_select_where_param(self, env):
        catalog, snapshot, xid = env
        result = execute_caql(
            catalog,
            "SELECT * FROM gp_segment_configuration WHERE host = $1",
            ["h1"],
            snapshot=snapshot,
            xid=xid,
        )
        assert len(result.rows) == 1

    def test_count(self, env):
        catalog, snapshot, xid = env
        result = execute_caql(
            catalog,
            "SELECT COUNT(*) FROM gp_segment_configuration WHERE status = 'up'",
            snapshot=snapshot,
            xid=xid,
        )
        assert result.count == 3

    def test_single_row_update(self, env):
        catalog, snapshot, xid = env
        execute_caql(
            catalog,
            "UPDATE gp_segment_configuration SET status = 'down' "
            "WHERE segment_id = 2",
            snapshot=snapshot,
            xid=xid,
        )
        result = execute_caql(
            catalog,
            "SELECT * FROM gp_segment_configuration WHERE status = 'down'",
            snapshot=snapshot,
            xid=xid,
        )
        assert [r["segment_id"] for r in result.rows] == [2]

    def test_multi_row_update_rejected(self, env):
        catalog, snapshot, xid = env
        with pytest.raises(CaqlSyntaxError):
            execute_caql(
                catalog,
                "UPDATE gp_segment_configuration SET status = 'down' "
                "WHERE status = 'up'",
                snapshot=snapshot,
                xid=xid,
            )

    def test_multi_row_delete(self, env):
        catalog, snapshot, xid = env
        result = execute_caql(
            catalog,
            "DELETE FROM gp_segment_configuration WHERE status = 'up'",
            snapshot=snapshot,
            xid=xid,
        )
        assert result.count == 3

    def test_delete_without_where_rejected(self, env):
        catalog, snapshot, xid = env
        with pytest.raises(CaqlSyntaxError):
            execute_caql(
                catalog,
                "DELETE FROM gp_segment_configuration",
                snapshot=snapshot,
                xid=xid,
            )

    def test_joins_not_supported(self):
        with pytest.raises(CaqlSyntaxError):
            parse_caql("SELECT * FROM a, b WHERE a.x = b.y")

    def test_parse_values(self, env):
        catalog, snapshot, xid = env
        execute_caql(
            catalog,
            "INSERT INTO pg_depend (dependent, referenced) VALUES ('a', null)",
            snapshot=snapshot,
            xid=xid,
        )
        rows = catalog.table("pg_depend").scan(snapshot)
        assert rows[-1]["referenced"] is None


class TestSqlOverCatalog:
    """Paper 2.2: 'External applications can query the catalog using
    standard SQL.'"""

    @pytest.fixture
    def session(self):
        from repro import Engine

        engine = Engine(num_segment_hosts=2, segments_per_host=2)
        session = engine.connect()
        session.execute(
            "CREATE TABLE t (a INT) WITH (appendonly=true, "
            "orientation=column, compresstype=quicklz) DISTRIBUTED BY (a)"
        )
        session.execute("INSERT INTO t VALUES (1), (2), (3)")
        return session

    def test_pg_class(self, session):
        rows = session.query(
            "SELECT name, kind, storage_format FROM pg_class WHERE name = 't'"
        )
        assert rows == [("t", "table", "co")]

    def test_segment_configuration(self, session):
        rows = session.query(
            "SELECT count(*) FROM gp_segment_configuration WHERE status = 'up'"
        )
        assert rows == [(4,)]

    def test_segfile_tupcounts(self, session):
        rows = session.query(
            "SELECT sum(tupcount) FROM gp_segfile WHERE table = 't'"
        )
        assert rows == [(3,)]

    def test_join_catalog_with_user_table(self, session):
        rows = session.query(
            "SELECT t.a FROM t, gp_segment_configuration g "
            "WHERE g.segment_id = t.a ORDER BY 1"
        )
        assert rows == [(1,), (2,), (3,)]

    def test_catalog_reflects_snapshot(self, session):
        session.execute("BEGIN")
        session.execute("CREATE TABLE ghost (x INT)")
        inside = session.query(
            "SELECT count(*) FROM pg_class WHERE name = 'ghost'"
        )
        assert inside == [(1,)]
        session.execute("ROLLBACK")
        after = session.query(
            "SELECT count(*) FROM pg_class WHERE name = 'ghost'"
        )
        assert after == [(0,)]

    def test_no_privilege_needed(self, session):
        engine = session.engine
        engine.security.create_role("nobody")
        other = engine.connect(role="nobody")
        assert other.query("SELECT count(*) FROM pg_class") == [(1,)]
