"""Tests for the UDP interconnect protocol and the TCP comparator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConnectionLimitExceeded, InterconnectError
from repro.interconnect import (
    PacketType,
    ReceiverState,
    SenderState,
    StreamKey,
    TcpEndpoint,
    TcpFabric,
    TcpTuning,
    UdpEndpoint,
    UdpTuning,
)
from repro.network import NetworkConditions, SimNetwork

KEY = StreamKey(session_id=1, command_id=1, motion_id=1, sender_id=0, receiver_id=1)


def make_udp_pair(conditions=None, seed=0, tuning=None):
    net = SimNetwork(conditions or NetworkConditions(), seed=seed)
    a = UdpEndpoint(net, ("hostA", 4000), tuning=tuning)
    b = UdpEndpoint(net, ("hostB", 4000), tuning=tuning)
    recv = b.create_receiver(KEY, ("hostA", 4000))
    send = a.create_sender(KEY, ("hostB", 4000))
    return net, send, recv


def drain(net, send, recv, max_time=120.0):
    return net.run(until=lambda: send.done and recv.done, max_time=max_time)


class TestUdpBasics:
    def test_in_order_delivery(self):
        net, send, recv = make_udp_pair()
        for i in range(100):
            send.send(i, size=64)
        send.finish()
        drain(net, send, recv)
        assert recv.received == list(range(100))

    def test_empty_stream(self):
        net, send, recv = make_udp_pair()
        send.finish()
        drain(net, send, recv)
        assert recv.received == []
        assert send.state is SenderState.END
        assert recv.state is ReceiverState.EOS_RECEIVED

    def test_send_after_finish_fails(self):
        net, send, recv = make_udp_pair()
        send.finish()
        with pytest.raises(InterconnectError):
            send.send("late")

    def test_oversized_payload_rejected(self):
        net, send, recv = make_udp_pair()
        with pytest.raises(InterconnectError):
            send.send(b"x", size=1 << 20)

    def test_duplicate_endpoint_stream_rejected(self):
        net = SimNetwork()
        a = UdpEndpoint(net, ("h", 1))
        a.create_sender(KEY, ("h", 2))
        with pytest.raises(InterconnectError):
            a.create_sender(KEY, ("h", 2))


class TestUdpReliability:
    def test_loss_recovery(self):
        net, send, recv = make_udp_pair(NetworkConditions(loss_rate=0.15), seed=3)
        for i in range(300):
            send.send(i, size=64)
        send.finish()
        drain(net, send, recv)
        assert recv.received == list(range(300))
        assert send.retransmits > 0

    def test_duplicate_handling(self):
        net, send, recv = make_udp_pair(NetworkConditions(dup_rate=0.3), seed=5)
        for i in range(200):
            send.send(i, size=64)
        send.finish()
        drain(net, send, recv)
        assert recv.received == list(range(200))
        assert recv.duplicates > 0

    def test_reordering_ring_buffer(self):
        net, send, recv = make_udp_pair(
            NetworkConditions(jitter=500e-6), seed=9
        )
        for i in range(250):
            send.send(i, size=64)
        send.finish()
        drain(net, send, recv)
        assert recv.received == list(range(250))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), loss=st.floats(0.0, 0.3))
    def test_always_complete_and_ordered(self, seed, loss):
        """Property: any loss pattern still yields complete in-order data."""
        net, send, recv = make_udp_pair(
            NetworkConditions(loss_rate=loss, dup_rate=0.05), seed=seed
        )
        for i in range(120):
            send.send(i, size=32)
        send.finish()
        drain(net, send, recv, max_time=600)
        assert recv.received == list(range(120))


class TestUdpFlowControl:
    def test_window_collapse_on_loss(self):
        tuning = UdpTuning(initial_cwnd=16.0)
        net, send, recv = make_udp_pair(
            NetworkConditions(loss_rate=0.4), seed=1, tuning=tuning
        )
        for i in range(100):
            send.send(i, size=64)
        send.finish()
        # Run a little: under heavy loss the window should have collapsed
        # below its initial value at some point; fully drain after.
        drain(net, send, recv, max_time=600)
        assert recv.received == list(range(100))

    def test_slow_receiver_backpressure(self):
        tuning = UdpTuning(capacity=8)
        net, send, recv = make_udp_pair(tuning=tuning, seed=2)
        recv.set_consume_delay(1e-3)
        for i in range(50):
            send.send(i, size=64)
        send.finish()
        drain(net, send, recv, max_time=600)
        assert recv.received == list(range(50))

    def test_capacity_respected(self):
        """The sender never has more unconsumed packets outstanding than
        the receiver's buffer capacity."""
        tuning = UdpTuning(capacity=8)
        net, send, recv = make_udp_pair(tuning=tuning, seed=4)
        recv.set_consume_delay(5e-4)
        for i in range(40):
            send.send(i, size=64)
        send.finish()
        drain(net, send, recv, max_time=600)
        assert recv.received == list(range(40))
        assert send._next_seq - 1 - send._last_sc <= tuning.capacity + 1


class TestUdpControlMessages:
    def test_stop_for_limit_queries(self):
        net, send, recv = make_udp_pair(seed=6)
        for i in range(20):
            send.send(i, size=64)
        # Let a few arrive, then tell the sender to stop.
        net.run(until=lambda: len(recv.received) >= 5, max_time=10)
        recv.stop()
        send.finish()  # sender had more to say but should cut short
        net.run(until=lambda: send.done and recv.done, max_time=10)
        assert send.state is SenderState.END
        assert recv.done

    def test_deadlock_elimination_via_status_query(self):
        """Paper Section 4.5: all acks lost while the receiver drains ->
        the sender probes with STATUS_QUERY instead of hanging."""
        tuning = UdpTuning(capacity=4, status_query_interval=0.01)
        net, send, recv = make_udp_pair(tuning=tuning, seed=8)
        for i in range(12):
            send.send(i, size=64)
        send.finish()
        # Drop every ack for a while: the sender will believe the
        # receiver is full even once it has consumed everything.
        recv.drop_acks = True
        net.run(until=lambda: len(recv.received) >= 4, max_time=10)
        recv.drop_acks = False
        drain(net, send, recv, max_time=600)
        assert recv.received == list(range(12))

    def test_eos_is_reliable(self):
        net, send, recv = make_udp_pair(NetworkConditions(loss_rate=0.4), seed=12)
        send.send("only", size=32)
        send.finish()
        drain(net, send, recv, max_time=600)
        assert recv.done and send.done


class TestTcp:
    def make_pair(self, tuning=None, conditions=None, seed=0):
        net = SimNetwork(conditions or NetworkConditions(), seed=seed)
        fabric = TcpFabric(net, tuning)
        a = TcpEndpoint(fabric, ("hostA", 0))
        b = TcpEndpoint(fabric, ("hostB", 0))
        recv = b.create_receiver(KEY)
        send = a.create_sender(KEY, b)
        recv.attach_sender(send)
        return net, fabric, send, recv

    def test_reliable_in_order(self):
        net, fabric, send, recv = self.make_pair(
            conditions=NetworkConditions(loss_rate=0.1)
        )
        for i in range(100):
            send.send(i, size=64)
        send.finish()
        net.run(until=lambda: recv.done, max_time=60)
        assert recv.received == list(range(100))

    def test_ports_released_on_close(self):
        net, fabric, send, recv = self.make_pair()
        send.send(1, size=10)
        send.finish()
        net.run(until=lambda: recv.done, max_time=60)
        assert fabric.streams_per_host["hostA"] == 0
        assert fabric.streams_per_host["hostB"] == 0

    def test_port_exhaustion(self):
        net = SimNetwork()
        fabric = TcpFabric(net, TcpTuning(max_streams_per_host=3))
        a = TcpEndpoint(fabric, ("hostA", 0))
        b = TcpEndpoint(fabric, ("hostB", 0))
        senders = []
        with pytest.raises(ConnectionLimitExceeded):
            for i in range(10):
                key = StreamKey(1, 1, 1, i, i)
                b.create_receiver(key)
                sender = a.create_sender(key, b)
                sender.send("x", size=8)
                senders.append(sender)

    def test_handshakes_serialize_per_host(self):
        """Opening many connections at once queues on the host."""
        net = SimNetwork()
        fabric = TcpFabric(net)
        a = TcpEndpoint(fabric, ("hostA", 0))
        b = TcpEndpoint(fabric, ("hostB", 0))
        receivers = []
        for i in range(50):
            key = StreamKey(1, 1, 1, i, i)
            recv = b.create_receiver(key)
            send = a.create_sender(key, b)
            send.send(i, size=16)
            send.finish()
            receivers.append(recv)
        elapsed = net.run(
            until=lambda: all(r.done for r in receivers), max_time=60
        )
        assert elapsed >= 50 * fabric.tuning.conn_setup

    def test_stop(self):
        net, fabric, send, recv = self.make_pair()
        send.send(1, size=8)
        net.run(until=lambda: len(recv.received) == 1, max_time=60)
        recv.stop()
        send.send(2, size=8)  # silently dropped
        net.run(until=lambda: recv.done, max_time=60)
        assert recv.received == [1]
