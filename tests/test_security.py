"""Tests for roles, privileges, resource queues, ALTER TABLE storage
transformation, writable PXF tables, and the Hadoop Input/OutputFormats."""

import pytest

from repro import Engine
from repro.catalog.security import (
    PermissionDenied,
    QueueLimitExceeded,
    SecurityManager,
)
from repro.errors import CatalogError, PxfError, SemanticError
from repro.storage.hadoop_formats import (
    HawqTableInputFormat,
    HawqTableOutputFormat,
)


class TestSecurityManager:
    def test_default_superuser(self):
        security = SecurityManager()
        assert security.role("gpadmin").superuser
        security.check("gpadmin", "select", "anything")  # no raise

    def test_grant_check_revoke(self):
        security = SecurityManager()
        security.create_role("analyst")
        with pytest.raises(PermissionDenied):
            security.check("analyst", "select", "t")
        security.grant("select", "t", "analyst")
        security.check("analyst", "select", "t")
        with pytest.raises(PermissionDenied):
            security.check("analyst", "insert", "t")
        security.revoke("select", "t", "analyst")
        with pytest.raises(PermissionDenied):
            security.check("analyst", "select", "t")

    def test_all_privilege(self):
        security = SecurityManager()
        security.create_role("etl")
        security.grant("all", "t", "etl")
        security.check("etl", "select", "t")
        security.check("etl", "insert", "t")

    def test_duplicate_role(self):
        security = SecurityManager()
        security.create_role("r")
        with pytest.raises(CatalogError):
            security.create_role("r")

    def test_drop_role_clears_grants(self):
        security = SecurityManager()
        security.create_role("r")
        security.grant("select", "t", "r")
        security.drop_role("r")
        security.create_role("r")
        with pytest.raises(PermissionDenied):
            security.check("r", "select", "t")

    def test_queue_admission(self):
        security = SecurityManager()
        security.create_queue("small", active_statements=2)
        security.create_role("r", resource_queue="small")
        queue = security.queue_for("r")
        queue.admit()
        queue.admit()
        with pytest.raises(QueueLimitExceeded):
            queue.admit()
        queue.release()
        queue.admit()  # freed slot reusable

    def test_drop_queue_in_use(self):
        security = SecurityManager()
        security.create_queue("q")
        security.create_role("r", resource_queue="q")
        with pytest.raises(CatalogError):
            security.drop_queue("q")

    def test_cannot_drop_default_queue(self):
        with pytest.raises(CatalogError):
            SecurityManager().drop_queue("pg_default")


class TestSqlSecurity:
    @pytest.fixture
    def engine(self):
        engine = Engine(num_segment_hosts=2, segments_per_host=1)
        admin = engine.connect()
        admin.execute("CREATE ROLE analyst")
        admin.execute("CREATE TABLE t (a INT) DISTRIBUTED BY (a)")
        admin.execute("INSERT INTO t VALUES (1), (2)")
        return engine

    def test_select_denied_then_granted(self, engine):
        analyst = engine.connect(role="analyst")
        with pytest.raises(PermissionDenied):
            analyst.query("SELECT * FROM t")
        engine.connect().execute("GRANT select ON t TO analyst")
        assert sorted(analyst.query("SELECT * FROM t")) == [(1,), (2,)]

    def test_insert_needs_separate_privilege(self, engine):
        admin = engine.connect()
        admin.execute("GRANT select ON t TO analyst")
        analyst = engine.connect(role="analyst")
        with pytest.raises(PermissionDenied):
            analyst.execute("INSERT INTO t VALUES (3)")
        admin.execute("GRANT insert ON t TO analyst")
        analyst.execute("INSERT INTO t VALUES (3)")

    def test_owner_has_implicit_rights(self, engine):
        analyst = engine.connect(role="analyst")
        analyst.execute("CREATE TABLE mine (x INT) DISTRIBUTED BY (x)")
        analyst.execute("INSERT INTO mine VALUES (1)")
        assert analyst.query("SELECT * FROM mine") == [(1,)]
        analyst.execute("DROP TABLE mine")

    def test_drop_requires_ownership(self, engine):
        analyst = engine.connect(role="analyst")
        with pytest.raises(PermissionDenied):
            analyst.execute("DROP TABLE t")

    def test_non_superuser_cannot_create_roles(self, engine):
        analyst = engine.connect(role="analyst")
        with pytest.raises(PermissionDenied):
            analyst.execute("CREATE ROLE sneaky SUPERUSER")

    def test_resource_queue_via_sql(self, engine):
        admin = engine.connect()
        admin.execute(
            "CREATE RESOURCE QUEUE tiny WITH (active_statements=1, "
            "memory_limit=1000000)"
        )
        admin.execute("ALTER ROLE analyst RESOURCE QUEUE tiny")
        assert engine.security.role("analyst").resource_queue == "tiny"
        queue = engine.security.queue_for("analyst")
        assert queue.active_statements == 1

    def test_set_role(self, engine):
        session = engine.connect()
        session.execute("SET role TO analyst")
        assert session.role == "analyst"
        with pytest.raises(PermissionDenied):
            session.execute("CREATE ROLE another")

    def test_revoke_via_sql(self, engine):
        admin = engine.connect()
        admin.execute("GRANT select ON t TO analyst")
        admin.execute("REVOKE select ON t FROM analyst")
        analyst = engine.connect(role="analyst")
        with pytest.raises(PermissionDenied):
            analyst.query("SELECT * FROM t")


class TestAlterTableStorage:
    """The paper's roadmap feature: automatic storage transformation."""

    @pytest.fixture
    def session(self):
        engine = Engine(num_segment_hosts=2, segments_per_host=2)
        session = engine.connect()
        session.execute(
            "CREATE TABLE t (a INT, b TEXT) WITH (appendonly=true, "
            "orientation=row) DISTRIBUTED BY (a)"
        )
        session.execute(
            "INSERT INTO t VALUES " + ", ".join(f"({i}, 'v{i}')" for i in range(20))
        )
        return session

    def current_schema(self, session):
        engine = session.engine
        snapshot = engine.txns.begin().statement_snapshot()
        return engine.catalog.get_schema("t", snapshot)

    def test_row_to_column(self, session):
        before = sorted(session.query("SELECT a, b FROM t"))
        session.execute(
            "ALTER TABLE t SET WITH (orientation=column, compresstype=zlib, "
            "compresslevel=5)"
        )
        schema = self.current_schema(session)
        assert schema.storage_format == "co"
        assert schema.compression == "zlib5"
        assert sorted(session.query("SELECT a, b FROM t")) == before

    def test_writes_after_transformation(self, session):
        session.execute("ALTER TABLE t SET WITH (orientation=parquet)")
        session.execute("INSERT INTO t VALUES (100, 'new')")
        assert session.query("SELECT b FROM t WHERE a = 100") == [("new",)]

    def test_alter_rolls_back(self, session):
        before = sorted(session.query("SELECT a, b FROM t"))
        session.execute("BEGIN")
        session.execute("ALTER TABLE t SET WITH (orientation=column)")
        session.execute("ROLLBACK")
        schema = self.current_schema(session)
        assert schema.storage_format == "ao"
        assert sorted(session.query("SELECT a, b FROM t")) == before

    def test_alter_missing_table(self, session):
        from repro.errors import UndefinedObject

        with pytest.raises(UndefinedObject):
            session.execute("ALTER TABLE nope SET WITH (orientation=column)")

    def test_alter_partitioned_table(self, session):
        session.execute(
            """
            CREATE TABLE pt (id INT, g INT)
            DISTRIBUTED BY (id)
            PARTITION BY RANGE (g) (START (0) END (10) EVERY (5))
            """
        )
        session.execute("INSERT INTO pt VALUES (1, 1), (2, 7)")
        session.execute("ALTER TABLE pt SET WITH (orientation=column)")
        assert sorted(session.query("SELECT id FROM pt")) == [(1,), (2,)]


class TestWritableExternalTables:
    @pytest.fixture
    def session(self):
        return Engine(num_segment_hosts=2, segments_per_host=1).connect()

    def test_text_export_roundtrip(self, session):
        session.execute(
            """
            CREATE WRITABLE EXTERNAL TABLE out_t (id INT, name TEXT)
            LOCATION ('pxf://svc/exports/a.tbl?profile=HdfsTextSimple')
            FORMAT 'TEXT' ()
            """
        )
        session.execute("INSERT INTO out_t VALUES (1, 'a'), (2, NULL)")
        raw = session.engine.hdfs.client().read_file("/exports/a.tbl")
        assert raw == b"1|a\n2|\n"

    def test_insert_into_readable_rejected(self, session):
        session.engine.hdfs.client().write_file("/x.tbl", b"1\n")
        session.execute(
            """
            CREATE EXTERNAL TABLE in_t (id INT)
            LOCATION ('pxf://svc/x.tbl?profile=HdfsTextSimple') FORMAT 'TEXT' ()
            """
        )
        with pytest.raises(SemanticError, match="READABLE"):
            session.execute("INSERT INTO in_t VALUES (9)")

    def test_export_then_query_back(self, session):
        session.execute("CREATE TABLE src (id INT, v TEXT) DISTRIBUTED BY (id)")
        session.execute("INSERT INTO src VALUES (1,'x'), (2,'y'), (3,'z')")
        session.execute(
            """
            CREATE WRITABLE EXTERNAL TABLE sink (id INT, v TEXT)
            LOCATION ('pxf://svc/exports/sink.tbl?profile=HdfsTextSimple')
            FORMAT 'TEXT' ()
            """
        )
        session.execute("INSERT INTO sink SELECT id, v FROM src WHERE id > 1")
        session.execute(
            """
            CREATE EXTERNAL TABLE back (id INT, v TEXT)
            LOCATION ('pxf://svc/exports/sink.tbl?profile=HdfsTextSimple')
            FORMAT 'TEXT' ()
            """
        )
        assert sorted(session.query("SELECT id, v FROM back")) == [
            (2, "y"),
            (3, "z"),
        ]

    def test_profile_without_writer(self, session):
        session.execute(
            """
            CREATE WRITABLE EXTERNAL TABLE ws (id INT)
            LOCATION ('pxf://svc/exports/x.seq?profile=SequenceFile')
            FORMAT 'CUSTOM' ()
            """
        )
        with pytest.raises(PxfError, match="writer"):
            session.execute("INSERT INTO ws VALUES (1)")


class TestHadoopFormats:
    """Paper Section 2.1: MapReduce bypasses SQL and reads table files."""

    @pytest.fixture
    def engine(self):
        engine = Engine(num_segment_hosts=2, segments_per_host=2)
        session = engine.connect()
        session.execute(
            "CREATE TABLE words (id INT, text TEXT) WITH (appendonly=true, "
            "orientation=column, compresstype=quicklz) DISTRIBUTED BY (id)"
        )
        session.execute(
            "INSERT INTO words VALUES (1, 'the quick fox'), (2, 'the dog'), "
            "(3, 'quick quick')"
        )
        return engine

    def test_splits_carry_locality(self, engine):
        splits = HawqTableInputFormat(engine).get_splits("words")
        assert splits
        assert all(s.host.startswith("host") for s in splits)

    def test_read_respects_logical_lengths(self, engine):
        """An aborted append must be invisible to the InputFormat too."""
        session = engine.connect()
        session.execute("BEGIN")
        session.execute("INSERT INTO words VALUES (99, 'garbage')")
        session.execute("ROLLBACK")
        rows = sorted(HawqTableInputFormat(engine).read_table("words"))
        assert [r[0] for r in rows] == [1, 2, 3]

    def test_column_projection(self, engine):
        fmt = HawqTableInputFormat(engine)
        split = fmt.get_splits("words")[0]
        for row in fmt.read_split(split, columns=[0]):
            assert row[1] is None  # unread column placeholder

    def test_mapreduce_wordcount_over_hawq_table(self, engine):
        """An actual MR job consuming HAWQ table files directly."""
        from repro.baselines import MapReduceCluster
        from repro.baselines.mapreduce import Dataset

        fmt = HawqTableInputFormat(engine)
        rows = list(fmt.read_table("words"))
        cluster = MapReduceCluster(num_nodes=2, containers_per_node=2)

        def mapper(row):
            for word in row[1].split():
                yield word, 1

        def reducer(key, values):
            yield (key, sum(values))

        output, _ = cluster.run_job(
            "wordcount", [(Dataset.from_rows(rows, 1.0), mapper)], reducer
        )
        counts = dict(output.rows)
        assert counts["quick"] == 3
        assert counts["the"] == 2

    def test_output_format_loads(self, engine):
        out = HawqTableOutputFormat(engine)
        assert out.write_table("words", [(10, "bulk"), (11, "load")]) == 2
        session = engine.connect()
        assert session.query("SELECT count(*) FROM words") == [(5,)]
