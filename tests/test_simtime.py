"""Tests for the simulated clock, the event network, the cost
accumulator's scaled/fixed cost split, and the event-driven scheduler."""

import pytest

from repro.errors import InterconnectError, ReproError
from repro.network import NetworkConditions, SimNetwork
from repro.simtime import CostAccumulator, CostModel, QueryCost
from repro.simtime.scheduler import EventScheduler


class TestCostAccumulator:
    def test_fixed_costs_ignore_scale(self):
        model = CostModel()
        model.scale = 1000.0
        acc = CostAccumulator(model)
        acc.fixed(2.0)
        assert acc.seconds == 2.0

    def test_scaled_disk_read(self):
        model = CostModel()
        model.scale = 10.0
        acc = CostAccumulator(model)
        acc.disk_read(int(model.disk_seq_bw))  # 1 second of data
        assert acc.seconds == pytest.approx(10.0)
        assert acc.disk_read_bytes == int(model.disk_seq_bw)

    def test_cached_reads_free(self):
        model = CostModel()
        model.io_cached = True
        acc = CostAccumulator(model)
        acc.disk_read(10**9)
        assert acc.seconds == 0.0
        assert acc.disk_read_bytes == 10**9  # still counted

    def test_replicated_write_costs_more(self):
        model = CostModel()
        plain = CostAccumulator(model)
        replicated = CostAccumulator(model)
        plain.disk_write(10**6)
        replicated.disk_write(10**6, replicated=True)
        assert replicated.seconds == pytest.approx(
            plain.seconds * model.hdfs_replication
        )

    def test_cpu_tuples(self):
        model = CostModel()
        acc = CostAccumulator(model)
        acc.cpu_tuples(1000, ncolumns=4)
        expected = 1000 * (model.cpu_tuple + 4 * model.cpu_column)
        assert acc.seconds == pytest.approx(expected)
        assert acc.tuples == 1000

    def test_network_includes_latency(self):
        model = CostModel()
        acc = CostAccumulator(model)
        acc.network(0)
        assert acc.seconds == pytest.approx(model.net_latency)

    def test_network_latency_is_per_message(self):
        model = CostModel()
        batched, fragmented = CostAccumulator(model), CostAccumulator(model)
        # One logical payload: three fragments batched into one charged
        # send pay one latency; three separate messages pay three.
        batched.network(3000, messages=1)
        fragmented.network(3000, messages=3)
        assert fragmented.seconds - batched.seconds == pytest.approx(
            2 * model.net_latency
        )
        assert batched.net_bytes == fragmented.net_bytes == 3000

    def test_network_continuation_pays_no_latency(self):
        model = CostModel()
        acc = CostAccumulator(model)
        acc.network(9000, messages=0)
        assert acc.seconds == pytest.approx(model.scaled(9000 / model.net_bw))
        assert acc.net_bytes == 9000

    def test_model_copy_is_independent(self):
        model = CostModel()
        clone = model.copy()
        clone.scale = 99.0
        assert model.scale != clone.scale

    def test_query_cost_from_accumulator(self):
        acc = CostAccumulator(CostModel())
        acc.fixed(1.5)
        acc.disk_read(100)
        cost = QueryCost.from_accumulator(acc)
        assert cost.seconds == acc.seconds
        assert cost.disk_read_bytes == 100


class TestSimNetwork:
    def test_timer_ordering(self):
        net = SimNetwork()
        fired = []
        net.schedule(0.3, lambda: fired.append("late"))
        net.schedule(0.1, lambda: fired.append("early"))
        net.run()
        assert fired == ["early", "late"]

    def test_timer_cancellation(self):
        net = SimNetwork()
        fired = []
        handle = net.schedule(0.1, lambda: fired.append("x"))
        handle.cancel()
        net.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimNetwork().schedule(-1, lambda: None)

    def test_datagram_delivery(self):
        net = SimNetwork()
        got = []
        net.register(("b", 1), lambda d: got.append(d.payload))
        net.send(("a", 1), ("b", 1), "hello", size=10)
        net.run()
        assert got == ["hello"]

    def test_unbound_port_drops_silently(self):
        net = SimNetwork()
        net.send(("a", 1), ("nowhere", 1), "x", size=5)
        net.run()  # no error

    def test_loss_accounting_deterministic(self):
        results = []
        for _ in range(2):
            net = SimNetwork(NetworkConditions(loss_rate=0.5), seed=42)
            net.register(("b", 1), lambda d: None)
            for i in range(100):
                net.send(("a", 1), ("b", 1), i, size=10)
            net.run()
            results.append((net.dropped, net.delivered))
        assert results[0] == results[1]
        assert results[0][0] > 0

    def test_duplicate_bound(self):
        net = SimNetwork(NetworkConditions(dup_rate=1.0), seed=1)
        got = []
        net.register(("b", 1), lambda d: got.append(d.payload))
        net.send(("a", 1), ("b", 1), "x", size=10)
        net.run()
        assert len(got) == 2

    def test_max_time_exceeded(self):
        net = SimNetwork()

        def reschedule():
            net.schedule(10.0, reschedule)

        net.schedule(10.0, reschedule)
        with pytest.raises(InterconnectError):
            net.run(until=lambda: False, max_time=25.0)

    def test_until_predicate_stops_early(self):
        net = SimNetwork()
        fired = []
        net.schedule(0.1, lambda: fired.append(1))
        net.schedule(0.2, lambda: fired.append(2))
        net.run(until=lambda: len(fired) >= 1)
        assert fired == [1]

    def test_double_register_rejected(self):
        net = SimNetwork()
        net.register(("a", 1), lambda d: None)
        with pytest.raises(InterconnectError):
            net.register(("a", 1), lambda d: None)


class TestEventScheduler:
    def test_empty_schedule(self):
        schedule = EventScheduler().run()
        assert schedule.makespan == 0.0
        assert schedule.critical_path == []

    def test_chain_sums_durations_and_delays(self):
        sched = EventScheduler()
        sched.add_task((0, 0), 1.0)
        sched.add_task((1, 0), 2.0)
        sched.add_task((2, 0), 3.0)
        sched.add_edge((0, 0), (1, 0), delay=0.5)
        sched.add_edge((1, 0), (2, 0), delay=0.5)
        schedule = sched.run()
        assert schedule.makespan == pytest.approx(7.0)
        assert schedule.critical_path == [(0, 0), (1, 0), (2, 0)]

    def test_fan_in_takes_max_not_sum(self):
        # Two independent children feeding one parent: the bushy shape
        # the old per-slice max-then-sum fold over-charged.
        sched = EventScheduler()
        sched.add_task((0, 0), 5.0)
        sched.add_task((1, 0), 2.0)
        sched.add_task((2, 0), 1.0)
        sched.add_edge((0, 0), (2, 0))
        sched.add_edge((1, 0), (2, 0))
        schedule = sched.run()
        assert schedule.makespan == pytest.approx(6.0)
        assert schedule.critical_path == [(0, 0), (2, 0)]

    def test_parallel_edges_later_arrival_wins(self):
        sched = EventScheduler()
        sched.add_task((0, 0), 1.0)
        sched.add_task((1, 0), 1.0)
        sched.add_edge((0, 0), (1, 0), delay=0.1)
        sched.add_edge((0, 0), (1, 0), delay=2.0)
        schedule = sched.run()
        assert schedule.makespan == pytest.approx(4.0)

    def test_release_delays_start(self):
        sched = EventScheduler()
        sched.add_task((0, 0), 1.0, release=3.0)
        schedule = sched.run()
        assert schedule.start[(0, 0)] == pytest.approx(3.0)
        assert schedule.makespan == pytest.approx(4.0)

    def test_cycle_detected(self):
        sched = EventScheduler()
        sched.add_task((0, 0), 1.0)
        sched.add_task((1, 0), 1.0)
        sched.add_edge((0, 0), (1, 0))
        sched.add_edge((1, 0), (0, 0))
        with pytest.raises(ReproError, match="deadlock"):
            sched.run()

    def test_duplicate_task_rejected(self):
        sched = EventScheduler()
        sched.add_task((0, 0), 1.0)
        with pytest.raises(ReproError):
            sched.add_task((0, 0), 2.0)

    def test_edge_to_unknown_task_rejected(self):
        sched = EventScheduler()
        sched.add_task((0, 0), 1.0)
        with pytest.raises(ReproError):
            sched.add_edge((0, 0), (9, 9))

    def test_negative_times_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ReproError):
            sched.add_task((0, 0), -1.0)
        sched.add_task((1, 0), 1.0)
        sched.add_task((2, 0), 1.0)
        with pytest.raises(ReproError):
            sched.add_edge((1, 0), (2, 0), delay=-0.1)
