"""Block decode cache: correctness under mutation, charge policy, LRU.

The cache must be invisible except for wall-clock: every query answer
and (by default) every simulated cost must be identical to a cacheless
run, across INSERT (append), transaction rollback, TRUNCATE, VACUUM and
ALTER TABLE — the operations that change what bytes a scan should see.
"""

import pytest

from repro import Engine

ORIENTATION = {"ao": "row", "co": "column", "parquet": "parquet"}


def make_session(fmt="co", rows=200, **engine_kw):
    engine_kw.setdefault("num_segment_hosts", 2)
    engine_kw.setdefault("segments_per_host", 1)
    engine = Engine(**engine_kw)
    session = engine.connect()
    session.execute(
        f"CREATE TABLE t (a INT NOT NULL, b INT, s TEXT) "
        f"WITH (appendonly=true, orientation={ORIENTATION[fmt]}) "
        f"DISTRIBUTED BY (a)"
    )
    session.load_rows("t", base_rows(rows))
    return session


def base_rows(n, start=0, tag="v"):
    return [
        (i, None if i % 5 == 0 else i * 3, f"{tag}{i % 7}")
        for i in range(start, start + n)
    ]


def all_rows(session):
    return session.query("SELECT a, b, s FROM t ORDER BY a")


def expected(rows):
    return sorted(rows)


@pytest.mark.parametrize("fmt", ["ao", "co", "parquet"])
class TestInvalidation:
    def test_insert_then_select_sees_appended_rows(self, fmt):
        session = make_session(fmt)
        assert all_rows(session) == expected(base_rows(200))  # warm cache
        cache = session.engine.block_cache
        assert len(cache) > 0 and cache.misses > 0
        session.load_rows("t", base_rows(50, start=200))
        # Appends keep the cached prefix valid: the re-scan serves the
        # old blocks from cache and decodes only the appended tail.
        assert all_rows(session) == expected(base_rows(250))
        assert cache.hits > 0

    def test_rollback_then_select(self, fmt):
        session = make_session(fmt)
        before = all_rows(session)  # warm cache
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (9001, 1, 'ghost')")
        session.execute("ROLLBACK")
        assert all_rows(session) == before
        # Re-insert *different* data over the same file offsets the
        # aborted append used — stale cached blocks must not survive.
        session.load_rows("t", base_rows(50, start=300, tag="w"))
        assert all_rows(session) == expected(
            base_rows(200) + base_rows(50, start=300, tag="w")
        )

    def test_truncate_then_select(self, fmt):
        session = make_session(fmt)
        all_rows(session)  # warm cache
        session.execute("TRUNCATE TABLE t")
        assert all_rows(session) == []
        session.load_rows("t", base_rows(30, tag="x"))
        assert all_rows(session) == expected(base_rows(30, tag="x"))

    def test_vacuum_then_select(self, fmt):
        session = make_session(fmt)
        before = all_rows(session)
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (9001, 1, 'ghost')")
        session.execute("ROLLBACK")
        session.execute("VACUUM t")  # physically truncates the garbage
        assert all_rows(session) == before
        session.load_rows("t", base_rows(10, start=500))
        assert all_rows(session) == expected(
            base_rows(200) + base_rows(10, start=500)
        )

    def test_alter_storage_then_select(self, fmt):
        session = make_session(fmt)
        before = all_rows(session)
        target = "column" if fmt != "co" else "row"
        session.execute(f"ALTER TABLE t SET WITH (orientation={target})")
        assert all_rows(session) == before


class TestChargePolicy:
    def _timed_runs(self, **engine_kw):
        session = make_session("co", **engine_kw)
        cold = session.execute("SELECT sum(b), count(*) FROM t WHERE a % 3 = 0")
        warm = session.execute("SELECT sum(b), count(*) FROM t WHERE a % 3 = 0")
        assert warm.rows == cold.rows
        return cold.cost.seconds, warm.cost.seconds, session

    def test_default_hits_replay_simulated_costs(self):
        cold, warm, session = self._timed_runs()
        assert session.engine.block_cache.hits > 0
        # Figures must not move: a warm run costs exactly a cold run.
        assert warm == cold

    def test_cache_simulated_costs_off_makes_hits_free(self):
        cold, warm, _ = self._timed_runs(cache_simulated_costs=False)
        assert warm < cold

    def test_cacheless_engine_matches_default_costs(self):
        cold, warm, _ = self._timed_runs()
        cold_off, warm_off, session = self._timed_runs(block_cache_bytes=0)
        assert session.engine.block_cache is None
        assert cold_off == cold == warm == warm_off


class TestCacheMechanics:
    def test_hit_counters(self):
        session = make_session("co")
        cache = session.engine.block_cache
        all_rows(session)
        misses = cache.misses
        assert misses > 0 and cache.hits == 0
        all_rows(session)
        assert cache.hits > 0
        assert cache.misses == misses  # fully served from cache

    def test_append_does_not_bump_write_epoch(self):
        session = make_session("co", rows=10)
        engine = session.engine
        snapshot = engine.txns.begin().statement_snapshot()
        segfile = next(iter(engine.catalog.segfiles("t", snapshot)))
        path = next(iter(segfile["paths"]))
        client = engine.segments[segfile["segment_id"]].client(engine.hdfs)
        epoch = client.write_epoch(path)
        session.load_rows("t", base_rows(10, start=100))
        assert client.write_epoch(path) == epoch
        # A physical shrink must bump it (this is what invalidates).
        client.truncate(path, 0)
        assert client.write_epoch(path) > epoch

    def test_lru_eviction_under_tiny_capacity(self):
        session = make_session("co", rows=5000, block_cache_bytes=16 << 10)
        cache = session.engine.block_cache
        all_rows(session)
        all_rows(session)
        assert cache.evictions > 0
        # Ledger invariant: tracked bytes == what the live entries hold.
        assert cache.total_bytes == sum(
            e.nbytes for e in cache._entries.values()
        )
        # Eviction actually bounds residency vs an uncapped cache.
        big = make_session("co", rows=5000)
        all_rows(big)
        assert cache.total_bytes < big.engine.block_cache.total_bytes
        # Still correct even while thrashing.
        assert all_rows(session) == expected(base_rows(5000))

    def test_invalid_executor_mode_rejected(self):
        with pytest.raises(Exception):
            Engine(num_segment_hosts=1, segments_per_host=1,
                   executor_mode="columnar")
