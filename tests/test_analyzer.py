"""Tests for semantic analysis: name resolution, scoping, aggregates,
views, and subquery capture."""

import pytest

from repro.catalog.schema import Column, DataType, Distribution, TableSchema
from repro.errors import SemanticError
from repro.planner import exprs as ex
from repro.planner.analyzer import Analyzer, RelationInfo
from repro.planner.logical import DerivedSource, TableSource
from repro.sql.parser import parse_statement


class DictCatalog:
    def __init__(self, tables=None, views=None):
        self.tables = tables or {}
        self.views = views or {}

    def resolve(self, name):
        name = name.lower()
        if name in self.views:
            return RelationInfo(kind="view", view_query=self.views[name])
        if name in self.tables:
            return RelationInfo(kind="table", schema=self.tables[name])
        raise SemanticError(f"relation {name!r} does not exist")


def table(name, *cols):
    return TableSchema(
        name=name,
        columns=[Column(c, DataType.parse("INT")) for c in cols],
        distribution=Distribution.hash(cols[0]),
    )


@pytest.fixture
def catalog():
    return DictCatalog(
        tables={
            "t": table("t", "a", "b", "c"),
            "s": table("s", "x", "y"),
            "u": table("u", "a", "z"),
        }
    )


def analyze(catalog, sql):
    return Analyzer(catalog).analyze(parse_statement(sql))


class TestResolution:
    def test_bare_column(self, catalog):
        query = analyze(catalog, "SELECT a FROM t")
        var = query.targets[0][0]
        assert isinstance(var, ex.BVar)
        assert (var.rel, var.col) == (0, 0)

    def test_qualified_column(self, catalog):
        query = analyze(catalog, "SELECT t.b FROM t, s")
        assert query.targets[0][0].col == 1

    def test_alias_qualification(self, catalog):
        query = analyze(catalog, "SELECT n2.a FROM t n1, t n2")
        assert query.targets[0][0].rel == 1

    def test_ambiguous_column(self, catalog):
        with pytest.raises(SemanticError, match="ambiguous"):
            analyze(catalog, "SELECT a FROM t, u")

    def test_unknown_column(self, catalog):
        with pytest.raises(SemanticError, match="does not exist"):
            analyze(catalog, "SELECT nope FROM t")

    def test_unknown_table(self, catalog):
        with pytest.raises(SemanticError):
            analyze(catalog, "SELECT 1 FROM nowhere")

    def test_unknown_column_in_named_table(self, catalog):
        with pytest.raises(SemanticError, match="not found in relation"):
            analyze(catalog, "SELECT t.nope FROM t")

    def test_star_expansion(self, catalog):
        query = analyze(catalog, "SELECT * FROM t, s")
        assert query.output_names == ["a", "b", "c", "x", "y"]

    def test_qualified_star(self, catalog):
        query = analyze(catalog, "SELECT s.* FROM t, s")
        assert query.output_names == ["x", "y"]

    def test_output_names_from_aliases(self, catalog):
        query = analyze(catalog, "SELECT a + 1 AS bump, count(*) FROM t GROUP BY a")
        assert query.output_names == ["bump", "count"]


class TestFromClause:
    def test_comma_join_quals_in_where(self, catalog):
        query = analyze(catalog, "SELECT 1 FROM t, s WHERE a = x")
        assert len(query.quals) == 1
        assert all(r.join_type == "inner" for r in query.rels)

    def test_explicit_join_condition_folded(self, catalog):
        query = analyze(catalog, "SELECT 1 FROM t JOIN s ON a = x WHERE b > 2")
        assert len(query.quals) == 2

    def test_left_join_keeps_condition(self, catalog):
        query = analyze(
            catalog, "SELECT 1 FROM t LEFT JOIN s ON a = x AND y > 0"
        )
        assert query.rels[1].join_type == "left"
        assert query.rels[1].join_cond is not None
        assert query.quals == []

    def test_derived_table(self, catalog):
        query = analyze(
            catalog, "SELECT q.total FROM (SELECT sum(a) AS total FROM t) q"
        )
        assert isinstance(query.rels[0].source, DerivedSource)
        assert query.rels[0].column_names == ["total"]

    def test_view_expansion(self, catalog):
        catalog.views["v"] = parse_statement("SELECT a, b FROM t")
        query = analyze(catalog, "SELECT v.a FROM v")
        assert isinstance(query.rels[0].source, DerivedSource)


class TestAggregates:
    def test_plain_aggregate(self, catalog):
        query = analyze(catalog, "SELECT count(*), sum(a) FROM t")
        assert query.has_aggregates

    def test_group_by_validation(self, catalog):
        with pytest.raises(SemanticError, match="GROUP BY"):
            analyze(catalog, "SELECT a, b FROM t GROUP BY a")

    def test_group_by_expression_ok(self, catalog):
        query = analyze(catalog, "SELECT a + 1, count(*) FROM t GROUP BY a + 1")
        assert len(query.group_by) == 1

    def test_group_by_ordinal(self, catalog):
        query = analyze(catalog, "SELECT a, count(*) FROM t GROUP BY 1")
        assert query.group_by[0] == query.targets[0][0]

    def test_group_by_out_of_range_ordinal(self, catalog):
        with pytest.raises(SemanticError, match="out of range"):
            analyze(catalog, "SELECT a FROM t GROUP BY 9")

    def test_order_by_alias(self, catalog):
        query = analyze(
            catalog, "SELECT sum(a) AS total FROM t GROUP BY b ORDER BY total"
        )
        assert isinstance(query.order_by[0].expr, ex.BAgg)

    def test_nested_aggregates_rejected(self, catalog):
        with pytest.raises(SemanticError, match="nested"):
            analyze(catalog, "SELECT sum(count(*)) FROM t")

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(SemanticError):
            analyze(catalog, "SELECT 1 FROM t WHERE sum(a) > 3")

    def test_having_without_aggregate_rejected(self, catalog):
        with pytest.raises(SemanticError):
            analyze(catalog, "SELECT a FROM t HAVING a > 1")

    def test_count_distinct(self, catalog):
        query = analyze(catalog, "SELECT count(distinct a) FROM t")
        agg = query.targets[0][0]
        assert isinstance(agg, ex.BAgg) and agg.distinct


class TestSubqueries:
    def test_scalar_subquery_captured(self, catalog):
        query = analyze(catalog, "SELECT 1 FROM t WHERE a > (SELECT max(x) FROM s)")
        subplans = [n for n in ex.walk(query.quals[0]) if isinstance(n, ex.BSubPlan)]
        assert subplans[0].kind == "scalar"

    def test_correlated_reference_level(self, catalog):
        query = analyze(
            catalog,
            "SELECT 1 FROM t WHERE EXISTS (SELECT * FROM s WHERE x = a)",
        )
        subplan = query.quals[0]
        assert subplan.kind == "exists"
        inner_qual = subplan.query.quals[0]
        levels = {v.level for v in ex.walk(inner_qual) if isinstance(v, ex.BVar)}
        assert levels == {0, 1}

    def test_not_exists_negation_folded(self, catalog):
        query = analyze(
            catalog, "SELECT 1 FROM t WHERE NOT EXISTS (SELECT * FROM s)"
        )
        assert query.quals[0].negated

    def test_in_subquery_single_column(self, catalog):
        with pytest.raises(SemanticError, match="one column"):
            analyze(catalog, "SELECT 1 FROM t WHERE a IN (SELECT x, y FROM s)")

    def test_scalar_subquery_single_column(self, catalog):
        with pytest.raises(SemanticError, match="one column"):
            analyze(catalog, "SELECT 1 FROM t WHERE a = (SELECT x, y FROM s)")


class TestMisc:
    def test_like_pattern_must_be_literal(self, catalog):
        with pytest.raises(SemanticError, match="literal"):
            analyze(catalog, "SELECT 1 FROM t, s WHERE a LIKE b")

    def test_unknown_function(self, catalog):
        with pytest.raises(SemanticError, match="unknown function"):
            analyze(catalog, "SELECT frobnicate(a) FROM t")

    def test_between_desugars(self, catalog):
        query = analyze(catalog, "SELECT 1 FROM t WHERE a BETWEEN 1 AND 5")
        assert len(query.quals) == 2  # >= and <= conjuncts
