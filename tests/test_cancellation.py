"""Cancellation battery: ``Session.cancel`` and ``statement_timeout``
under the single-pass concurrent runner.

The load-bearing properties:

* **Clean settlement** — a cancelled statement settles as an error
  outcome (``QueryCanceled`` text) without failing the batch, whatever
  ``allow_failures`` says, and the closed-loop stream moves on to its
  next statement.
* **No orphaned slot** — cancelling a parked statement withdraws it
  from admission before it ever takes a slot; cancelling a running one
  releases its slot; either way the queue drains to empty.
* **No leaked charged iterator** — every charged scan a cancelled
  query opened is closed by the ABORT broadcast
  (``charged_scans_opened == charged_scans_closed``).
* **Survivors unperturbed** — statements the cancel does not touch
  return rows bit-identical to an uncancelled run.
"""

import pytest

from repro.engine import Engine
from repro.executor.concurrent import ConcurrentRunner
from repro.sanitize import DetSan
from repro.util import DeterministicRng


# --------------------------------------------------------------- fixtures
def build_engine(seed: int = 11) -> Engine:
    engine = Engine(num_segment_hosts=2, segments_per_host=2, seed=seed)
    session = engine.connect()
    session.execute(
        "CREATE TABLE conc (a INT, b INT, c VARCHAR(8)) DISTRIBUTED BY (a)"
    )
    rows = [(i, (i * 7) % 100, f"v{i % 13}") for i in range(300)]
    session.load_rows("conc", rows)
    session.execute("ANALYZE")
    return engine


def make_streams(seed: int, count: int, statements: int = 3):
    pool = [
        "SELECT c, count(*), sum(b) FROM conc GROUP BY c ORDER BY c",
        "SELECT a, b FROM conc WHERE b < 40 ORDER BY a",
        "SELECT count(*) FROM conc WHERE a % 3 = 0",
    ]
    streams = []
    for stream_id in range(count):
        rng = DeterministicRng(seed, "cancel-test", f"stream{stream_id}")
        streams.append(
            [pool[rng.randrange(len(pool))] for _ in range(statements)]
        )
    return streams


def by_key(batch):
    return {(o.stream, o.index): o for o in batch.outcomes}


def scan_counters(engine):
    return (
        engine.metrics.counter("charged_scans_opened").value,
        engine.metrics.counter("charged_scans_closed").value,
    )


# ----------------------------------------------------------- mid-scan cancel
class TestMidScanCancel:
    def test_cancel_mid_scan_settles_without_failing_batch(self):
        streams = make_streams(seed=3, count=2)
        reference = ConcurrentRunner(build_engine(), streams).run()
        ref = by_key(reference)
        target = ref[(0, 0)]
        assert target.finish > target.admit

        engine = build_engine()
        runner = ConcurrentRunner(
            engine,
            streams,
            cancel_at={(0, 0): (target.admit + target.finish) / 2},
        )
        # allow_failures is False: a cancel must still not raise.
        batch = runner.run()

        cancelled = by_key(batch)[(0, 0)]
        assert not cancelled.ok
        assert "cancelled by request" in cancelled.error
        assert cancelled.rows is None
        assert engine.metrics.counter("queries_cancelled").value == 1
        # Everyone else settles with uncancelled rows — including the
        # cancelled stream's own next statement (closed loop).
        for key, outcome in by_key(batch).items():
            if key == (0, 0):
                continue
            assert outcome.ok, f"{key}: {outcome.error}"
            assert outcome.rows == ref[key].rows
        # The ABORT broadcast closed every charged scan the cancelled
        # attempt had opened.
        opened, closed = scan_counters(engine)
        assert opened == closed
        # And the cancelled query's slot was released: nothing parked,
        # nothing still marked running.
        assert runner.manager.depth("pg_default") == 0
        assert runner.manager.running("pg_default") == 0

    def test_cancel_unknown_id_is_a_noop(self):
        engine = build_engine()
        session = engine.connect()
        session.cancel(987654)  # never raises, nothing to cancel
        assert session.query("SELECT count(*) FROM conc")[0][0] == 300


# ------------------------------------------------------- cancel while queued
class TestCancelWhileQueued:
    def test_parked_statement_withdraws_without_taking_a_slot(self):
        streams = make_streams(seed=7, count=3, statements=2)

        def narrowed_engine():
            engine = build_engine()
            engine.connect().execute(
                "CREATE RESOURCE QUEUE narrow WITH (active_statements=1)"
            )
            return engine

        queues = {0: "narrow", 1: "narrow", 2: "narrow"}
        reference = ConcurrentRunner(
            narrowed_engine(), streams, queues=queues
        ).run()
        ref = by_key(reference)
        parked = ref[(1, 0)]
        assert parked.queue_wait > 0, "head of stream 1 must have parked"

        engine = narrowed_engine()
        runner = ConcurrentRunner(
            engine,
            streams,
            queues=queues,
            # Fires strictly inside (submit, admit): still parked.
            cancel_at={(1, 0): parked.admit / 2},
        )
        batch = runner.run()

        cancelled = by_key(batch)[(1, 0)]
        assert not cancelled.ok
        assert "cancelled by request" in cancelled.error
        # Withdrawn before admission: never admitted, no wait charged.
        assert cancelled.admit == 0.0
        assert cancelled.queue_wait == 0.0
        assert engine.metrics.counter("queries_cancelled").value == 1
        # The stream's next statement still ran, and every survivor
        # returns the reference rows.
        for key, outcome in by_key(batch).items():
            if key == (1, 0):
                continue
            assert outcome.ok, f"{key}: {outcome.error}"
            assert outcome.rows == ref[key].rows
        # The withdrawn waiter left no residue in the queue.
        assert runner.manager.depth("narrow") == 0
        assert runner.manager.running("narrow") == 0


# --------------------------------------------------------- statement_timeout
class TestStatementTimeout:
    def test_timeout_expires_mid_statement(self):
        scan = "SELECT c, count(*), sum(b) FROM conc GROUP BY c ORDER BY c"
        reference = ConcurrentRunner(build_engine(), [[scan]]).run()
        seconds = reference.outcomes[0].serial_seconds
        assert seconds > 0
        timeout = seconds / 2

        engine = build_engine()
        batch = ConcurrentRunner(
            engine,
            [[f"SET statement_timeout = {timeout}", scan], [scan]],
        ).run()
        outcomes = by_key(batch)

        timed_out = outcomes[(0, 1)]
        assert not timed_out.ok
        assert f"statement_timeout of {timeout}s exceeded" in timed_out.error
        assert engine.metrics.counter("queries_cancelled").value == 1
        # The other session carries no timeout and is untouched.
        assert outcomes[(1, 0)].ok
        assert outcomes[(1, 0)].rows == reference.outcomes[0].rows
        opened, closed = scan_counters(engine)
        assert opened == closed

    def test_generous_timeout_does_not_fire(self):
        scan = "SELECT count(*) FROM conc WHERE a % 3 = 0"
        batch = ConcurrentRunner(
            build_engine(),
            [[f"SET statement_timeout = 3600", scan]],
        ).run()
        assert all(o.ok for o in batch.outcomes)

    def test_timeout_rejects_negative_value(self):
        session = build_engine().connect()
        with pytest.raises(Exception):
            session.execute("SET statement_timeout = -1")


# -------------------------------------------------------- DetSan cancel sweep
class TestDetSanCancelSweep:
    def test_cancel_sweep_no_orphans_no_leaks_no_violations(self):
        streams = make_streams(seed=13, count=3)
        reference = ConcurrentRunner(build_engine(), streams).run()
        ref = by_key(reference)
        # Cancel two mid-flight targets picked from real windows.
        targets = [(0, 0), (2, 1)]
        cancel_at = {
            key: (ref[key].admit + ref[key].finish) / 2 for key in targets
        }

        engine = build_engine()
        sanitizer = DetSan()
        runner = ConcurrentRunner(
            engine, streams, detsan=sanitizer, cancel_at=cancel_at
        )
        batch = runner.run()  # raises IsolationViolation on any leak

        cancelled = [o for o in batch.outcomes if not o.ok]
        assert cancelled, "at least one cancel must land mid-flight"
        for outcome in cancelled:
            assert (outcome.stream, outcome.index) in cancel_at
            assert "cancelled by request" in outcome.error
        for outcome in batch.outcomes:
            if outcome.ok:
                assert outcome.rows == ref[(outcome.stream, outcome.index)].rows
        # Cancellation paths stay inside their query's sanitizer scope.
        summary = sanitizer.summary()
        assert summary["scoped_mutations"] == summary["total_mutations"]
        # No leaked charged iterator, no orphaned queue slot.
        opened, closed = scan_counters(engine)
        assert opened == closed
        assert runner.manager.depth("pg_default") == 0
        assert runner.manager.running("pg_default") == 0
        assert engine.metrics.counter("queries_cancelled").value == len(
            cancelled
        )
