"""Observability: tracing/metrics must be passive and faithful.

The two contracts under test:

* **Bit-identity** — with ``SET trace = on``, every TPC-H query returns
  the same rows and the same ``cost.seconds`` to the last bit as the
  untraced twin (recording reads the simulated clock, never spends it).
* **Faithful decomposition** — the trace's per-(slice, segment) root
  spans are exactly the event scheduler's task windows: the latest root
  span end *equals* ``cost.seconds``, and per-slice windows match the
  ``QueryResult.slices`` timings the scheduler reported.

Plus the units around them: the metrics registry, per-query snapshot
diffs (block-cache hit/miss deltas ride ``QueryResult.metrics``), RPC
protocol closure checking, Chrome trace_event export, and the
``python -m repro.obs`` CLI.
"""

import json

import pytest

from repro.engine import Engine
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    QueryTrace,
    TraceCollector,
    render_summary,
    rpc_closure_violations,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.trace import RpcEvent
from repro.tpch import QUERIES, load_tpch

SCALE = 0.001
TRACED_QUERIES = (1, 3, 6)


def _engine(**kw):
    kw.setdefault("num_segment_hosts", 2)
    kw.setdefault("segments_per_host", 2)
    kw.setdefault("seed", 7)
    return Engine(**kw)


@pytest.fixture(scope="module")
def traced_runs():
    """Per query: (untraced result, traced result, trace)."""
    runs = {}
    for number in TRACED_QUERIES:
        plain_engine = _engine()
        plain = plain_engine.connect()
        load_tpch(plain, scale=SCALE)
        traced_engine = _engine()
        traced = traced_engine.connect()
        load_tpch(traced, scale=SCALE)
        traced.execute("SET trace = on")
        for stmt in QUERIES[number]:
            r_plain = plain.execute(stmt)
            r_traced = traced.execute(stmt)
        runs[number] = (r_plain, r_traced, r_traced.trace)
    return runs


# ---------------------------------------------------------------- bit-identity
class TestBitIdentity:
    @pytest.mark.parametrize("number", TRACED_QUERIES)
    def test_rows_and_cost_identical_with_trace_on(self, traced_runs, number):
        plain, traced, _ = traced_runs[number]
        assert traced.rows == plain.rows
        assert traced.cost.seconds == plain.cost.seconds  # bit-identical
        assert traced.cost.disk_read_bytes == plain.cost.disk_read_bytes
        assert traced.cost.net_bytes == plain.cost.net_bytes

    @pytest.mark.parametrize("number", TRACED_QUERIES)
    def test_trace_only_on_traced_session(self, traced_runs, number):
        plain, traced, trace = traced_runs[number]
        assert plain.trace is None
        assert trace is not None and trace is traced.trace


# ------------------------------------------------------- makespan decomposition
class TestMakespanDecomposition:
    @pytest.mark.parametrize("number", TRACED_QUERIES)
    def test_latest_root_span_end_equals_cost_seconds(
        self, traced_runs, number
    ):
        _, traced, trace = traced_runs[number]
        roots = trace.root_spans()
        assert roots, "no task spans recorded"
        assert max(span.end for span in roots) == traced.cost.seconds

    @pytest.mark.parametrize("number", TRACED_QUERIES)
    def test_root_spans_match_scheduler_windows(self, traced_runs, number):
        """Each final-plan root span carries the scheduler's own start/
        finish for its (slice, segment); window length must match."""
        _, traced, trace = traced_runs[number]
        for span in trace.root_spans():
            sched = span.attrs["sched_finish"] - span.attrs["sched_start"]
            assert span.duration == pytest.approx(sched, abs=1e-12)

    @pytest.mark.parametrize("number", TRACED_QUERIES)
    def test_slice_finish_times_consistent_with_result(
        self, traced_runs, number
    ):
        """The last assembled plan's windows agree with QueryResult.slices
        (the scheduler timings EXPLAIN ANALYZE prints)."""
        _, traced, trace = traced_runs[number]
        finishes = {}
        for span in trace.root_spans():
            key = span.slice_id
            finishes[key] = max(
                finishes.get(key, 0.0), span.attrs["sched_finish"]
            )
        for slice_id, timing in traced.slices.items():
            assert finishes[slice_id] == pytest.approx(timing.finish)

    @pytest.mark.parametrize("number", TRACED_QUERIES)
    def test_operator_spans_nest_inside_their_task_window(
        self, traced_runs, number
    ):
        _, _, trace = traced_runs[number]
        windows = {
            (s.slice_id, s.segment): (s.start, s.end)
            for s in trace.root_spans()
        }
        op_spans = [s for s in trace.spans if s.cat in ("exec", "storage")]
        assert op_spans, "no operator spans recorded"
        for span in op_spans:
            start, end = windows[(span.slice_id, span.segment)]
            assert span.start >= start - 1e-12
            assert span.end <= end + 1e-12

    def test_trace_totals_match_result(self, traced_runs):
        _, traced, trace = traced_runs[3]
        assert trace.total_seconds == traced.cost.seconds
        assert trace.makespan == traced.makespan
        assert trace.overhead == traced.overhead_seconds
        assert trace.retries == traced.retries == 0


# -------------------------------------------------------------- span content
class TestSpanContent:
    def test_q3_has_expected_operator_spans(self, traced_runs):
        _, _, trace = traced_runs[3]
        names = {span.name for span in trace.spans}
        assert any(n.startswith("SeqScan[lineitem]") for n in names)
        assert any(n.startswith("HashJoin") for n in names)
        assert any(n.startswith("Motion[") for n in names)
        assert any(n.startswith("scan:") for n in names)
        assert "parse/plan/dispatch" in names

    def test_storage_spans_annotate_cache_and_bytes(self, traced_runs):
        _, _, trace = traced_runs[1]
        storage = [s for s in trace.spans if s.cat == "storage"]
        assert storage
        assert sum(s.attrs["read_bytes"] for s in storage) > 0
        # load_tpch's ANALYZE pass warmed the block cache, so the query
        # itself sees hits; either way the lanes looked the cache up.
        lookups = sum(
            s.attrs["cache_hits"] + s.attrs["cache_misses"] for s in storage
        )
        assert lookups > 0

    def test_scan_stats_aggregate_per_table(self, traced_runs):
        _, _, trace = traced_runs[3]
        stats = trace.scan_stats()
        assert {"lineitem", "orders", "customer"} <= set(stats)
        assert stats["lineitem"]["read_bytes"] > 0
        assert stats["lineitem"]["lanes"] > 0

    def test_motion_streams_recorded_as_instants(self, traced_runs):
        _, _, trace = traced_runs[3]
        motions = [i for i in trace.instants if i.cat == "motion"]
        assert motions
        assert sum(i.attrs["bytes"] for i in motions) > 0


# ------------------------------------------------------------ metrics registry
class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c", node="seg0").inc()
        reg.counter("c", node="seg0").inc(4)
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(1.0)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert snap["c{node=seg0}"] == 5
        assert snap["g"] == 2.5
        assert snap["h.count"] == 2
        assert snap["h.total"] == 4.0
        assert snap["h.min"] == 1.0 and snap["h.max"] == 3.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_diff_keeps_nonzero_deltas(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.counter("b").inc(1)
        before = reg.snapshot()
        reg.counter("a").inc(3)
        delta = reg.snapshot().diff(before)
        assert delta.as_dict() == {"a": 3}

    def test_total_sums_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("n", node="seg0").inc(1)
        reg.counter("n", node="seg1").inc(2)
        reg.counter("nx").inc(100)  # prefix, not a label series of n
        snap = reg.snapshot()
        assert snap.total("n") == 3
        assert snap.by_label("n") == {"node=seg0": 1, "node=seg1": 2}

    def test_empty_snapshot(self):
        snap = MetricsSnapshot()
        assert snap.total("anything") == 0
        assert list(snap) == []


# -------------------------------------------------------- per-query attribution
class TestQueryMetrics:
    def test_cache_delta_cold_then_warm(self):
        """Satellite 1: per-query block-cache hit/miss deltas ride
        QueryResult.metrics — cold run all misses, warm run hits.

        Loads lineitem by hand (load_tpch's ANALYZE pass would warm the
        cache and hide the cold run)."""
        from repro.tpch import create_table_sql, generate

        engine = _engine()
        session = engine.connect()
        data = generate(SCALE, seed=7)
        session.execute(create_table_sql("lineitem"))
        session.load_rows("lineitem", data.lineitem)
        stmt = QUERIES[6][0]
        cold = session.execute(stmt)
        warm = session.execute(stmt)
        assert cold.metrics.total("cache_misses") > 0
        assert cold.metrics.total("cache_hits") == 0
        assert warm.metrics.total("cache_hits") > 0
        assert warm.metrics.total("cache_misses") == 0

    def test_bytes_read_labeled_by_format_and_node(self):
        engine = _engine()
        session = engine.connect()
        load_tpch(session, scale=SCALE)
        result = session.execute(QUERIES[6][0])
        by_node = result.metrics.by_label("bytes_read")
        assert by_node, "no bytes_read series"
        assert all("format=" in k and "node=" in k for k in by_node)
        assert result.metrics.total("bytes_read") > 0

    def test_dispatch_and_motion_metrics(self):
        engine = _engine()
        session = engine.connect()
        load_tpch(session, scale=SCALE)
        result = session.execute(QUERIES[3][0])
        assert result.metrics.total("rpc_messages") > 0
        assert result.metrics.total("motion_streams") > 0
        assert result.metrics.total("motion_bytes") > 0
        assert result.metrics.total("workers_spawned") == (
            engine.num_segments + 1
        )
        by_mode = result.metrics.by_label("datagrams_delivered")
        assert list(by_mode) == ["mode=udp"]

    def test_insert_counts_wal_and_written_bytes(self):
        engine = _engine()
        session = engine.connect()
        session.execute("CREATE TABLE m (a INT) DISTRIBUTED BY (a)")
        result = session.execute("INSERT INTO m VALUES (1), (2), (3)")
        assert result.metrics.total("wal_records") > 0
        assert result.metrics.total("bytes_written") > 0
        assert result.metrics.total("statements") == 1

    def test_metrics_are_per_statement_deltas(self):
        engine = _engine()
        session = engine.connect()
        load_tpch(session, scale=SCALE)
        first = session.execute(QUERIES[6][0])
        second = session.execute(QUERIES[6][0])
        # Engine-global counters grow; per-result snapshots stay deltas.
        assert second.metrics.total("statements") == 1
        assert engine.metrics.snapshot().total("statements") > 2


# --------------------------------------------------------------- rpc closure
def _event(attempt, seq, kind, slice_id, segment, sender="master"):
    return RpcEvent(
        attempt=attempt, seq=seq, kind=kind, slice_id=slice_id,
        segment=segment, sender=sender, dest=f"seg{segment}",
    )


class TestRpcClosure:
    def test_clean_query_has_no_violations(self, traced_runs):
        for number in TRACED_QUERIES:
            _, _, trace = traced_runs[number]
            assert rpc_closure_violations(trace) == []
            kinds = {e.kind for e in trace.rpc_events}
            assert {"dispatch", "ack", "complete"} <= kinds

    def test_unclosed_dispatch_is_flagged(self):
        trace = QueryTrace()
        trace.attempts = 1
        trace.rpc_events = [_event(1, 0, "dispatch", 0, 1)]
        violations = rpc_closure_violations(trace)
        assert len(violations) == 1
        assert "never closed" in violations[0]

    def test_complete_without_dispatch_is_flagged(self):
        trace = QueryTrace()
        trace.attempts = 1
        trace.rpc_events = [_event(1, 0, "complete", 0, 1, sender="seg1")]
        assert any(
            "without an open DISPATCH" in v
            for v in rpc_closure_violations(trace)
        )

    def test_complete_from_killed_segment_is_flagged(self):
        trace = QueryTrace()
        trace.attempts = 1
        trace.rpc_events = [
            _event(1, 0, "dispatch", 0, 1),
            RpcEvent(attempt=1, seq=1, kind="drop", slice_id=None,
                     segment=1, sender="seg1", dest=""),
            _event(1, 2, "complete", 0, 1, sender="seg1"),
        ]
        assert any(
            "killed segment" in v for v in rpc_closure_violations(trace)
        )

    def test_attempt_aborted_closes_and_is_idempotent(self):
        trace = QueryTrace()
        trace.begin_attempt()
        trace.rpc_events = [
            _event(1, 0, "dispatch", 0, 1),
            _event(1, 1, "dispatch", 1, 2),
            _event(1, 2, "complete", 1, 2, sender="seg2"),
        ]
        trace.attempt_aborted()
        trace.attempt_aborted()  # second call must find nothing open
        closes = [e for e in trace.rpc_events if e.kind == "abort-close"]
        assert [(e.slice_id, e.segment) for e in closes] == [(0, 1)]
        assert rpc_closure_violations(trace) == []


# -------------------------------------------------------------------- export
class TestChromeExport:
    def test_document_valid_with_a_track_per_segment(self, traced_runs):
        _, _, trace = traced_runs[3]
        doc = to_chrome_trace(trace)
        assert validate_chrome_trace(doc) is None
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "master" in names
        for segment in range(trace.num_segments):
            assert f"seg{segment}" in names

    def test_span_timestamps_microseconds(self, traced_runs):
        _, traced, trace = traced_runs[1]
        doc = to_chrome_trace(trace)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs
        assert max(e["ts"] + e["dur"] for e in xs) == pytest.approx(
            traced.cost.seconds * 1e6
        )
        assert doc["otherData"]["total_s"] == traced.cost.seconds

    def test_document_is_json_serializable(self, traced_runs):
        _, _, trace = traced_runs[6]
        parsed = json.loads(json.dumps(to_chrome_trace(trace)))
        assert validate_chrome_trace(parsed) is None

    def test_validator_rejects_malformed(self):
        assert validate_chrome_trace({}) is not None
        assert validate_chrome_trace({"traceEvents": []}) is not None
        assert (
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) is not None
        )


class TestRenderSummary:
    def test_summary_mentions_tracks_and_operators(self, traced_runs):
        _, _, trace = traced_runs[3]
        text = render_summary(trace)
        assert "master" in text
        assert "seg0" in text
        assert "SeqScan[lineitem]" in text
        assert "cumulative operator time" in text

    def test_summary_reports_total(self, traced_runs):
        _, traced, trace = traced_runs[1]
        assert f"total={traced.cost.seconds:.6f}s" in render_summary(trace)


# ----------------------------------------------------------------- session API
class TestSessionApi:
    def test_set_trace_guc_toggles(self):
        engine = _engine()
        session = engine.connect()
        session.execute("CREATE TABLE g (a INT) DISTRIBUTED BY (a)")
        session.execute("INSERT INTO g VALUES (1)")
        off = session.execute("SELECT * FROM g")
        assert off.trace is None and session.tracer.queries == []
        session.execute("SET trace = on")
        on = session.execute("SELECT * FROM g")
        assert on.trace is not None
        assert session.tracer.last is on.trace
        session.execute("SET trace = off")
        off_again = session.execute("SELECT * FROM g")
        assert off_again.trace is None

    def test_collector_keeps_one_trace_per_statement(self):
        engine = _engine()
        session = engine.connect()
        session.execute("CREATE TABLE g2 (a INT) DISTRIBUTED BY (a)")
        session.execute("SET trace = on")
        session.execute("SELECT * FROM g2")
        session.execute("SELECT count(*) FROM g2")
        assert len(session.tracer.queries) == 2
        assert isinstance(session.tracer, TraceCollector)


# ------------------------------------------------------------------------ CLI
class TestCli:
    def test_main_exports_valid_trace(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        out = tmp_path / "trace.json"
        code = main(
            ["--query", "6", "--scale", "0.0005", "--export", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "tpch-q6" in captured
        assert "metrics (this statement):" in captured
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) is None
