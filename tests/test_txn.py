"""Tests for MVCC, locking, deadlock detection, WAL, swim lanes, and
truncate-on-abort (the full Section 5 story)."""

import pytest

from repro.errors import DeadlockDetected, LockTimeout, TransactionAborted
from repro.hdfs import Hdfs
from repro.txn import (
    IsolationLevel,
    LockManager,
    LockMode,
    SegfileAllocator,
    TransactionManager,
    WriteAheadLog,
    XidManager,
)
from repro.txn.manager import AppendedFile


class TestMvcc:
    def test_own_writes_visible(self):
        xids = XidManager()
        xid = xids.begin()
        snapshot = xids.snapshot(xid)
        assert snapshot.sees_xid(xid)

    def test_uncommitted_foreign_invisible(self):
        xids = XidManager()
        writer = xids.begin()
        reader = xids.begin()
        snapshot = xids.snapshot(reader)
        assert not snapshot.sees_xid(writer)

    def test_committed_before_snapshot_visible(self):
        xids = XidManager()
        writer = xids.begin()
        xids.commit(writer)
        reader = xids.begin()
        assert xids.snapshot(reader).sees_xid(writer)

    def test_committed_after_snapshot_invisible(self):
        xids = XidManager()
        writer = xids.begin()
        reader = xids.begin()
        snapshot = xids.snapshot(reader)  # taken while writer active
        xids.commit(writer)
        assert not snapshot.sees_xid(writer)

    def test_aborted_never_visible(self):
        xids = XidManager()
        writer = xids.begin()
        xids.abort(writer)
        reader = xids.begin()
        assert not xids.snapshot(reader).sees_xid(writer)

    def test_row_visibility_with_delete(self):
        xids = XidManager()
        inserter = xids.begin()
        xids.commit(inserter)
        deleter = xids.begin()
        reader = xids.begin()
        snapshot_before = xids.snapshot(reader)
        assert snapshot_before.row_visible(inserter, deleter)  # delete pending
        xids.commit(deleter)
        snapshot_after = xids.snapshot(xids.begin())
        assert not snapshot_after.row_visible(inserter, deleter)


class TestIsolationLevels:
    def test_parse(self):
        assert IsolationLevel.parse("read committed") is IsolationLevel.READ_COMMITTED
        assert IsolationLevel.parse("READ UNCOMMITTED") is IsolationLevel.READ_COMMITTED
        assert IsolationLevel.parse("serializable") is IsolationLevel.SERIALIZABLE
        assert IsolationLevel.parse("repeatable read") is IsolationLevel.SERIALIZABLE

    def test_read_committed_sees_new_commits(self):
        manager = TransactionManager()
        txn = manager.begin(IsolationLevel.READ_COMMITTED)
        snapshot1 = txn.statement_snapshot()
        other = manager.begin()
        manager.commit(other)
        snapshot2 = txn.statement_snapshot()
        assert not snapshot1.sees_xid(other.xid)
        assert snapshot2.sees_xid(other.xid)

    def test_serializable_keeps_first_snapshot(self):
        manager = TransactionManager()
        txn = manager.begin(IsolationLevel.SERIALIZABLE)
        txn.statement_snapshot()
        other = manager.begin()
        manager.commit(other)
        snapshot2 = txn.statement_snapshot()
        assert not snapshot2.sees_xid(other.xid)


class TestLocks:
    def test_shared_locks_compatible(self):
        locks = LockManager()
        assert locks.acquire(1, "rel:t", LockMode.ACCESS_SHARE)
        assert locks.acquire(2, "rel:t", LockMode.ACCESS_SHARE)

    def test_exclusive_blocks_share(self):
        locks = LockManager()
        assert locks.acquire(1, "rel:t", LockMode.ACCESS_EXCLUSIVE)
        assert not locks.acquire(2, "rel:t", LockMode.ACCESS_SHARE)

    def test_nowait_raises(self):
        locks = LockManager()
        locks.acquire(1, "rel:t", LockMode.ACCESS_EXCLUSIVE)
        with pytest.raises(LockTimeout):
            locks.acquire(2, "rel:t", LockMode.ACCESS_SHARE, wait=False)

    def test_release_grants_waiters(self):
        locks = LockManager()
        locks.acquire(1, "rel:t", LockMode.ACCESS_EXCLUSIVE)
        assert not locks.acquire(2, "rel:t", LockMode.ACCESS_SHARE)
        granted = locks.release_all(1)
        assert (2, "rel:t", LockMode.ACCESS_SHARE) in granted

    def test_reentrant_same_xid(self):
        locks = LockManager()
        assert locks.acquire(1, "rel:t", LockMode.ACCESS_EXCLUSIVE)
        assert locks.acquire(1, "rel:t", LockMode.ACCESS_SHARE)

    def test_row_exclusive_self_compatible(self):
        """Two concurrent inserters don't block each other (swim lanes)."""
        locks = LockManager()
        assert locks.acquire(1, "rel:t", LockMode.ROW_EXCLUSIVE)
        assert locks.acquire(2, "rel:t", LockMode.ROW_EXCLUSIVE)

    def test_deadlock_detected(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.ACCESS_EXCLUSIVE)
        locks.acquire(2, "b", LockMode.ACCESS_EXCLUSIVE)
        assert not locks.acquire(1, "b", LockMode.ACCESS_EXCLUSIVE)  # 1 waits
        with pytest.raises(DeadlockDetected):
            locks.acquire(2, "a", LockMode.ACCESS_EXCLUSIVE)  # cycle

    def test_three_way_deadlock(self):
        locks = LockManager()
        for xid, key in ((1, "a"), (2, "b"), (3, "c")):
            locks.acquire(xid, key, LockMode.ACCESS_EXCLUSIVE)
        assert not locks.acquire(1, "b", LockMode.ACCESS_EXCLUSIVE)
        assert not locks.acquire(2, "c", LockMode.ACCESS_EXCLUSIVE)
        with pytest.raises(DeadlockDetected):
            locks.acquire(3, "a", LockMode.ACCESS_EXCLUSIVE)

    def test_no_false_deadlock(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.ACCESS_EXCLUSIVE)
        assert not locks.acquire(2, "a", LockMode.ACCESS_EXCLUSIVE)
        assert not locks.acquire(3, "a", LockMode.ACCESS_EXCLUSIVE)  # queue, no cycle


class TestWal:
    def test_append_and_replay_order(self):
        wal = WriteAheadLog()
        wal.append(1, "begin")
        wal.append(1, "change", table="pg_class", op="insert", row={"name": "t"})
        wal.append(1, "commit")
        records = wal.records_from(0)
        assert [r.kind for r in records] == ["begin", "change", "commit"]
        assert records[0].lsn == 1

    def test_records_from_offset(self):
        wal = WriteAheadLog()
        for i in range(5):
            wal.append(i, "begin")
        assert len(wal.records_from(3)) == 2

    def test_subscriber_push(self):
        wal = WriteAheadLog()
        seen = []
        wal.subscribe(seen.append)
        wal.append(1, "begin")
        assert len(seen) == 1


class TestSwimlanes:
    def test_distinct_lanes_for_concurrent_writers(self):
        lanes = SegfileAllocator()
        assert lanes.acquire("t", xid=1) == 0
        assert lanes.acquire("t", xid=2) == 1
        assert lanes.acquire("t", xid=3) == 2

    def test_same_txn_reuses_lane(self):
        lanes = SegfileAllocator()
        assert lanes.acquire("t", xid=1) == 0
        assert lanes.acquire("t", xid=1) == 0

    def test_release_enables_reuse(self):
        """Lane reuse bounds the number of small files (Section 5.4)."""
        lanes = SegfileAllocator()
        lanes.acquire("t", xid=1)
        lanes.release(1)
        assert lanes.acquire("t", xid=2) == 0

    def test_lanes_per_table(self):
        lanes = SegfileAllocator()
        assert lanes.acquire("t1", xid=1) == 0
        assert lanes.acquire("t2", xid=1) == 0


class TestTransactionManager:
    def test_commit_flow(self):
        manager = TransactionManager()
        txn = manager.begin()
        manager.commit(txn)
        assert txn.state == "committed"
        assert manager.xids.is_committed(txn.xid)
        kinds = [r.kind for r in manager.wal.records_from(0)]
        assert kinds == ["begin", "commit"]

    def test_statement_after_abort_fails(self):
        manager = TransactionManager()
        txn = manager.begin()
        manager.abort(txn)
        with pytest.raises(TransactionAborted):
            txn.statement_snapshot()

    def test_double_abort_is_noop(self):
        manager = TransactionManager()
        txn = manager.begin()
        manager.abort(txn)
        manager.abort(txn)
        assert txn.state == "aborted"

    def test_abort_truncates_appended_files(self):
        """The Section 5.3/5.4 rollback path: garbage bytes beyond the
        committed logical length are physically truncated."""
        fs = Hdfs(block_size=64, replication=1)
        fs.add_datanode("h1")
        client = fs.client("h1")
        client.write_file("/t/f0", b"committed!")
        manager = TransactionManager()
        txn = manager.begin()
        writer = client.append("/t/f0")
        writer.write(b"uncommitted garbage")
        writer.close()
        txn.record_append(
            AppendedFile(
                table="t",
                segment_id=0,
                segfile_id=0,
                path="/t/f0",
                previous_length=10,
                truncate=client.truncate,
            )
        )
        manager.abort(txn)
        assert client.read_file("/t/f0") == b"committed!"

    def test_context_manager_commits(self):
        manager = TransactionManager()
        with manager.run() as txn:
            pass
        assert txn.state == "committed"

    def test_context_manager_aborts_on_error(self):
        manager = TransactionManager()
        with pytest.raises(ValueError):
            with manager.run() as txn:
                raise ValueError("boom")
        assert txn.state == "aborted"

    def test_locks_released_on_commit(self):
        manager = TransactionManager()
        txn = manager.begin()
        txn.lock("rel:t", LockMode.ACCESS_EXCLUSIVE)
        manager.commit(txn)
        assert manager.locks.holders("rel:t") == []
