"""Tests for the SQL lexer and parser."""

import datetime

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast, parse_sql, parse_statement, tokenize
from repro.sql.lexer import TokenKind


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, 1.5 FROM t WHERE x <> 'it''s'")
        kinds = [t.kind for t in tokens]
        assert kinds[-1] is TokenKind.EOF
        values = [t.value for t in tokens[:-1]]
        assert "SELECT" in values
        assert "1.5" in values
        assert "<>" in values
        assert "it's" in values

    def test_comments_stripped(self):
        tokens = tokenize("SELECT 1 -- trailing\n/* block */ + 2")
        values = [t.value for t in tokens[:-1]]
        assert values == ["SELECT", "1", "+", "2"]

    def test_quoted_identifier(self):
        tokens = tokenize('SELECT "details:price" FROM t')
        assert tokens[1].kind is TokenKind.IDENT
        assert tokens[1].value == "details:price"

    def test_scientific_notation(self):
        tokens = tokenize("SELECT 1.5e-3")
        assert tokens[1].value == "1.5e-3"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @foo")


class TestSelectParsing:
    def test_minimal(self):
        stmt = parse_statement("SELECT 1")
        assert isinstance(stmt, ast.SelectStmt)
        assert isinstance(stmt.items[0].expr, ast.Literal)

    def test_star_and_qualified_star(self):
        stmt = parse_statement("SELECT *, t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].expr.table == "t"

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_from_comma_and_aliases(self):
        stmt = parse_statement("SELECT 1 FROM nation n1, nation AS n2")
        assert stmt.from_items[0].alias == "n1"
        assert stmt.from_items[1].alias == "n2"

    def test_explicit_joins(self):
        stmt = parse_statement(
            "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y"
        )
        top = stmt.from_items[0]
        assert isinstance(top, ast.JoinExpr)
        assert top.join_type == "left"
        assert top.left.join_type == "inner"

    def test_subquery_source(self):
        stmt = parse_statement("SELECT s.a FROM (SELECT a FROM t) AS s")
        assert isinstance(stmt.from_items[0], ast.SubquerySource)
        assert stmt.from_items[0].alias == "s"

    def test_group_having_order_limit(self):
        stmt = parse_statement(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2 "
            "ORDER BY 2 DESC, a ASC NULLS FIRST LIMIT 7"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].nulls_first is True
        assert stmt.limit == 7

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct


class TestExpressionParsing:
    def expr(self, text):
        return parse_statement(f"SELECT {text}").items[0].expr

    def test_precedence_arithmetic(self):
        node = self.expr("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_precedence_and_or(self):
        node = self.expr("a or b and c")
        assert node.op == "or"
        assert node.right.op == "and"

    def test_not(self):
        node = self.expr("not a = b")
        assert isinstance(node, ast.UnaryOp)

    def test_comparison_chain(self):
        node = self.expr("a <= b")
        assert node.op == "<="

    def test_between(self):
        node = self.expr("x between 1 and 5")
        assert isinstance(node, ast.BetweenExpr)

    def test_not_between(self):
        node = self.expr("x not between 1 and 5")
        assert node.negated

    def test_like(self):
        node = self.expr("name like '%green%'")
        assert isinstance(node, ast.LikeExpr)

    def test_not_like(self):
        assert self.expr("name not like 'a%'").negated

    def test_in_list(self):
        node = self.expr("x in (1, 2, 3)")
        assert isinstance(node, ast.InList)
        assert len(node.items) == 3

    def test_in_subquery(self):
        node = self.expr("x in (select y from t)")
        assert isinstance(node, ast.InSubquery)

    def test_not_in_subquery(self):
        assert self.expr("x not in (select y from t)").negated

    def test_exists(self):
        node = self.expr("exists (select * from t)")
        assert isinstance(node, ast.ExistsExpr)

    def test_scalar_subquery(self):
        node = self.expr("(select max(x) from t)")
        assert isinstance(node, ast.SubqueryExpr)

    def test_is_null(self):
        assert isinstance(self.expr("x is null"), ast.IsNullExpr)
        assert self.expr("x is not null").negated

    def test_case_searched(self):
        node = self.expr("case when a > 1 then 'x' else 'y' end")
        assert isinstance(node, ast.CaseExpr)
        assert node.else_result is not None

    def test_case_simple_form(self):
        node = self.expr("case a when 1 then 'x' end")
        # simple CASE is normalized into searched form
        assert node.whens[0][0].op == "="

    def test_date_literal(self):
        node = self.expr("date '1994-01-01'")
        assert node.value == datetime.date(1994, 1, 1)

    def test_interval_forms(self):
        one = self.expr("interval '3' month")
        two = self.expr("interval '3 month'")
        assert (one.quantity, one.unit) == (3, "month") == (two.quantity, two.unit)

    def test_date_plus_interval(self):
        node = self.expr("date '1994-01-01' + interval '1' year")
        assert node.op == "+"
        assert isinstance(node.right, ast.IntervalLiteral)

    def test_extract(self):
        node = self.expr("extract(year from o_orderdate)")
        assert isinstance(node, ast.ExtractExpr)
        assert node.part == "year"

    def test_substring_from_for(self):
        node = self.expr("substring(c_phone from 1 for 2)")
        assert isinstance(node, ast.FuncCall)
        assert len(node.args) == 3

    def test_substring_commas(self):
        node = self.expr("substring(c_phone, 1, 2)")
        assert len(node.args) == 3

    def test_cast_both_syntaxes(self):
        assert isinstance(self.expr("cast(a as int)"), ast.CastExpr)
        assert isinstance(self.expr("a::decimal(10,2)"), ast.CastExpr)

    def test_count_star_and_distinct(self):
        star = self.expr("count(*)")
        assert star.star
        distinct = self.expr("count(distinct x)")
        assert distinct.distinct

    def test_unary_minus(self):
        node = self.expr("-x")
        assert isinstance(node, ast.UnaryOp)

    def test_concat(self):
        assert self.expr("a || b").op == "||"

    def test_qualified_column(self):
        node = self.expr("t.a")
        assert node.table == "t" and node.name == "a"

    def test_null_true_false(self):
        assert self.expr("null").value is None
        assert self.expr("true").value is True


class TestDdlParsing:
    def test_create_table_with_options(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT NOT NULL, b VARCHAR(10)) "
            "WITH (appendonly=true, orientation=column, compresstype=zlib, "
            "compresslevel=5) DISTRIBUTED BY (a)"
        )
        assert stmt.options["orientation"] == "column"
        assert stmt.options["compresslevel"] == "5"
        assert stmt.distributed_by == ["a"]

    def test_create_table_randomly(self):
        stmt = parse_statement("CREATE TABLE t (a INT) DISTRIBUTED RANDOMLY")
        assert stmt.distributed_randomly

    def test_partition_by_range(self):
        stmt = parse_statement(
            "CREATE TABLE s (id INT, d DATE) DISTRIBUTED BY (id) "
            "PARTITION BY RANGE (d) (START (date '2008-01-01') INCLUSIVE "
            "END (date '2009-01-01') EXCLUSIVE EVERY (INTERVAL '1 month'))"
        )
        clause = stmt.partition_by
        assert clause.kind == "range"
        assert clause.start_inclusive and not clause.end_inclusive

    def test_partition_by_list(self):
        stmt = parse_statement(
            "CREATE TABLE s (id INT, r TEXT) DISTRIBUTED BY (id) "
            "PARTITION BY LIST (r) (PARTITION asia VALUES ('ASIA'), "
            "PARTITION other VALUES ('EUROPE', 'AFRICA'))"
        )
        assert [p[0] for p in stmt.partition_by.list_parts] == ["asia", "other"]

    def test_create_external_table(self):
        stmt = parse_statement(
            "CREATE EXTERNAL TABLE h (recordkey BYTEA, \"f:q\" INT) "
            "LOCATION ('pxf://svc/sales?profile=HBase') "
            "FORMAT 'CUSTOM' (formatter='pxfwritable_import')"
        )
        assert stmt.location.startswith("pxf://")
        assert stmt.format_options["formatter"] == "pxfwritable_import"

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(stmt.query, ast.SelectStmt)

    def test_drop_variants(self):
        assert parse_statement("DROP TABLE t").object_kind == "table"
        assert parse_statement("DROP VIEW IF EXISTS v").if_exists
        assert (
            parse_statement("DROP EXTERNAL TABLE e").object_kind
            == "external table"
        )

    def test_insert_values(self):
        stmt = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)"
        )
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM s")
        assert stmt.select is not None

    def test_transaction_statements(self):
        assert isinstance(parse_statement("BEGIN"), ast.BeginStmt)
        begin = parse_statement("BEGIN ISOLATION LEVEL SERIALIZABLE")
        assert begin.isolation == "SERIALIZABLE"
        assert isinstance(parse_statement("COMMIT"), ast.CommitStmt)
        assert isinstance(parse_statement("ROLLBACK"), ast.RollbackStmt)
        assert isinstance(parse_statement("ABORT"), ast.RollbackStmt)

    def test_set_isolation(self):
        stmt = parse_statement("SET TRANSACTION ISOLATION LEVEL READ COMMITTED")
        assert stmt.name == "transaction_isolation"

    def test_analyze_explain_truncate(self):
        assert parse_statement("ANALYZE lineitem").table == "lineitem"
        assert parse_statement("ANALYZE").table is None
        explained = parse_statement("EXPLAIN SELECT 1")
        assert isinstance(explained.statement, ast.SelectStmt)
        assert parse_statement("TRUNCATE TABLE t").table == "t"

    def test_multi_statement_script(self):
        statements = parse_sql("BEGIN; SELECT 1; COMMIT;")
        assert len(statements) == 3


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "CREATE TABLE t",
            "INSERT t VALUES (1)",
            "SELECT a FROM t WHERE",
            "SELECT case when x then 1",
            "UPDATE t SET a = 1",  # DML updates not in the dialect
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(SqlSyntaxError):
            parse_statement(text)
