"""PR 7 concurrency battery: slots, resource queues, the two-phase
concurrent runner, trace isolation, and the throughput bench.

The load-bearing properties:

* **Serial/concurrent differential** — the same seeded statement mix
  run serially and at N=2/4/8 interleaved streams returns bit-identical
  rows per query, and every query's charged cost equals its serial cost
  plus its explicitly-accounted queue wait (float-exact).
* **Seeded-interleaving purity** — for 25 seeds, re-running a workload
  reproduces identical makespans, per-query finish times, and waits:
  interleaving is a pure function of (seed, workload).
* **Trace isolation** — two interleaved sessions never read each
  other's traces; every trace carries only its own query id.
"""

import pytest

from repro.cluster.resqueue import (
    QueueSpec,
    ResourceQueueManager,
    specs_from_security,
)
from repro.engine import Engine
from repro.errors import CatalogError, ReproError
from repro.executor.concurrent import ConcurrentRunner
from repro.obs.trace import trace_query_id_violations
from repro.simtime.scheduler import EventScheduler, TaskGraph
from repro.util import DeterministicRng


# --------------------------------------------------------------- fixtures
def build_engine(seed: int = 11) -> Engine:
    engine = Engine(num_segment_hosts=2, segments_per_host=2, seed=seed)
    session = engine.connect()
    session.execute(
        "CREATE TABLE conc (a INT, b INT, c VARCHAR(8)) DISTRIBUTED BY (a)"
    )
    rows = [(i, (i * 7) % 100, f"v{i % 13}") for i in range(300)]
    session.load_rows("conc", rows)
    session.execute("ANALYZE")
    return engine


def make_streams(seed: int, count: int, statements: int = 4):
    pool = [
        "SELECT c, count(*), sum(b) FROM conc GROUP BY c ORDER BY c",
        "SELECT a, b FROM conc WHERE b < 40 ORDER BY a",
        "SELECT count(*) FROM conc WHERE a % 3 = 0",
        "SELECT a, c FROM conc WHERE a = 17",
    ]
    streams = []
    for stream_id in range(count):
        rng = DeterministicRng(seed, "conc-test", f"stream{stream_id}")
        streams.append(
            [pool[rng.randrange(len(pool))] for _ in range(statements)]
        )
    return streams


# ------------------------------------------------- scheduler slot semantics
class TestSchedulerSlots:
    def test_shared_slot_serializes_tasks(self):
        sched = EventScheduler()
        sched.add_task((1, 0, 0), 5.0, slot="seg")
        sched.add_task((2, 0, 0), 3.0, slot="seg")
        out = sched.run()
        spans = sorted(
            (out.start[k], out.finish[k]) for k in out.start
        )
        assert spans[0][1] <= spans[1][0]  # no overlap on the slot
        assert out.makespan == 8.0

    def test_slotless_tasks_overlap(self):
        sched = EventScheduler()
        sched.add_task((1, 0, 0), 5.0)
        sched.add_task((2, 0, 0), 3.0)
        out = sched.run()
        assert out.makespan == 5.0

    def test_parked_task_tie_break_is_stable(self):
        # First arrival takes the free slot; the tasks parked behind it
        # drain in stable (ready_time, key) order regardless of the
        # order they were added.
        sched = EventScheduler()
        for prefix in (3, 2, 1):
            sched.add_task((prefix, 0, 0), 1.0, slot=0)
        out = sched.run()
        order = sorted(out.start, key=lambda k: (out.start[k], k))
        assert order == [(3, 0, 0), (1, 0, 0), (2, 0, 0)]

    def test_waits_account_for_slot_contention(self):
        sched = EventScheduler()
        sched.add_task((1, 0, 0), 4.0, slot=0)
        sched.add_task((2, 0, 0), 2.0, slot=0)
        out = sched.run()
        assert out.waits[(1, 0, 0)] == 0.0
        assert out.waits[(2, 0, 0)] == 4.0

    def test_watch_fires_at_last_finish(self):
        sched = EventScheduler()
        sched.add_task((1, 0, 0), 2.0)
        sched.add_task((1, 1, 0), 5.0)
        seen = []
        sched.watch([(1, 0, 0), (1, 1, 0)], seen.append)
        sched.run()
        assert seen == [5.0]

    def test_watch_callback_adds_next_query(self):
        # Closed-loop: finishing query 1 submits query 2 dynamically.
        sched = EventScheduler()
        sched.add_task((1, 0, 0), 3.0, slot=0)

        def submit_next(t):
            sched.add_task((2, 0, 0), 2.0, release=t, slot=0)

        sched.watch([(1, 0, 0)], submit_next)
        out = sched.run()
        assert out.finish[(2, 0, 0)] == 5.0
        assert out.makespan == 5.0

    def test_mid_run_edge_to_finished_task_rejected(self):
        sched = EventScheduler()
        sched.add_task((1, 0, 0), 1.0)

        def bad(t):
            sched.add_task((2, 0, 0), 1.0)
            sched.add_edge((2, 0, 0), (1, 0, 0))

        sched.watch([(1, 0, 0)], bad)
        with pytest.raises(ReproError):
            sched.run()

    def test_add_graph_namespaces_and_contends(self):
        graph = TaskGraph(
            tasks=[((0, 0), 2.0), ((1, -1), 1.0)],
            edges=[((0, 0), (1, -1), 0.5)],
        )
        sched = EventScheduler()
        keys_a = sched.add_graph(graph, 1)
        keys_b = sched.add_graph(graph, 2)
        out = sched.run()
        assert set(keys_a) == {(1, 0, 0), (1, 1, -1)}
        # Segment 0 is a shared slot; QD (-1) tasks are slotless.
        seg_spans = sorted(
            (out.start[k], out.finish[k])
            for k in out.start
            if k[2] == 0
        )
        assert seg_spans[0][1] <= seg_spans[1][0]
        assert out.finish[keys_b[1]] == out.finish[(2, 0, 0)] + 0.5 + 1.0


# ------------------------------------------------------- resource queues
class TestResourceQueues:
    def manager(self, slots=2, memory=100.0, priority=0):
        specs = {
            "q": QueueSpec(
                name="q", slots=slots, memory_limit=memory,
                priority=priority,
            )
        }
        return ResourceQueueManager(specs)

    def test_admits_within_slots(self):
        mgr = self.manager(slots=2)
        admitted = []
        mgr.submit(1, "q", 10.0, 0.0, admitted.append)
        mgr.submit(2, "q", 10.0, 0.0, admitted.append)
        assert admitted == [0.0, 0.0]
        assert mgr.running("q") == 2

    def test_parks_over_slot_budget_and_charges_wait(self):
        mgr = self.manager(slots=1)
        log = []
        mgr.submit(1, "q", 10.0, 0.0, lambda t: log.append(("a", t)))
        mgr.submit(2, "q", 10.0, 0.0, lambda t: log.append(("b", t)))
        assert log == [("a", 0.0)]
        assert mgr.depth("q") == 1
        mgr.release(1, 7.5)
        assert log == [("a", 0.0), ("b", 7.5)]
        assert mgr.waits[2] == 7.5

    def test_parks_over_memory_budget(self):
        mgr = self.manager(slots=8, memory=100.0)
        log = []
        mgr.submit(1, "q", 60.0, 0.0, lambda t: log.append(1))
        mgr.submit(2, "q", 60.0, 0.0, lambda t: log.append(2))
        assert log == [1]
        mgr.release(1, 3.0)
        assert log == [1, 2]

    def test_oversized_query_clamped_to_budget(self):
        mgr = self.manager(slots=2, memory=100.0)
        log = []
        mgr.submit(1, "q", 500.0, 0.0, lambda t: log.append(1))
        assert log == [1]  # clamped, runs alone

    def test_priority_drains_first(self):
        mgr = self.manager(slots=1)
        log = []
        mgr.submit(1, "q", 1.0, 0.0, lambda t: log.append(1))
        mgr.submit(2, "q", 1.0, 0.0, lambda t: log.append(2), priority=0)
        mgr.submit(3, "q", 1.0, 0.0, lambda t: log.append(3), priority=5)
        mgr.release(1, 2.0)
        mgr.release(3, 4.0)
        assert log == [1, 3, 2]

    def test_head_of_line_blocking(self):
        # The front waiter needs more memory than is free; a smaller
        # waiter behind it may NOT jump the queue.
        mgr = self.manager(slots=8, memory=100.0)
        log = []
        mgr.submit(1, "q", 60.0, 0.0, lambda t: log.append(1))
        mgr.submit(2, "q", 90.0, 0.0, lambda t: log.append(2))
        mgr.submit(3, "q", 10.0, 0.0, lambda t: log.append(3))
        # 3 would fit in the 40 free units, but 2 is ahead of it.
        assert log == [1]
        assert mgr.depth("q") == 2
        mgr.release(1, 5.0)
        # Once the head fits, the drain continues down the line.
        assert log == [1, 2, 3]

    def test_specs_from_security(self):
        engine = Engine(num_segment_hosts=1, segments_per_host=1)
        session = engine.connect()
        session.execute(
            "CREATE RESOURCE QUEUE etl WITH "
            "(active_statements=3, memory_limit=1000000, priority=2)"
        )
        specs = specs_from_security(engine.security)
        assert specs["etl"] == QueueSpec(
            name="etl", slots=3, memory_limit=1000000.0, priority=2
        )
        assert "pg_default" in specs


# ------------------------------------------ serial vs concurrent differential
class TestSerialConcurrentDifferential:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_rows_bit_identical_and_cost_accounted(self, n):
        streams = make_streams(seed=5, count=n)
        batch = ConcurrentRunner(build_engine(), streams).run()

        serial = {}
        session = build_engine().connect()
        for stream_id, stream in enumerate(streams):
            for index, sql in enumerate(stream):
                result = session.execute(sql)
                serial[(stream_id, index)] = (
                    result.rows, result.cost.seconds
                )

        for outcome in batch.outcomes:
            rows, _cost = serial[(outcome.stream, outcome.index)]
            assert outcome.rows == rows, (
                f"stream {outcome.stream} stmt {outcome.index} diverged"
            )
            # The accounting contract, float-exact.
            assert outcome.charged_seconds == (
                outcome.serial_seconds + outcome.queue_wait
            )
            assert outcome.queue_wait >= 0.0
            # latency reassociates (admit + (serial - makespan)) + makespan,
            # so allow float-ulp slack; charged_seconds stays exact.
            assert outcome.latency >= outcome.serial_seconds - 1e-9

    def test_queue_wait_charged_when_parked(self):
        engine = build_engine()
        session = engine.connect()
        session.execute(
            "CREATE RESOURCE QUEUE narrow WITH (active_statements=1)"
        )
        streams = make_streams(seed=9, count=3, statements=2)
        batch = ConcurrentRunner(
            engine, streams, queues={0: "narrow", 1: "narrow", 2: "narrow"}
        ).run()
        waited = [o for o in batch.outcomes if o.queue_wait > 0]
        assert waited, "a 1-slot queue under 3 streams must park someone"
        for outcome in waited:
            assert outcome.charged_seconds == (
                outcome.serial_seconds + outcome.queue_wait
            )
            assert outcome.admit == outcome.submit + outcome.queue_wait
        stats = batch.queue_stats["narrow"]
        assert stats.parked == len(waited)
        assert stats.wait_seconds == pytest.approx(
            sum(o.queue_wait for o in waited)
        )

    def test_concurrent_makespan_beats_serial_sum(self):
        streams = make_streams(seed=5, count=4)
        batch = ConcurrentRunner(build_engine(), streams).run()
        serial_sum = sum(o.serial_seconds for o in batch.outcomes)
        assert batch.makespan < serial_sum


# ------------------------------------------------- seeded interleaving purity
class TestInterleavingPurity:
    def test_25_seeds_reproduce_exactly(self):
        for seed in range(25):
            streams = make_streams(seed=seed, count=3, statements=2)
            first = ConcurrentRunner(build_engine(), streams).run()
            second = ConcurrentRunner(build_engine(), streams).run()
            assert first.makespan == second.makespan, f"seed {seed}"
            for a, b in zip(first.outcomes, second.outcomes):
                assert (a.stream, a.index) == (b.stream, b.index)
                assert a.rows == b.rows, f"seed {seed}"
                assert a.submit == b.submit, f"seed {seed}"
                assert a.finish == b.finish, f"seed {seed}"
                assert a.queue_wait == b.queue_wait, f"seed {seed}"
                assert a.slot_wait == b.slot_wait, f"seed {seed}"
                assert a.charged_seconds == b.charged_seconds

    def test_scheduler_replay_is_pure(self):
        graph = TaskGraph(
            tasks=[((0, 0), 2.0), ((0, 1), 3.0), ((1, -1), 1.0)],
            edges=[((0, 0), (1, -1), 0.1), ((0, 1), (1, -1), 0.1)],
        )
        runs = []
        for _ in range(3):
            sched = EventScheduler()
            for prefix in range(4):
                sched.add_graph(graph, prefix)
            out = sched.run()
            runs.append((out.makespan, tuple(sorted(out.finish.items()))))
        assert len(set(runs)) == 1


# --------------------------------------------------------- engine-level GUCs
class TestQueueGuc:
    def test_set_resource_queue_overrides_role_default(self):
        engine = build_engine()
        session = engine.connect()
        session.execute(
            "CREATE RESOURCE QUEUE adhoc WITH (active_statements=2)"
        )
        session.execute("SET resource_queue = adhoc")
        assert session._resource_queue().name == "adhoc"
        session.execute("SET resource_queue = default")
        assert session._resource_queue().name == "pg_default"

    def test_set_resource_queue_unknown_raises(self):
        session = build_engine().connect()
        with pytest.raises(CatalogError):
            session.execute("SET resource_queue = nope")

    def test_work_mem_clamped_by_queue(self):
        engine = build_engine()
        session = engine.connect()
        session.execute(
            "CREATE RESOURCE QUEUE tiny WITH (memory_limit=1000)"
        )
        session.execute("SET resource_queue = tiny")
        result = session.execute("SELECT count(*) FROM conc")
        assert result.rows == [(300,)]


# ----------------------------------------------------------- trace isolation
class TestTraceIsolation:
    def test_two_interleaved_sessions_keep_traces_disjoint(self):
        engine = build_engine()
        one = engine.connect()
        two = engine.connect()
        one.execute("SET trace = on")
        two.execute("SET trace = on")
        # Interleave: one, two, one, two.
        r1a = one.execute("SELECT count(*) FROM conc")
        r2a = two.execute("SELECT a, b FROM conc WHERE a = 17")
        r1b = one.execute("SELECT c, count(*) FROM conc GROUP BY c ORDER BY c")
        r2b = two.execute("SELECT count(*) FROM conc WHERE b < 40")

        ids = [r.query_id for r in (r1a, r2a, r1b, r2b)]
        assert len(set(ids)) == 4 and all(ids)
        # Each session's tracer holds exactly its own statements.
        assert [t.query_id for t in one.tracer.queries] == [r1a.query_id,
                                                            r1b.query_id]
        assert [t.query_id for t in two.tracer.queries] == [r2a.query_id,
                                                            r2b.query_id]
        # for_query selects by id, not recency.
        assert one.tracer.for_query(r1a.query_id) is one.tracer.queries[0]
        assert two.tracer.for_query(r1a.query_id) is None
        # Every trace's RPC events carry only its own query id.
        for session in (one, two):
            for trace in session.tracer.queries:
                assert trace_query_id_violations(trace) == []
                assert trace.rpc_events, "traced statement recorded no RPCs"

    def test_explain_analyze_verbose_unaffected_by_other_session(self):
        engine = build_engine()
        one = engine.connect()
        two = engine.connect()
        # Another session's traced statement lands between the verbose
        # EXPLAIN's planning and any later inspection.
        two.execute("SET trace = on")
        rows = one.execute(
            "EXPLAIN (ANALYZE, VERBOSE) SELECT count(*) FROM conc"
        ).rows
        two.execute("SELECT a FROM conc WHERE a = 3")
        text = "\n".join(line for (line,) in rows)
        assert "actual time=" in text
        assert "Total:" in text

    def test_concurrent_runner_traces_are_disjoint(self):
        streams = make_streams(seed=3, count=3, statements=2)
        runner = ConcurrentRunner(build_engine(), streams, trace=True)
        runner.run()
        seen = set()
        for session in runner.sessions:
            for trace in session.tracer.queries:
                assert trace_query_id_violations(trace) == []
                assert trace.query_id not in seen
                seen.add(trace.query_id)
        assert len(seen) == 6


# ------------------------------------------------------------ bench smoke
class TestThroughputBench:
    def test_throughput_smoke(self, tmp_path):
        import repro.bench.throughput as tp

        out = tmp_path / "BENCH_throughput.json"
        saved = tp.STREAM_COUNTS
        tp.STREAM_COUNTS = (1, 2)
        try:
            code = tp.run_throughput(out_path=str(out), check=False, seed=5)
        finally:
            tp.STREAM_COUNTS = saved
        assert code == 0
        import json

        report = json.loads(out.read_text())
        assert set(report["runs"]) == {"1", "2"}
        for entry in report["runs"].values():
            assert entry["answers_match"]
            assert entry["qps"] > 0
        assert report["history"]
