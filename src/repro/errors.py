"""Exception hierarchy for the HAWQ reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subsystems raise the most specific subclass that applies.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class HdfsError(ReproError):
    """Base class for distributed-file-system errors."""


class FileNotFoundInHdfs(HdfsError):
    """The requested HDFS path does not exist."""


class FileAlreadyExists(HdfsError):
    """Attempt to create an HDFS path that already exists."""


class LeaseConflict(HdfsError):
    """A second writer/appender/truncater tried to acquire a held lease."""


class TruncateError(HdfsError):
    """Invalid truncate request (e.g. target length beyond file length)."""


class ReplicationError(HdfsError):
    """Not enough live DataNodes to satisfy the replication factor."""


class CatalogError(ReproError):
    """Base class for catalog errors."""


class DuplicateObject(CatalogError):
    """An object with this name already exists in the catalog."""


class UndefinedObject(CatalogError):
    """The named table/column/function does not exist."""


class CaqlSyntaxError(CatalogError):
    """CaQL statement could not be parsed or uses unsupported features."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""


class SemanticError(SqlError):
    """The SQL parsed but references undefined objects or mistypes them."""


class PlannerError(ReproError):
    """The planner could not produce a plan for a valid query."""


class ExecutorError(ReproError):
    """Runtime failure while executing a plan."""


class QueryCanceled(ReproError):
    """A statement was cancelled — by :meth:`Session.cancel`, or by the
    ``statement_timeout`` GUC expiring on the simulated clock.

    Deliberately *not* a :class:`ClusterError`: cancellation is a user
    decision, so the session's bounded-restart loop must never retry it
    and chaos recovery paths must never treat it as a segment fault.
    """


class TransactionError(ReproError):
    """Base class for transaction-management errors."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back (explicitly or by failure)."""


class DeadlockDetected(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeout(TransactionError):
    """A lock could not be acquired within the allowed wait."""


class SerializationFailure(TransactionError):
    """A serializable transaction observed a conflicting concurrent write."""


class InterconnectError(ReproError):
    """Base class for interconnect failures."""


class ConnectionLimitExceeded(InterconnectError):
    """TCP interconnect ran out of ports / connection capacity."""


class ClusterError(ReproError):
    """Base class for cluster-runtime errors."""


class SegmentDown(ClusterError):
    """Operation routed to a segment that is marked down."""


class MasterUnavailable(ClusterError):
    """Neither primary nor standby master can serve the request."""


class QueryRetriesExhausted(ClusterError):
    """A query kept hitting dead segments after every bounded retry."""


class FaultInjected(ClusterError):
    """An error raised on purpose by the chaos fault-injection layer.

    Chaos failures subclass :class:`ClusterError` because that is the
    contract the engine gives clients: injected faults must surface as
    the same clean errors real faults would, never as wrong answers.
    """


class TransactionAbortedByFault(FaultInjected):
    """The fault plan aborted the running transaction at a WAL point."""


class PxfError(ReproError):
    """Base class for extension-framework errors."""


class StorageError(ReproError):
    """Base class for storage-format errors."""
