"""DetSan sweep: seeded concurrent workloads under the sanitizer.

CI's runtime leg of the concurrency-isolation gate::

    python -m repro.sanitize --seeds 10 --streams 4
    python -m repro.sanitize --seeds 5 --streams 4 --cancel

Each seed builds a fresh chaos-sized cluster, loads the TPC-H subset,
derives a seeded closed-loop SELECT stream mix (the same generator shape
as the chaos suite's concurrent phase), and replays it with a
:class:`~repro.sanitize.DetSan` installed.  The sweep fails (exit 1) if
any seed observes a cross-query mutation of an unregistered shared
structure — i.e. if :class:`~repro.sanitize.IsolationViolation` fires —
and prints per-structure mutation counts so a green run still shows
what the sanitizer actually watched.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.chaos.suite import build_engine, generate_data, load_workload
from repro.executor.concurrent import ConcurrentRunner
from repro.sanitize import DetSan, IsolationViolation
from repro.tpch import QUERIES
from repro.util import DeterministicRng

#: Statements per stream in the sweep workload.
STATEMENTS = 3


def sweep_streams(seed: int, streams: int) -> List[List[str]]:
    """Seeded stream mix: full scans (Q6/Q1) interleaved with customer
    point lookups — the same shape the chaos suite's concurrent phase
    replays, parameterized on the stream count."""
    pool = [QUERIES[6][0], QUERIES[1][0]]
    mix: List[List[str]] = []
    for stream_id in range(streams):
        rng = DeterministicRng(seed, "detsan-sweep", f"stream{stream_id}")
        stream = []
        for _ in range(STATEMENTS):
            if rng.chance(0.5):
                key = rng.randrange(1, 76)
                stream.append(
                    "SELECT c_custkey, c_name FROM customer "
                    f"WHERE c_custkey = {key}"
                )
            else:
                stream.append(pool[rng.randrange(len(pool))])
        mix.append(stream)
    return mix


def seeded_cancels(seed: int, mix: List[List[str]]) -> dict:
    """Seeded mid-flight cancel points: an unsanitized metering run on a
    twin cluster yields each statement's (admit, finish) window, and two
    seeded draws pick the targets; cancels arm at window midpoints. A
    target whose window has shifted past its midpoint by an earlier
    cancel simply no-ops (the pg_cancel_backend contract), so the sweep
    asserts *at least one* cancel lands, not all."""
    meter_engine = build_engine(seed)
    load_workload(meter_engine, generate_data())
    reference = ConcurrentRunner(meter_engine, mix).run()
    windows = {
        (o.stream, o.index): (o.admit, o.finish)
        for o in reference.outcomes
        if o.finish - o.admit > 1e-9
    }
    rng = DeterministicRng(seed, "detsan-sweep", "cancel")
    candidates = sorted(windows)
    cancel_at = {}
    for _ in range(min(2, len(candidates))):
        key = candidates.pop(rng.randrange(len(candidates)))
        admit, finish = windows[key]
        cancel_at[key] = (admit + finish) / 2
    return cancel_at


def run_seed(seed: int, streams: int, cancel: bool = False) -> DetSan:
    """One sanitized concurrent batch; raises IsolationViolation on a
    cross-query mutation outside the shared-state registry. With
    ``cancel``, seeded mid-flight cancels fire during the batch and the
    run additionally proves the teardown leaks nothing: every failure
    is a clean ``QueryCanceled``, every charged scan the aborted
    attempts opened is closed again, and no queue slot stays occupied."""
    engine = build_engine(seed)
    load_workload(engine, generate_data())
    mix = sweep_streams(seed, streams)
    cancel_at = seeded_cancels(seed, mix) if cancel else None
    sanitizer = DetSan()
    runner = ConcurrentRunner(
        engine,
        mix,
        detsan=sanitizer,
        allow_failures=True,
        cancel_at=cancel_at,
    )
    result = runner.run()
    failed = [o for o in result.outcomes if not o.ok]
    if cancel:
        landed = 0
        for outcome in failed:
            if (outcome.stream, outcome.index) not in cancel_at or (
                "cancelled by request" not in (outcome.error or "")
            ):
                raise IsolationViolation(
                    f"seed {seed}: non-cancel failure in cancel sweep: "
                    f"{outcome.error}"
                )
            landed += 1
        if not landed:
            raise IsolationViolation(
                f"seed {seed}: no seeded cancel landed mid-flight"
            )
        opened = engine.metrics.counter("charged_scans_opened").value
        closed = engine.metrics.counter("charged_scans_closed").value
        if opened != closed:
            raise IsolationViolation(
                f"seed {seed}: leaked charged iterators "
                f"({opened} opened, {closed} closed)"
            )
        for queue in ("pg_default",):
            if runner.manager.depth(queue) or runner.manager.running(queue):
                raise IsolationViolation(
                    f"seed {seed}: orphaned slot in queue {queue!r} after "
                    "cancel sweep"
                )
    elif failed:
        raise IsolationViolation(
            f"seed {seed}: {len(failed)} statements failed outside chaos: "
            f"{failed[0].error}"
        )
    return sanitizer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Sweep seeded concurrent workloads under DetSan.",
    )
    parser.add_argument("--seeds", type=int, default=10,
                        help="number of seeds to sweep (default 10)")
    parser.add_argument("--streams", type=int, default=4,
                        help="concurrent streams per seed (default 4)")
    parser.add_argument("--cancel", action="store_true",
                        help="fire seeded mid-flight cancels and verify "
                             "teardown leaks nothing")
    args = parser.parse_args(argv)

    totals: dict = {}
    mutations = 0
    started = time.perf_counter()  # lint: allow[R1] — CLI wall time, not simulated cost
    for seed in range(args.seeds):
        try:
            sanitizer = run_seed(seed, args.streams, cancel=args.cancel)
        except IsolationViolation as exc:
            print(f"seed {seed}: VIOLATION")
            print(f"  {exc}")
            return 1
        summary = sanitizer.summary()
        mutations += summary["total_mutations"]
        for label, count in summary["structures"].items():
            totals[label] = totals.get(label, 0) + count
        print(
            f"seed {seed}: clean "
            f"({summary['total_mutations']} mutations, "
            f"{summary['tracked_entries']} tracked entries)"
        )
    elapsed = time.perf_counter() - started  # lint: allow[R1] — CLI wall time
    mode = " (cancel mode)" if args.cancel else ""
    print(
        f"\nDetSan sweep{mode}: {args.seeds} seeds x {args.streams} streams, "
        f"0 violations, {mutations} mutations in {elapsed:.1f}s"
    )
    for label in sorted(totals):
        print(f"  {label}: {totals[label]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
