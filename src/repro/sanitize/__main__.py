"""DetSan sweep: seeded concurrent workloads under the sanitizer.

CI's runtime leg of the concurrency-isolation gate::

    python -m repro.sanitize --seeds 10 --streams 4

Each seed builds a fresh chaos-sized cluster, loads the TPC-H subset,
derives a seeded closed-loop SELECT stream mix (the same generator shape
as the chaos suite's concurrent phase), and replays it with a
:class:`~repro.sanitize.DetSan` installed.  The sweep fails (exit 1) if
any seed observes a cross-query mutation of an unregistered shared
structure — i.e. if :class:`~repro.sanitize.IsolationViolation` fires —
and prints per-structure mutation counts so a green run still shows
what the sanitizer actually watched.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.chaos.suite import build_engine, generate_data, load_workload
from repro.executor.concurrent import ConcurrentRunner
from repro.sanitize import DetSan, IsolationViolation
from repro.tpch import QUERIES
from repro.util import DeterministicRng

#: Statements per stream in the sweep workload.
STATEMENTS = 3


def sweep_streams(seed: int, streams: int) -> List[List[str]]:
    """Seeded stream mix: full scans (Q6/Q1) interleaved with customer
    point lookups — the same shape the chaos suite's concurrent phase
    replays, parameterized on the stream count."""
    pool = [QUERIES[6][0], QUERIES[1][0]]
    mix: List[List[str]] = []
    for stream_id in range(streams):
        rng = DeterministicRng(seed, "detsan-sweep", f"stream{stream_id}")
        stream = []
        for _ in range(STATEMENTS):
            if rng.chance(0.5):
                key = rng.randrange(1, 76)
                stream.append(
                    "SELECT c_custkey, c_name FROM customer "
                    f"WHERE c_custkey = {key}"
                )
            else:
                stream.append(pool[rng.randrange(len(pool))])
        mix.append(stream)
    return mix


def run_seed(seed: int, streams: int) -> DetSan:
    """One sanitized concurrent batch; raises IsolationViolation on a
    cross-query mutation outside the shared-state registry."""
    engine = build_engine(seed)
    load_workload(engine, generate_data())
    sanitizer = DetSan()
    runner = ConcurrentRunner(
        engine,
        sweep_streams(seed, streams),
        detsan=sanitizer,
        allow_failures=True,
    )
    result = runner.run()
    failed = [o for o in result.outcomes if not o.ok]
    if failed:
        raise IsolationViolation(
            f"seed {seed}: {len(failed)} statements failed outside chaos: "
            f"{failed[0].error}"
        )
    return sanitizer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Sweep seeded concurrent workloads under DetSan.",
    )
    parser.add_argument("--seeds", type=int, default=10,
                        help="number of seeds to sweep (default 10)")
    parser.add_argument("--streams", type=int, default=4,
                        help="concurrent streams per seed (default 4)")
    args = parser.parse_args(argv)

    totals: dict = {}
    mutations = 0
    started = time.perf_counter()  # lint: allow[R1] — CLI wall time, not simulated cost
    for seed in range(args.seeds):
        try:
            sanitizer = run_seed(seed, args.streams)
        except IsolationViolation as exc:
            print(f"seed {seed}: VIOLATION")
            print(f"  {exc}")
            return 1
        summary = sanitizer.summary()
        mutations += summary["total_mutations"]
        for label, count in summary["structures"].items():
            totals[label] = totals.get(label, 0) + count
        print(
            f"seed {seed}: clean "
            f"({summary['total_mutations']} mutations, "
            f"{summary['tracked_entries']} tracked entries)"
        )
    elapsed = time.perf_counter() - started  # lint: allow[R1] — CLI wall time
    print(
        f"\nDetSan sweep: {args.seeds} seeds x {args.streams} streams, "
        f"0 violations, {mutations} mutations in {elapsed:.1f}s"
    )
    for label in sorted(totals):
        print(f"  {label}: {totals[label]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
