"""DetSan: a runtime cross-query isolation sanitizer.

The static analyzer (lint R7–R9) proves things about the *source*; this
module watches the *run*.  When enabled, the concurrent runtime's shared
structures — the event scheduler's slot bookkeeping, the resource-queue
manager's admission state, the engine-lifetime caches the workers lean
on — are replaced with guard proxies that shadow-track every mutation as
``(query_id, structure, op)``.

Rules enforced:

* Each ``(structure, key)`` entry is **owned** by the first query scope
  that writes it.  A mutation from a *different* query scope raises
  :class:`IsolationViolation` immediately — unless the structure's label
  appears in the shared-state registry
  (:mod:`repro.sanitize.registry`), which is the explicit, reasoned
  claim that cross-query sharing is sound there.
* Deleting an entry (``pop``/``del``/``clear``) releases ownership: the
  per-query lifecycle handing a slot back is not a race.
* Mutations outside any query scope (engine setup, teardown, healing)
  are counted but never owned — single-threaded housekeeping is not a
  cross-query hazard.

Everything is opt-in: with no :class:`DetSan` attached, the runtime
constructs plain dicts/lists and pays nothing.

Usage::

    ds = DetSan()
    ds.install_engine(engine)          # guard engine-lifetime caches
    try:
        runner = ConcurrentRunner(engine, streams, detsan=ds)
        result = runner.run()          # raises IsolationViolation on a race
    finally:
        ds.uninstall_engine(engine)
    print(ds.summary())

``python -m repro.sanitize --seeds 10 --streams 4`` runs the chaos
suite's concurrent workload under the sanitizer across seeded schedules.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.sanitize.registry import SHARED_STATE, runtime_labels

__all__ = [
    "DetSan",
    "IsolationViolation",
    "SHARED_STATE",
    "runtime_labels",
]


class IsolationViolation(ReproError):
    """A query mutated shared state owned by another query.

    Subclasses :class:`ReproError` (not ClusterError) on purpose: the
    chaos retry loop treats ClusterError as a recoverable fault, and a
    determinism bug must never be retried into silence."""

    def __init__(self, label: str, op: str, key, owner, writer):
        self.label = label
        self.op = op
        self.key = key
        self.owner = owner
        self.writer = writer
        super().__init__(
            f"cross-query mutation: query {writer!r} performed {op} on "
            f"{label}[{key!r}] owned by query {owner!r}; if this sharing "
            f"is intentional, register {label!r} in "
            "repro/sanitize/registry.py with a reason"
        )


class DetSan:
    """The shadow tracker guard proxies report into."""

    def __init__(self, registry: Optional[Dict[str, str]] = None):
        #: label -> reason; mutations on these labels are exempt.
        self.registry = dict(
            runtime_labels() if registry is None else registry
        )
        self._scopes: List[object] = []
        #: (label, key) -> owning query scope.
        self._owner: Dict[Tuple[str, object], object] = {}
        #: label -> mutation count (scoped or not).
        self.counts: Dict[str, int] = {}
        #: label -> count of mutations observed under some query scope.
        self.scoped_counts: Dict[str, int] = {}
        self.violations: List[IsolationViolation] = []
        self._installed: List[Tuple[object, str, object]] = []

    # --------------------------------------------------------------- scoping
    @property
    def current(self) -> Optional[object]:
        return self._scopes[-1] if self._scopes else None

    def scope(self, query: object) -> "_Scope":
        """Context manager: mutations inside belong to ``query``."""
        return _Scope(self, query)

    # -------------------------------------------------------------- tracking
    def note(self, label: str, op: str, key: object = None) -> None:
        """Record one mutation of ``label`` at entry ``key``."""
        self.counts[label] = self.counts.get(label, 0) + 1
        query = self.current
        if query is None:
            return
        self.scoped_counts[label] = self.scoped_counts.get(label, 0) + 1
        if label in self.registry:
            return
        try:
            hash(key)
        except TypeError:
            key = None
        entry = (label, key)
        owner = self._owner.get(entry)
        if owner is None:
            self._owner[entry] = query
        elif owner != query:
            violation = IsolationViolation(label, op, key, owner, query)
            self.violations.append(violation)
            raise violation

    def forget(self, label: str, key: object = None) -> None:
        """Entry removed: release ownership (per-query lifecycle)."""
        try:
            hash(key)
        except TypeError:
            key = None
        self._owner.pop((label, key), None)

    def reset(self, label: str) -> None:
        """Structure cleared: release every entry of ``label``."""
        for entry in [e for e in self._owner if e[0] == label]:
            del self._owner[entry]

    # ---------------------------------------------------------------- guards
    def guard_dict(self, mapping: dict, label: str) -> dict:
        cls = (
            GuardedOrderedDict
            if isinstance(mapping, OrderedDict)
            else GuardedDict
        )
        guarded = cls(mapping)
        guarded._ds = self
        guarded._label = label
        return guarded

    def guard_list(self, items: list, label: str) -> list:
        guarded = GuardedList(items)
        guarded._ds = self
        guarded._label = label
        return guarded

    def guard_set(self, items: set, label: str) -> set:
        guarded = GuardedSet(items)
        guarded._ds = self
        guarded._label = label
        return guarded

    # --------------------------------------------------- engine installation
    def install_engine(self, engine) -> None:
        """Guard the engine-lifetime shared caches (worker-side state).

        Covers the block-decode cache every worker reads through, the
        compiled-kernel memo, and the module-level LIKE cache — the
        structures serial phase-A execution mutates across queries."""
        from repro.executor import expr as expr_module

        engine.detsan = self
        cache = getattr(engine, "block_cache", None)
        if cache is not None and not isinstance(cache._entries, GuardedOrderedDict):
            self._swap(cache, "_entries", "BlockDecodeCache._entries")
        if not isinstance(engine.kernel_cache, GuardedDict):
            self._swap(engine, "kernel_cache", "Engine.kernel_cache")
        if not isinstance(expr_module._LIKE_CACHE, GuardedDict):
            self._swap(expr_module, "_LIKE_CACHE", "_LIKE_CACHE")

    def uninstall_engine(self, engine) -> None:
        """Restore every structure :meth:`install_engine` replaced."""
        engine.detsan = None
        for holder, attr, original in reversed(self._installed):
            guarded = getattr(holder, attr)
            original.clear()
            original.update(guarded)
            setattr(holder, attr, original)
        self._installed = []

    def _swap(self, holder, attr: str, label: str) -> None:
        original = getattr(holder, attr)
        setattr(holder, attr, self.guard_dict(original, label))
        self._installed.append((holder, attr, original))

    # --------------------------------------------------------------- reports
    @property
    def total_mutations(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> dict:
        return {
            "structures": {
                label: self.counts[label] for label in sorted(self.counts)
            },
            "total_mutations": self.total_mutations,
            "scoped_mutations": sum(self.scoped_counts.values()),
            "tracked_entries": len(self._owner),
            "violations": [str(v) for v in self.violations],
        }


class _Scope:
    def __init__(self, ds: DetSan, query: object):
        self._ds = ds
        self._query = query

    def __enter__(self) -> "_Scope":
        self._ds._scopes.append(self._query)
        return self

    def __exit__(self, *exc) -> None:
        self._ds._scopes.pop()


# ------------------------------------------------------------------- proxies
class _Guarded:
    """Shared plumbing: guards report to their DetSan, if attached."""

    _ds: Optional[DetSan] = None
    _label: str = "?"

    def _note(self, op: str, key: object = None) -> None:
        if self._ds is not None:
            self._ds.note(self._label, op, key)

    def _forget(self, key: object = None) -> None:
        if self._ds is not None:
            self._ds.forget(self._label, key)

    def _reset(self) -> None:
        if self._ds is not None:
            self._ds.reset(self._label)


class _DictGuards(_Guarded):
    def __setitem__(self, key, value):
        self._note("setitem", key)
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._note("delitem", key)
        super().__delitem__(key)
        self._forget(key)

    def pop(self, key, *default):
        self._note("pop", key)
        result = super().pop(key, *default)
        self._forget(key)
        return result

    def popitem(self, *args):
        self._note("popitem")
        key, value = super().popitem(*args)
        self._forget(key)
        return key, value

    def setdefault(self, key, default=None):
        if key not in self:
            self._note("setdefault", key)
        return super().setdefault(key, default)

    def update(self, *args, **kwargs):
        incoming = dict(*args, **kwargs)
        for key in incoming:
            self._note("update", key)
        super().update(incoming)

    def clear(self):
        self._note("clear")
        super().clear()
        self._reset()


class GuardedDict(_DictGuards, dict):
    """A dict that reports every mutation to a :class:`DetSan`."""


class GuardedOrderedDict(_DictGuards, OrderedDict):
    """OrderedDict flavor (the block cache's LRU map)."""


class GuardedList(_Guarded, list):
    """A list that reports every mutation (whole-structure ownership)."""

    def append(self, value):
        self._note("append")
        super().append(value)

    def extend(self, values):
        self._note("extend")
        super().extend(values)

    def insert(self, index, value):
        self._note("insert")
        super().insert(index, value)

    def remove(self, value):
        self._note("remove")
        super().remove(value)

    def pop(self, *args):
        self._note("pop")
        result = super().pop(*args)
        if not self:
            self._reset()
        return result

    def clear(self):
        self._note("clear")
        super().clear()
        self._reset()

    def sort(self, **kwargs):
        self._note("sort")
        super().sort(**kwargs)

    def reverse(self):
        self._note("reverse")
        super().reverse()

    def __setitem__(self, index, value):
        self._note("setitem")
        super().__setitem__(index, value)

    def __delitem__(self, index):
        self._note("delitem")
        super().__delitem__(index)
        if not self:
            self._reset()

    def __iadd__(self, values):
        self._note("iadd")
        return super().__iadd__(values)


class GuardedSet(_Guarded, set):
    """A set that reports every mutation (per-element ownership)."""

    def add(self, value):
        self._note("add", value)
        super().add(value)

    def discard(self, value):
        self._note("discard", value)
        super().discard(value)
        self._forget(value)

    def remove(self, value):
        self._note("remove", value)
        super().remove(value)
        self._forget(value)

    def pop(self):
        self._note("pop")
        value = super().pop()
        self._forget(value)
        return value

    def clear(self):
        self._note("clear")
        super().clear()
        self._reset()

    def update(self, *others):
        for other in others:
            for value in other:
                self._note("update", value)
        super().update(*others)

    def __ior__(self, other):
        for value in other:
            self._note("ior", value)
        return super().__ior__(other)
