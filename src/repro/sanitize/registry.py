"""The shared-state registry: every deliberately-shared mutable.

This file is the single source of truth consumed by **both** isolation
checkers:

* lint rule **R7 cross-query-isolation** parses the :data:`SHARED_STATE`
  literal out of this module's AST (of the tree being linted, so tests
  can plant their own copies) and exempts writes to registered state;
* the **DetSan** runtime sanitizer (:mod:`repro.sanitize`) allows
  cross-query mutations of guarded structures whose label matches a
  registered entry, and raises :class:`~repro.sanitize.IsolationViolation`
  for everything else.

Keys are ``"<repo-relative-path>::<qualname>"`` — the same shape the
lint call graph uses — where the qualname is the module-level name or
``Class.attribute`` of the shared structure.  Values are the human
reason the sharing is sound.  An entry here is a *claim* that concurrent
queries may mutate the structure without breaking the serial≡concurrent
bit-identity contract; keep the reason concrete enough to audit.

The dict literal must stay statically evaluable (string keys/values
only): R7 reads it with ``ast.literal_eval`` without importing the
module.
"""

from __future__ import annotations

from typing import Dict

#: ``path::qualname`` → why cross-query mutation is sound.
SHARED_STATE: Dict[str, str] = {
    # --- pure memo caches: value is a pure function of the key, so the
    # --- winner of any write race stores the same value every run.
    "src/repro/executor/expr.py::_LIKE_CACHE": (
        "pure memo (LIKE pattern -> compiled regex); the value depends "
        "only on the key, so concurrent fills are idempotent"
    ),
    # --- scheduler slot bookkeeping: contention is the *product* here.
    # --- Per-segment slots are shared by design; determinism is
    # --- guaranteed by the (ready_time, key) drain order, which R8
    # --- polices statically.
    "src/repro/simtime/scheduler.py::EventScheduler._busy": (
        "per-segment slot occupancy is the cross-query contention the "
        "scheduler models; drain order is pinned to (ready_time, key)"
    ),
    "src/repro/simtime/scheduler.py::EventScheduler._parked": (
        "queue of tasks waiting for a busy slot; shared across queries "
        "by design, drained in sorted (ready_time, key) order"
    ),
    "src/repro/simtime/scheduler.py::EventScheduler._heap": (
        "the event heap interleaves all queries' arrivals/finishes; "
        "entries carry (time, rank, seq, key) so pops are total-ordered"
    ),
    # --- resource queue admission: the whole point is cross-query
    # --- arbitration of slots/memory; drain order is pinned to
    # --- (-priority, arrival, query_id).
    "src/repro/cluster/resqueue.py::_QueueState.running": (
        "admission control arbitrates slots across queries by design; "
        "release/admit order is pinned to (-priority, arrival, query_id)"
    ),
    "src/repro/cluster/resqueue.py::_QueueState.waiting": (
        "head-of-line wait list shared across queries by design; "
        "sorted by (-priority, arrival, query_id) before every drain"
    ),
    # --- segment-local services that outlive any one query.
    "src/repro/cluster/worker.py::SegmentWorker._task": (
        "one serialized task slot per worker: the RPC bus delivers one "
        "DISPATCH at a time, so the previous query's task is always "
        "fully retired before the next overwrite"
    ),
    "src/repro/cluster/worker.py::SegmentWorker._ctx": (
        "paired with _task: per-dispatch execution context, serialized "
        "by the one-task-at-a-time worker loop"
    ),
    "src/repro/storage/cache.py::BlockDecodeCache._entries": (
        "the segment block cache is engine-lifetime shared by design; "
        "epoch keys invalidate staleness and hit-replay recharges the "
        "same simulated cost, keeping results bit-identical"
    ),
    "src/repro/engine.py::Engine.kernel_cache": (
        "engine-lifetime memo of compiled expression kernels keyed by "
        "(kind, expr, layout); compilation is pure so refills are "
        "idempotent"
    ),
}


def runtime_labels() -> Dict[str, str]:
    """Registry keyed by bare ``qualname`` for the runtime sanitizer.

    DetSan guards know their structure as ``Class.attr`` (no file path),
    so the runtime lookup drops the path half of the static key.
    """
    return {key.split("::", 1)[1]: reason for key, reason in SHARED_STATE.items()}
