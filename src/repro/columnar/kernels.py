"""Vectorized kernel fast paths over typed column vectors.

Every helper here returns a vector result when the operand
representations support an exact vectorized evaluation, or ``None`` to
make the caller fall back to the generic per-value path. "Exact" is
load-bearing: the row/batch differential contract requires *identical*
values, so a fast path is only taken when it provably reproduces Python
semantics —

* int comparisons/remainder stay in int64 (storage packs ``<q``, so
  inputs always fit; remainder of in-range ints cannot overflow);
* int operands only meet float64 when they are compile-time constants
  with ``|c| <= 2**53`` (exactly representable), never via a lossy
  runtime int64→float64 cast;
* int ``+``/``-``/``*`` are **not** fast-pathed at all — Python ints
  are arbitrary precision and int64 would silently wrap;
* float ``+``/``-``/``*`` are elementwise (one operation per row), so
  IEEE results match the scalar path bit for bit;
* dictionary-encoded strings evaluate the predicate once per dictionary
  entry and map codes through the resulting lookup table.

NULLs use Kleene semantics throughout: value arrays may hold garbage at
NULL positions because the mask wins.
"""

from __future__ import annotations

from typing import Optional

from repro.columnar.vector import (
    BoolVector,
    ConstVector,
    DictVector,
    FloatVector,
    IntVector,
    Vector,
    numpy_module,
)

#: Largest magnitude at which every int is exactly representable in
#: float64; int constants beyond it never take a mixed int/float path.
_EXACT_FLOAT_INT = 2**53


def _null_array(np, mask, n):
    """Null mask as a bool ndarray (all-False when ``mask`` is None)."""
    if mask is None:
        return np.zeros(n, dtype=bool)
    return np.asarray(mask, dtype=bool)


def _merge_masks(np, a: Vector, b: Vector):
    if a.mask is None and b.mask is None:
        return None
    return _null_array(np, a.mask, len(a)) | _null_array(np, b.mask, len(b))


def _numeric_pair_ok(vec, const) -> bool:
    """May ``vec <op> const`` run on the typed buffer without widening?"""
    if isinstance(vec, IntVector):
        return type(const) is int
    if isinstance(vec, FloatVector):
        if type(const) is float:
            return True
        return type(const) is int and abs(const) <= _EXACT_FLOAT_INT
    return False


def _lut_apply(np, codes_vec: DictVector, lut):
    """Map a per-dictionary-entry bool LUT over the codes; NULL codes
    (< 0) become NULL in the result."""
    codes = codes_vec.data
    null = codes < 0
    if lut:
        table = np.asarray(lut, dtype=bool)
        data = table[np.where(null, 0, codes)]
    else:  # all-NULL column: empty dictionary
        data = np.zeros(len(codes), dtype=bool)
    data = data & ~null
    return BoolVector(data, null if null.any() else None)


# ------------------------------------------------------------- comparisons
def cmp_fast(py_op, l, r) -> Optional[object]:
    """Vectorized SQL comparison (NULL-propagating), or None."""
    np = numpy_module()
    if np is None:
        return None
    l_const = isinstance(l, ConstVector)
    r_const = isinstance(r, ConstVector)
    if l_const and r_const:
        a, b = l.value, r.value
        out = None if a is None or b is None else py_op(a, b)
        return ConstVector(out, len(l))
    if l_const or r_const:
        vec, const, flipped = (r, l.value, True) if l_const else (l, r.value, False)
        if const is None:
            return ConstVector(None, len(vec))
        if isinstance(vec, DictVector) and type(const) is str and vec.is_numpy():
            if flipped:
                lut = [py_op(const, s) for s in vec.dictionary]
            else:
                lut = [py_op(s, const) for s in vec.dictionary]
            return _lut_apply(np, vec, lut)
        if _numeric_pair_ok(vec, const) and vec.is_numpy():
            data = py_op(const, vec.data) if flipped else py_op(vec.data, const)
            mask = None if vec.mask is None else np.asarray(vec.mask, bool)
            return BoolVector(data, mask)
        return None
    if (
        type(l) is type(r)
        and isinstance(l, (IntVector, FloatVector))
        and l.is_numpy()
        and r.is_numpy()
    ):
        return BoolVector(py_op(l.data, r.data), _merge_masks(np, l, r))
    return None


# -------------------------------------------------------------- arithmetic
def arith_fast(op: str, l, r) -> Optional[Vector]:
    """Vectorized ``+``/``-``/``*`` (floats) and ``%`` (int by nonzero
    int constant), or None."""
    np = numpy_module()
    if np is None:
        return None
    if op == "%":
        if (
            isinstance(l, IntVector)
            and l.is_numpy()
            and isinstance(r, ConstVector)
            and type(r.value) is int
            and r.value != 0
        ):
            mask = None if l.mask is None else np.asarray(l.mask, bool)
            return IntVector(np.remainder(l.data, r.value), mask)
        return None
    if op not in ("+", "-", "*"):
        return None
    py_op = {"+": np.add, "-": np.subtract, "*": np.multiply}[op]
    if (
        isinstance(l, FloatVector)
        and isinstance(r, FloatVector)
        and l.is_numpy()
        and r.is_numpy()
    ):
        return FloatVector(py_op(l.data, r.data), _merge_masks(np, l, r))
    for vec, other, flipped in ((l, r, False), (r, l, True)):
        if (
            isinstance(vec, FloatVector)
            and vec.is_numpy()
            and isinstance(other, ConstVector)
        ):
            const = other.value
            if const is None:
                return ConstVector(None, len(vec))
            if not _numeric_pair_ok(vec, const):
                return None
            data = py_op(const, vec.data) if flipped else py_op(vec.data, const)
            mask = None if vec.mask is None else np.asarray(vec.mask, bool)
            return FloatVector(data, mask)
    return None


# ---------------------------------------------------------- Kleene logic
def _bool_parts(np, v):
    """(truth, null) bool arrays of a predicate result, or None."""
    if isinstance(v, BoolVector) and v.is_numpy():
        data = np.asarray(v.data, dtype=bool)
        return data, _null_array(np, v.mask, len(data))
    if isinstance(v, ConstVector) and (
        v.value is None or isinstance(v.value, bool)
    ):
        n = len(v)
        if v.value is None:
            return np.zeros(n, dtype=bool), np.ones(n, dtype=bool)
        return np.full(n, v.value, dtype=bool), np.zeros(n, dtype=bool)
    return None


def kleene_and(l, r) -> Optional[BoolVector]:
    np = numpy_module()
    if np is None:
        return None
    pl, pr = _bool_parts(np, l), _bool_parts(np, r)
    if pl is None or pr is None:
        return None
    ld, ln = pl
    rd, rn = pr
    false = (~ln & ~ld) | (~rn & ~rd)
    null = ~false & (ln | rn)
    return BoolVector(~false & ~null, null if null.any() else None)


def kleene_or(l, r) -> Optional[BoolVector]:
    np = numpy_module()
    if np is None:
        return None
    pl, pr = _bool_parts(np, l), _bool_parts(np, r)
    if pl is None or pr is None:
        return None
    ld, ln = pl
    rd, rn = pr
    true = (~ln & ld) | (~rn & rd)
    null = ~true & (ln | rn)
    return BoolVector(true, null if null.any() else None)


def not_fast(v) -> Optional[object]:
    np = numpy_module()
    if isinstance(v, ConstVector):
        return ConstVector(None if v.value is None else not v.value, len(v))
    if np is not None and isinstance(v, BoolVector) and v.is_numpy():
        return BoolVector(~np.asarray(v.data, dtype=bool), v.mask)
    return None


# ------------------------------------------------------- null tests / LIKE
def isnull_fast(v, negated: bool) -> Optional[object]:
    np = numpy_module()
    if isinstance(v, ConstVector):
        is_null = v.value is None
        return ConstVector((not is_null) if negated else is_null, len(v))
    if np is None or not isinstance(v, Vector) or not v.is_numpy():
        return None
    if isinstance(v, DictVector):
        null = v.data < 0
    else:
        null = _null_array(np, v.mask, len(v))
    return BoolVector(~null if negated else null.copy(), None)


def like_fast(v, match, negated: bool) -> Optional[object]:
    """``match`` is the compiled pattern's ``.match``; LUT over the
    dictionary, then code mapping."""
    np = numpy_module()
    if isinstance(v, ConstVector):
        if v.value is None:
            return ConstVector(None, len(v))
        hit = match(v.value) is not None
        return ConstVector((not hit) if negated else hit, len(v))
    if np is None or not isinstance(v, DictVector) or not v.is_numpy():
        return None
    if negated:
        lut = [match(s) is None for s in v.dictionary]
    else:
        lut = [match(s) is not None for s in v.dictionary]
    return _lut_apply(np, v, lut)


def in_const_fast(v, items: tuple, negated: bool) -> Optional[object]:
    """``x IN (consts)``: dictionary LUT for strings, ``np.isin`` for
    int vectors against all-int item lists."""
    np = numpy_module()
    if isinstance(v, ConstVector):
        if v.value is None:
            return ConstVector(None, len(v))
        found = v.value in items
        return ConstVector((not found) if negated else found, len(v))
    if np is None or not isinstance(v, Vector) or not v.is_numpy():
        return None
    if isinstance(v, DictVector):
        lut = [((s in items) != negated) for s in v.dictionary]
        return _lut_apply(np, v, lut)
    if isinstance(v, IntVector) and all(type(i) is int for i in items):
        found = np.isin(v.data, np.array(items, dtype=np.int64))
        data = ~found if negated else found
        mask = None if v.mask is None else np.asarray(v.mask, bool)
        return BoolVector(data, mask)
    return None


def str_map_fast(v, fn) -> Optional[DictVector]:
    """Apply a string→string function through the dictionary (upper/
    lower): same codes, transformed dictionary — no per-row work."""
    if isinstance(v, DictVector):
        return DictVector(v.data, [fn(s) for s in v.dictionary])
    return None
