"""Typed column vectors with explicit null masks.

A vector is ``count`` SQL values stored as a typed buffer — a NumPy
array when NumPy is importable, a pure-python :mod:`array` otherwise —
plus an explicit null mask replacing the old ``None``-in-object-list
convention. Strings are dictionary-encoded: a codes vector plus the
block's value dictionary, with code ``-1`` marking NULL, so equality,
LIKE and IN can run over the (small) dictionary instead of every row.

The contract every consumer relies on:

* ``vec[i]``, ``iter(vec)`` and ``vec.tolist()`` yield **Python**
  scalars (``int``/``float``/``str``/``bool``/``None``) — never NumPy
  scalars. Row hashing (``hash_values`` reprs values) and the row/batch
  differential tests depend on exact Python types.
* Vectors are read-only by convention: kernels build new vectors, they
  never mutate inputs (a projection may alias an input column).

Backend selection happens per construction call by reading the module
global ``_np``; setting ``REPRO_NO_NUMPY=1`` (or monkeypatching
``_np = None`` in tests) forces the pure-python fallback, which must
stay behaviorally identical.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterator, List, Optional, Sequence

try:  # pragma: no cover - exercised via REPRO_NO_NUMPY in CI
    if os.environ.get("REPRO_NO_NUMPY"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover - image always has numpy
    _np = None

#: Whether the NumPy backend was importable (and not disabled) at load.
NUMPY_AVAILABLE = _np is not None


def numpy_module():
    """The active NumPy module, or None under the pure-python fallback.

    Read dynamically so tests can monkeypatch ``vector._np`` and force
    both construction and kernel dispatch onto the fallback path.
    """
    return _np


def _is_np_array(data) -> bool:
    return _np is not None and isinstance(data, _np.ndarray)


class Vector:
    """Base class: typed buffer + optional null mask + cached tolist."""

    __slots__ = ("data", "mask", "_values")

    def __init__(self, data, mask=None):
        self.data = data
        #: None (no NULLs) or a bool sequence, True where the row is NULL.
        self.mask = mask
        self._values: Optional[list] = None

    # --------------------------------------------------- sequence protocol
    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, i):
        mask = self.mask
        if mask is not None and mask[i]:
            return None
        return self._scalar(self.data[i])

    def __iter__(self) -> Iterator[object]:
        return iter(self.tolist())

    def tolist(self) -> list:
        """Materialize (and cache) the Python-value view of the vector."""
        values = self._values
        if values is None:
            values = self._materialize()
            self._values = values
        return values

    # ------------------------------------------------------------ helpers
    @property
    def has_nulls(self) -> bool:
        mask = self.mask
        if mask is None:
            return False
        if _is_np_array(mask):
            return bool(mask.any())
        return any(mask)

    def is_numpy(self) -> bool:
        """True when this vector's buffer is on the active NumPy backend."""
        return _is_np_array(self.data)

    def take(self, sel: Sequence[int]) -> "Vector":
        """New same-typed vector of the rows selected by ``sel``."""
        data, mask = self.data, self.mask
        if _is_np_array(data):
            idx = _np.asarray(sel, dtype=_np.intp)
            return type(self)(
                data[idx], None if mask is None else _np.asarray(mask)[idx]
            )
        taken = array(data.typecode, [data[i] for i in sel]) if isinstance(
            data, array
        ) else [data[i] for i in sel]
        if mask is None:
            return type(self)(taken, None)
        return type(self)(taken, [mask[i] for i in sel])

    def gather(self, sel: Sequence[int]) -> list:
        """Python values of the selected rows (late materialization)."""
        values = self._values
        if values is not None:
            return [values[i] for i in sel]
        if _is_np_array(self.data):
            return self.take(sel).tolist()
        return [self[i] for i in sel]

    # ---------------------------------------------------------- subclass
    @staticmethod
    def _scalar(raw):  # pragma: no cover - overridden
        raise NotImplementedError

    def _materialize(self) -> list:  # pragma: no cover - overridden
        raise NotImplementedError

    def _plain_list(self) -> list:
        """data as Python scalars ignoring the mask."""
        data = self.data
        if _is_np_array(data):
            return data.tolist()
        if isinstance(data, array):
            return data.tolist()
        return list(data)

    def _masked_list(self) -> list:
        values = self._plain_list()
        mask = self.mask
        if mask is not None:
            if _is_np_array(mask):
                mask = mask.tolist()
            values = [
                None if null else value for value, null in zip(values, mask)
            ]
        return values


class IntVector(Vector):
    """int64 values (INT4/INT8 columns and integer kernel results)."""

    @staticmethod
    def _scalar(raw) -> int:
        return int(raw)

    def _materialize(self) -> list:
        return self._masked_list()


class FloatVector(Vector):
    """float64 values (FLOAT8/DECIMAL columns and float kernel results)."""

    @staticmethod
    def _scalar(raw) -> float:
        return float(raw)

    def _materialize(self) -> list:
        return self._masked_list()


class BoolVector(Vector):
    """Three-valued booleans: data is the truth value, mask marks NULL.

    The representation of predicate results on the fast path; iterating
    yields exactly ``True``/``False``/``None``.
    """

    @staticmethod
    def _scalar(raw) -> bool:
        return bool(raw)

    def _materialize(self) -> list:
        return self._masked_list()


class DictVector(Vector):
    """Dictionary-encoded strings: codes + per-block value dictionary.

    ``data`` holds int codes (``-1`` is NULL — no separate mask), and
    ``dictionary[code]`` the decoded string. The dictionary's str
    objects are shared by every materialized row, so flowing a dict
    column through filter/group/join costs no per-row decoding.
    """

    __slots__ = ("dictionary",)

    def __init__(self, codes, dictionary: List[str]):
        super().__init__(codes, None)
        self.dictionary = dictionary

    def __getitem__(self, i):
        code = self.data[i]
        if code < 0:
            return None
        return self.dictionary[code]

    def _materialize(self) -> list:
        dictionary = self.dictionary
        codes = self.data
        if _is_np_array(codes) or isinstance(codes, array):
            codes = codes.tolist()
        return [None if c < 0 else dictionary[c] for c in codes]

    @property
    def has_nulls(self) -> bool:
        data = self.data
        if _is_np_array(data):
            return bool((data < 0).any())
        return any(c < 0 for c in data)

    def take(self, sel: Sequence[int]) -> "DictVector":
        data = self.data
        if _is_np_array(data):
            idx = _np.asarray(sel, dtype=_np.intp)
            return DictVector(data[idx], self.dictionary)
        return DictVector(
            array("q", [data[i] for i in sel]), self.dictionary
        )

    def code_lut(self, fn) -> list:
        """Apply ``fn`` once per dictionary entry; returns a list indexed
        by code (the heart of dict-encoded LIKE/IN/comparison)."""
        return [fn(value) for value in self.dictionary]


class ConstVector:
    """A constant repeated ``n`` times without materializing a list.

    Compiled constants (literals, InitPlan params, undecoded-column NULL
    placeholders) return this; kernels can recognize it to specialize
    vector-vs-scalar operations.
    """

    __slots__ = ("value", "n")

    def __init__(self, value, n: int):
        self.value = value
        self.n = n

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i):
        return self.value

    def __iter__(self) -> Iterator[object]:
        value = self.value
        for _ in range(self.n):
            yield value

    def tolist(self) -> list:
        return [self.value] * self.n

    def take(self, sel: Sequence[int]) -> "ConstVector":
        return ConstVector(self.value, len(sel))

    def gather(self, sel: Sequence[int]) -> list:
        return [self.value] * len(sel)


# ------------------------------------------------------------- constructors
def int_vector(values: Sequence[int], mask=None) -> IntVector:
    """IntVector from Python ints (all in int64 range)."""
    if _np is not None:
        return IntVector(_np.array(values, dtype=_np.int64), mask)
    return IntVector(array("q", values), mask)


def float_vector(values: Sequence[float], mask=None) -> FloatVector:
    if _np is not None:
        return FloatVector(_np.array(values, dtype=_np.float64), mask)
    return FloatVector(array("d", values), mask)


def bool_vector(values: Sequence[bool], mask=None) -> BoolVector:
    if _np is not None:
        return BoolVector(_np.array(values, dtype=bool), mask)
    return BoolVector(list(values), mask)


def numeric_from_bytes(buf, is_float: bool, count: int):
    """Vector over ``count`` packed little-endian 8-byte values with no
    NULLs — the zero-copy storage decode fast path."""
    if _np is not None:
        data = _np.frombuffer(buf, dtype="<f8" if is_float else "<i8",
                              count=count)
        return FloatVector(data) if is_float else IntVector(data)
    data = array("d" if is_float else "q")
    data.frombytes(bytes(buf))
    return FloatVector(data) if is_float else IntVector(data)


def numeric_from_packed(buf, is_float: bool, count: int, null_flags):
    """Vector where ``buf`` packs only the non-NULL values and
    ``null_flags`` (len ``count``) says which rows are NULL."""
    packed = numeric_from_bytes(buf, is_float, count - sum(null_flags))
    if _np is not None:
        mask = _np.array(null_flags, dtype=bool)
        data = _np.zeros(count, dtype=packed.data.dtype)
        data[~mask] = packed.data
        return FloatVector(data, mask) if is_float else IntVector(data, mask)
    data = array("d" if is_float else "q", bytes(8 * count))
    j = 0
    for i, null in enumerate(null_flags):
        if not null:
            data[i] = packed.data[j]
            j += 1
    return (FloatVector if is_float else IntVector)(data, list(null_flags))


def dict_vector(codes: Sequence[int], dictionary: List[str]) -> DictVector:
    if _np is not None:
        return DictVector(_np.array(codes, dtype=_np.int64), dictionary)
    return DictVector(array("q", codes), dictionary)


# ------------------------------------------------------------ materializers
def as_list(col) -> list:
    """Plain Python-value list view of any column representation."""
    if isinstance(col, (Vector, ConstVector)):
        return col.tolist()
    return col


def gather(col, sel: Sequence[int]) -> list:
    """Python values of ``col`` at the selected row indices."""
    if isinstance(col, (Vector, ConstVector)):
        return col.gather(sel)
    return [col[i] for i in sel]


def true_selection(mask, n: int, sel: Optional[List[int]]) -> List[int]:
    """Row indices where a predicate result is exactly TRUE.

    ``mask`` is aligned with ``sel`` (or with ``range(n)`` when ``sel``
    is None); the returned indices are in the *input's* row space, in
    ascending order — always a plain list of Python ints.
    """
    if isinstance(mask, BoolVector) and _is_np_array(mask.data):
        hits = mask.data if mask.mask is None else mask.data & ~_np.asarray(
            mask.mask
        )
        idx = _np.nonzero(hits)[0]
        if sel is None:
            return idx.tolist()
        return [sel[j] for j in idx.tolist()]
    indices = range(n) if sel is None else sel
    return [i for i, m in zip(indices, mask) if m is True]
