"""Typed column vectors for the vectorized executor.

This package is the representation layer underneath
:mod:`repro.executor.batch`: storage decoders produce these vectors,
batch kernels consume them, and every vector duck-types as a read-only
sequence of *Python* values (``vec[i]``/``iter(vec)``/``vec.tolist()``
never leak NumPy scalars), so any operator that treats a column as a
plain list keeps working unchanged.
"""

from repro.columnar.vector import (
    NUMPY_AVAILABLE,
    BoolVector,
    ConstVector,
    DictVector,
    FloatVector,
    IntVector,
    Vector,
    as_list,
    gather,
    numpy_module,
)

__all__ = [
    "NUMPY_AVAILABLE",
    "BoolVector",
    "ConstVector",
    "DictVector",
    "FloatVector",
    "IntVector",
    "Vector",
    "as_list",
    "gather",
    "numpy_module",
]
