"""Structured tracing of one query on the simulated clock.

The recorder side is deliberately dumb: during execution every layer
(RPC bus, segment workers, slice operators, storage scans, the exchange
fabric) appends *relative* marks — ``t`` values read off the task's own
:class:`~repro.simtime.CostAccumulator` — plus a flat log of RPC
protocol events. Nothing here ever charges the clock or mutates cost
state (lint R6); a trace records time, it never spends it.

Absolute placement happens once, at gather time: the runtime hands the
recorder the :class:`~repro.simtime.scheduler.EventScheduler` output and
:meth:`QueryTrace.assemble` turns each (slice, segment) task into a root
span occupying exactly the scheduler's ``[start, finish]`` window
(shifted by the master's dispatch overhead), with the task's operator
marks mapped proportionally into that window. The scheduler computes
task windows from the *gang-mean* duration, so a task whose own
accumulator ran long or short is scaled to fit — the raw accumulator
seconds stay available on every span as ``acc_seconds``. By
construction, the latest root span end equals the query's
``cost.seconds`` bit-for-bit (the differential test asserts this), so a
trace is a faithful decomposition of the makespan.

A query that restarts (chaos, dead segments) keeps its RPC event log
across attempts — that log is what the chaos trace invariant checks —
but only the final, successful attempt contributes spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: RPC protocol event kinds mirrored from :mod:`repro.cluster.rpc`
#: (string literals to keep obs import-free of the runtime), plus two
#: recorder-synthesized kinds.
DISPATCH = "dispatch"
ACK = "ack"
COMPLETE = "complete"
ABORT = "abort"
#: Synthetic closure of an outstanding DISPATCH when an attempt aborts
#: (a dead channel receives no wire ABORT; the master still accounts
#: for the task it will never hear from again).
ABORT_CLOSE = "abort-close"
#: A worker's RPC channel was dropped (the process was killed).
DROP = "drop"
#: A dropped endpoint was re-registered: a replacement process revived
#: the dead segment's name (bounded query restart, paper Section 2.6).
REVIVE = "revive"

#: Track name of the master (QD) row; QD-gang tasks render here too.
MASTER_TRACK = "master"


def _track(segment: Optional[int]) -> str:
    if segment is None or segment < 0:
        return MASTER_TRACK
    return f"seg{segment}"


@dataclass
class Span:
    """One closed interval on a track, in absolute simulated seconds."""

    name: str
    #: "master" | "task" | "exec" | "storage"
    cat: str
    track: str
    start: float
    end: float
    slice_id: Optional[int] = None
    segment: Optional[int] = None
    #: ``id()`` of the plan node this span executed, when it maps to
    #: one — EXPLAIN (ANALYZE, VERBOSE) aggregates per-operator stats
    #: through this key.
    node_key: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Instant:
    """A zero-duration event (RPC message, motion stream delivery)."""

    name: str
    cat: str
    track: str
    ts: float
    attrs: Dict[str, object] = field(default_factory=dict)


@dataclass
class RpcEvent:
    """One control-plane protocol event, in bus order."""

    attempt: int
    seq: int
    kind: str
    slice_id: Optional[int]
    segment: Optional[int]
    sender: str
    dest: str
    size: int = 0
    #: Engine-wide statement id the message carried (0 = untagged).
    query_id: int = 0


@dataclass
class _OpMark:
    """A worker-side relative mark: ``[t0, t1]`` on the task's own
    accumulator clock, placed into the task window at assembly."""

    name: str
    cat: str
    t0: float
    t1: float
    node_key: Optional[int]
    attrs: Dict[str, object]


@dataclass
class _StreamMark:
    slice_id: int
    sender: int
    receiver: int
    rows: int
    nbytes: int


class QueryTrace:
    """Recorder + assembled trace for one statement."""

    def __init__(self, label: str = "", num_segments: int = 0,
                 query_id: int = 0):
        self.label = label
        self.num_segments = num_segments
        #: Engine-wide statement id. Every RPC event recorded into this
        #: trace must carry the same id — concurrent sessions may never
        #: bleed protocol traffic into each other's trace.
        self.query_id = query_id
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.rpc_events: List[RpcEvent] = []
        self.attempts = 0
        #: Filled by :meth:`finalize` from the QueryResult.
        self.makespan = 0.0
        self.overhead = 0.0
        self.total_seconds = 0.0
        self.retries = 0
        self._cursor = 0.0
        self._marks: Dict[Tuple[int, int], List[_OpMark]] = {}
        self._streams: List[_StreamMark] = []
        self._rpc_emitted = 0

    # ----------------------------------------------------------- recording
    def begin_attempt(self) -> None:
        """A fresh dispatch attempt: marks from a failed attempt never
        become spans (the RPC event log keeps the failure's history)."""
        self.attempts += 1
        self._marks.clear()
        self._streams.clear()

    def on_rpc(self, sender: str, dest: str, message) -> None:
        """Record one control message leaving the bus (post open-check:
        a send that raises ``SegmentDown`` was never sent)."""
        kind = message.kind
        slice_id: Optional[int] = None
        segment: Optional[int] = None
        payload = message.payload
        if kind == DISPATCH:
            task = payload[0]
            slice_id, segment = task.slice_id, task.segment
        elif kind == ACK:
            slice_id, segment = payload
        elif kind == COMPLETE:
            slice_id, segment = payload.slice_id, payload.segment
        elif kind == ABORT:
            segment = _segment_of(dest)
        self.rpc_events.append(
            RpcEvent(
                attempt=self.attempts,
                seq=len(self.rpc_events),
                kind=kind,
                slice_id=slice_id,
                segment=segment,
                sender=sender,
                dest=dest,
                size=message.size,
                query_id=getattr(message, "query_id", 0),
            )
        )

    def on_drop(self, name: str) -> None:
        """A worker process died: its channel closed mid-attempt."""
        self.rpc_events.append(
            RpcEvent(
                attempt=self.attempts,
                seq=len(self.rpc_events),
                kind=DROP,
                slice_id=None,
                segment=_segment_of(name),
                sender=name,
                dest="",
                query_id=self.query_id,
            )
        )

    def on_revive(self, name: str) -> None:
        """A replacement process re-registered a dropped endpoint: the
        segment is alive again — COMPLETEs from it are legitimate."""
        self.rpc_events.append(
            RpcEvent(
                attempt=self.attempts,
                seq=len(self.rpc_events),
                kind=REVIVE,
                slice_id=None,
                segment=_segment_of(name),
                sender=name,
                dest="",
                query_id=self.query_id,
            )
        )

    def attempt_aborted(self) -> None:
        """Close every DISPATCH of the current attempt that saw no
        COMPLETE. Idempotent: a second call finds nothing outstanding,
        so the restart loop and the runtime's abort path can both call
        it without double-closing."""
        for key, count in sorted(self._outstanding(self.attempts).items()):
            for _ in range(count):
                self.rpc_events.append(
                    RpcEvent(
                        attempt=self.attempts,
                        seq=len(self.rpc_events),
                        kind=ABORT_CLOSE,
                        slice_id=key[0],
                        segment=key[1],
                        sender=MASTER_TRACK,
                        dest=_track(key[1]),
                        query_id=self.query_id,
                    )
                )

    def _outstanding(self, attempt: int) -> Dict[Tuple[int, int], int]:
        open_count: Dict[Tuple[int, int], int] = {}
        for event in self.rpc_events:
            if event.attempt != attempt or event.slice_id is None:
                continue
            key = (event.slice_id, event.segment)
            if event.kind == DISPATCH:
                open_count[key] = open_count.get(key, 0) + 1
            elif event.kind in (COMPLETE, ABORT_CLOSE):
                open_count[key] = open_count.get(key, 0) - 1
        return {k: v for k, v in open_count.items() if v > 0}

    def op_mark(
        self,
        slice_id: int,
        segment: int,
        name: str,
        t0: float,
        t1: float,
        cat: str = "exec",
        node_key: Optional[int] = None,
        **attrs: object,
    ) -> None:
        """One operator (or storage-scan) interval on a task's own
        accumulator clock; ``t`` values are monotone within a task."""
        self._marks.setdefault((slice_id, segment), []).append(
            _OpMark(
                name=name, cat=cat, t0=t0, t1=t1, node_key=node_key,
                attrs=dict(attrs),
            )
        )

    def stream(
        self,
        slice_id: int,
        sender: int,
        receiver: int,
        rows: int,
        nbytes: int,
        query_id: int = 0,
    ) -> None:
        """One motion stream crossed the exchange fabric.

        ``query_id`` exists for router compatibility on the shared
        fabric; a per-query trace records only its own streams.
        """
        self._streams.append(
            _StreamMark(
                slice_id=slice_id, sender=sender, receiver=receiver,
                rows=rows, nbytes=nbytes,
            )
        )

    # ------------------------------------------------------------ assembly
    def assemble(self, waves, reports, schedule, master_seconds: float) -> None:
        """Place one executed plan on the absolute timeline.

        Called once per PhysicalPlan execution (init plans assemble
        first, advancing the cursor by exactly their ``cost.seconds``),
        with the scheduler's task windows and the master accumulator's
        dispatch overhead. Consumes the attempt's pending marks.
        """
        t0 = self._cursor
        base = t0 + master_seconds
        task_count = sum(len(wave) for wave in waves)
        self.spans.append(
            Span(
                name="parse/plan/dispatch",
                cat="master",
                track=MASTER_TRACK,
                start=t0,
                end=base,
                attrs={"tasks_dispatched": task_count},
            )
        )
        windows: Dict[Tuple[int, int], Tuple[float, float]] = {}
        for wave in waves:
            for task in wave:
                key = (task.slice_id, task.segment)
                report = reports[key]
                start = base + schedule.start[key]
                end = base + schedule.finish[key]
                windows[key] = (start, end)
                track = _track(task.segment)
                self.spans.append(
                    Span(
                        name=f"slice {task.slice_id}",
                        cat="task",
                        track=track,
                        start=start,
                        end=end,
                        slice_id=task.slice_id,
                        segment=task.segment,
                        attrs={
                            "acc_seconds": report.seconds,
                            "rows_out": report.rows_out,
                            "bytes_out": report.bytes_out,
                            "sched_start": schedule.start[key],
                            "sched_finish": schedule.finish[key],
                        },
                    )
                )
                window = end - start
                total = report.seconds
                scale = window / total if total > 0 else 0.0
                for mark in self._marks.pop(key, []):
                    m_start = start + mark.t0 * scale
                    m_end = min(start + mark.t1 * scale, end)
                    self.spans.append(
                        Span(
                            name=mark.name,
                            cat=mark.cat,
                            track=track,
                            start=min(m_start, m_end),
                            end=m_end,
                            slice_id=task.slice_id,
                            segment=task.segment,
                            node_key=mark.node_key,
                            attrs={
                                **mark.attrs,
                                "acc_seconds": mark.t1 - mark.t0,
                            },
                        )
                    )
        for stream in self._streams:
            key = (stream.slice_id, stream.sender)
            if key not in windows:
                continue
            self.instants.append(
                Instant(
                    name=(
                        f"motion s{stream.slice_id} "
                        f"{_track(stream.sender)}->{_track(stream.receiver)}"
                    ),
                    cat="motion",
                    track=_track(stream.sender),
                    ts=windows[key][1],
                    attrs={"rows": stream.rows, "bytes": stream.nbytes},
                )
            )
        self._streams.clear()
        for event in self.rpc_events[self._rpc_emitted:]:
            key = (event.slice_id, event.segment)
            window = windows.get(key)
            if window is None or event.kind not in (DISPATCH, ACK, COMPLETE):
                continue
            ts = window[1] if event.kind == COMPLETE else window[0]
            self.instants.append(
                Instant(
                    name=f"{event.kind} s{event.slice_id}@{_track(event.segment)}",
                    cat="rpc",
                    track=MASTER_TRACK,
                    ts=ts,
                    attrs={"size": event.size},
                )
            )
        self._rpc_emitted = len(self.rpc_events)
        self._cursor = base + schedule.makespan

    def finalize(self, result) -> None:
        """Copy the result's composed timing onto the trace."""
        self.makespan = result.makespan
        self.overhead = result.overhead_seconds
        self.total_seconds = result.cost.seconds
        self.retries = result.retries

    # ------------------------------------------------------------ analysis
    def root_spans(self) -> List[Span]:
        return [span for span in self.spans if span.cat == "task"]

    def tracks(self) -> List[str]:
        """Every track with at least one span, master first."""
        seen = {span.track for span in self.spans}
        seen.update(instant.track for instant in self.instants)
        ordered = [MASTER_TRACK] if MASTER_TRACK in seen else []
        ordered.extend(
            sorted(t for t in seen if t != MASTER_TRACK)
        )
        return ordered

    def operator_stats(self) -> Dict[int, Dict[str, object]]:
        """Per-plan-node aggregates over all tasks (for EXPLAIN VERBOSE)."""
        out: Dict[int, Dict[str, object]] = {}
        for span in self.spans:
            if span.node_key is None:
                continue
            stats = out.setdefault(
                span.node_key,
                {"name": span.name, "rows": 0, "bytes": 0, "calls": 0,
                 "acc_seconds": 0.0},
            )
            stats["rows"] += span.attrs.get("rows", 0)
            stats["bytes"] += span.attrs.get("bytes", 0)
            stats["calls"] += 1
            stats["acc_seconds"] += span.attrs.get("acc_seconds", 0.0)
        return out

    def scan_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-table storage-layer aggregates (bytes read, cache)."""
        out: Dict[str, Dict[str, object]] = {}
        for span in self.spans:
            if span.cat != "storage":
                continue
            table = span.attrs.get("table")
            if table is None:
                continue
            stats = out.setdefault(
                str(table),
                {"read_bytes": 0, "remote_bytes": 0, "cache_hits": 0,
                 "cache_misses": 0, "lanes": 0},
            )
            stats["read_bytes"] += span.attrs.get("read_bytes", 0)
            stats["remote_bytes"] += span.attrs.get("remote_bytes", 0)
            stats["cache_hits"] += span.attrs.get("cache_hits", 0)
            stats["cache_misses"] += span.attrs.get("cache_misses", 0)
            stats["lanes"] += 1
        return out


def _segment_of(name: str) -> Optional[int]:
    if name.startswith("seg"):
        try:
            return int(name[3:])
        except ValueError:
            return None
    return None


def rpc_closure_violations(trace: QueryTrace) -> List[str]:
    """The chaos-trace invariant (satellite 2).

    Per attempt: every DISPATCH must be closed by exactly one COMPLETE
    or one synthetic ABORT_CLOSE, never both, never neither; a COMPLETE
    must match an open DISPATCH; and a segment whose channel dropped
    must never COMPLETE afterwards within that attempt. Violations mean
    an RPC channel was silently dropped (or double-reported) somewhere
    in the master/segment protocol.
    """
    violations: List[str] = []
    for attempt in range(1, trace.attempts + 1):
        open_count: Dict[Tuple[int, int], int] = {}
        killed: set = set()
        for event in trace.rpc_events:
            if event.attempt != attempt:
                continue
            if event.kind == DROP:
                killed.add(event.segment)
                continue
            if event.kind == REVIVE:
                killed.discard(event.segment)
                continue
            if event.slice_id is None:
                continue
            key = (event.slice_id, event.segment)
            if event.kind == DISPATCH:
                open_count[key] = open_count.get(key, 0) + 1
            elif event.kind in (COMPLETE, ABORT_CLOSE):
                if open_count.get(key, 0) <= 0:
                    violations.append(
                        f"attempt {attempt}: {event.kind} for task {key} "
                        "without an open DISPATCH"
                    )
                open_count[key] = open_count.get(key, 0) - 1
                if event.kind == COMPLETE and event.segment in killed:
                    violations.append(
                        f"attempt {attempt}: killed segment "
                        f"{event.segment} reported COMPLETE for {key}"
                    )
        for key, count in sorted(open_count.items()):
            if count > 0:
                violations.append(
                    f"attempt {attempt}: DISPATCH for task {key} never "
                    "closed by COMPLETE or ABORT"
                )
    return violations


def trace_query_id_violations(trace: QueryTrace) -> List[str]:
    """Concurrency trace invariant: a trace keyed to query N may only
    contain protocol events tagged with query N. A violation means two
    in-flight statements shared a bus/trace recorder — concurrent
    sessions read each other's control traffic."""
    violations: List[str] = []
    if not trace.query_id:
        return violations
    for event in trace.rpc_events:
        if event.query_id != trace.query_id:
            violations.append(
                f"trace for query {trace.query_id} holds a {event.kind} "
                f"event tagged query {event.query_id} "
                f"({event.sender}->{event.dest})"
            )
    return violations


class TraceRouter:
    """Demultiplexes one shared bus/fabric onto per-query traces.

    Under single-pass interleaved dispatch every in-flight query rides
    the *same* :class:`~repro.cluster.rpc.RpcBus` and
    :class:`~repro.interconnect.exchange.ExchangeFabric`, but each keeps
    its own :class:`QueryTrace`. The router sits in the shared ``trace``
    slot and forwards each event to the trace registered for the query
    id the event carries. Events tagged with an unregistered id (or id
    0) are dropped — an untraced statement simply records nothing.

    Channel drops carry no query id (the dying process does not know
    whose dispatch it holds), so :meth:`on_drop` broadcasts to every
    registered trace: each query's RPC-closure invariant needs to know
    its segment died, and a drop event for a segment a query never
    dispatched to is inert under that invariant.
    """

    def __init__(self):
        self._traces: Dict[int, QueryTrace] = {}

    def register(self, query_id: int, trace: QueryTrace) -> None:
        self._traces[query_id] = trace

    def unregister(self, query_id: int) -> None:
        self._traces.pop(query_id, None)

    def on_rpc(self, sender: str, dest: str, message) -> None:
        trace = self._traces.get(getattr(message, "query_id", 0))
        if trace is not None:
            trace.on_rpc(sender, dest, message)

    def on_drop(self, name: str) -> None:
        for query_id in sorted(self._traces):
            self._traces[query_id].on_drop(name)

    def on_revive(self, name: str) -> None:
        for query_id in sorted(self._traces):
            self._traces[query_id].on_revive(name)

    def stream(
        self,
        slice_id: int,
        sender: int,
        receiver: int,
        rows: int,
        nbytes: int,
        query_id: int = 0,
    ) -> None:
        trace = self._traces.get(query_id)
        if trace is not None:
            trace.stream(slice_id, sender, receiver, rows, nbytes)


class TraceCollector:
    """Per-session trace store: one :class:`QueryTrace` per traced
    statement, in execution order."""

    def __init__(self, num_segments: int = 0):
        self.num_segments = num_segments
        self.queries: List[QueryTrace] = []

    def begin_query(self, label: str = "", query_id: int = 0) -> QueryTrace:
        trace = QueryTrace(
            label=label, num_segments=self.num_segments, query_id=query_id
        )
        self.queries.append(trace)
        return trace

    def for_query(self, query_id: int) -> Optional[QueryTrace]:
        """The trace of the statement with engine-wide id ``query_id``
        (latest wins if ids ever repeat) — never "the last statement",
        which under concurrency may belong to another session."""
        for trace in reversed(self.queries):
            if trace.query_id == query_id:
                return trace
        return None

    @property
    def last(self) -> Optional[QueryTrace]:
        return self.queries[-1] if self.queries else None
