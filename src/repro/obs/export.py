"""Trace export: Chrome ``trace_event`` JSON and a text flame summary.

The JSON form loads directly in Perfetto / ``chrome://tracing``: one
process ("repro cluster"), one thread row per segment plus a master row,
complete ("X") events for spans and instant ("i") events for RPC
messages and motion streams. Timestamps are the trace's absolute
simulated seconds converted to microseconds — the native unit of the
trace_event format.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.obs.trace import MASTER_TRACK, QueryTrace, Span

_PID = 1
_PROCESS_NAME = "repro cluster (simulated clock)"


def _tid_map(trace: QueryTrace) -> Dict[str, int]:
    """Stable thread ids: master row 0, then seg0..segN-1, then any
    extra tracks that appeared in the spans."""
    tids: Dict[str, int] = {MASTER_TRACK: 0}
    for segment in range(trace.num_segments):
        tids[f"seg{segment}"] = segment + 1
    for track in trace.tracks():
        if track not in tids:
            tids[track] = len(tids)
    return tids


def to_chrome_trace(trace: QueryTrace) -> dict:
    """Render one query trace as a Chrome trace_event JSON object."""
    tids = _tid_map(trace)
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": _PROCESS_NAME},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in trace.spans:
        args = {k: v for k, v in span.attrs.items()}
        if span.slice_id is not None:
            args["slice_id"] = span.slice_id
        if span.segment is not None:
            args["segment"] = span.segment
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": _PID,
                "tid": tids[span.track],
                "args": args,
            }
        )
    for instant in trace.instants:
        events.append(
            {
                "name": instant.name,
                "cat": instant.cat,
                "ph": "i",
                "s": "t",
                "ts": instant.ts * 1e6,
                "pid": _PID,
                "tid": tids[instant.track],
                "args": dict(instant.attrs),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": trace.label,
            "attempts": trace.attempts,
            "retries": trace.retries,
            "makespan_s": trace.makespan,
            "overhead_s": trace.overhead,
            "total_s": trace.total_seconds,
        },
    }


def _nest(spans: List[Span]) -> List[tuple]:
    """(depth, span) rows for one track, nesting by interval containment."""
    ordered = sorted(spans, key=lambda s: (s.start, -s.end))
    out: List[tuple] = []
    stack: List[Span] = []
    for span in ordered:
        while stack and span.start >= stack[-1].end - 1e-15:
            stack.pop()
        out.append((len(stack), span))
        stack.append(span)
    return out


def render_summary(trace: QueryTrace, width: int = 72) -> str:
    """A text flamegraph-style summary: per-track nested spans with
    durations and a cumulative per-operator table."""
    lines: List[str] = []
    header = f"trace: {trace.label}" if trace.label else "trace"
    lines.append(
        f"{header}  total={trace.total_seconds:.6f}s "
        f"(makespan {trace.makespan:.6f}s + overhead {trace.overhead:.6f}s)"
        + (f"  retries={trace.retries}" if trace.retries else "")
    )
    span_end = max((s.end for s in trace.spans), default=0.0)
    for track in trace.tracks():
        track_spans = [s for s in trace.spans if s.track == track]
        if not track_spans:
            continue
        busy = sum(s.duration for s in track_spans if s.cat in ("task", "master"))
        lines.append(f"{track}  busy={busy:.6f}s")
        for depth, span in _nest(track_spans):
            bar = ""
            if span_end > 0:
                start_col = int(span.start / span_end * 24)
                end_col = max(int(span.end / span_end * 24), start_col + 1)
                bar = " " * start_col + "#" * (end_col - start_col)
            label = f"{'  ' * (depth + 1)}{span.name}"
            lines.append(
                f"{label:<38.38}{span.duration:>12.6f}s  |{bar:<24}|"
            )
    by_op: Dict[str, List[float]] = {}
    for span in trace.spans:
        if span.cat not in ("exec", "storage"):
            continue
        slot = by_op.setdefault(span.name, [0.0, 0])
        slot[0] += span.attrs.get("acc_seconds", span.duration)
        slot[1] += 1
    if by_op:
        lines.append("cumulative operator time (task-accumulator seconds):")
        for name, (total, calls) in sorted(
            by_op.items(), key=lambda item: -item[1][0]
        ):
            lines.append(f"  {name:<34.34}{total:>12.6f}s  x{calls}")
    return "\n".join(lines)


def validate_chrome_trace(document: dict) -> Optional[str]:
    """Cheap structural validation; returns an error string or None."""
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        return "traceEvents missing or empty"
    for event in events:
        if "ph" not in event or "pid" not in event or "tid" not in event:
            return f"event missing ph/pid/tid: {event}"
        if event["ph"] in ("X", "i") and "ts" not in event:
            return f"timed event missing ts: {event}"
        if event["ph"] == "X" and "dur" not in event:
            return f"complete event missing dur: {event}"
    return None


# --------------------------------------------------------------- prometheus
#: One exposition sample: metric name, optional {label="value",...}
#: block, one numeric value.
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\")*\})?"
    r" [-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$"
)

_PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _prom_value(value: float) -> str:
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _prom_labels(labels: Optional[str]) -> str:
    """Render a registry label string (``k=v,...``) as an exposition
    label block with values quoted and escaped."""
    if not labels:
        return ""
    parts = []
    for pair in labels.split(","):
        key, _, value = pair.partition("=")
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def render_prometheus(registry) -> str:
    """The MetricsRegistry in Prometheus text exposition format.

    Counters and gauges render one sample per label combination under
    a single ``# TYPE`` comment. Histograms expand the standard way:
    ``name_count`` / ``name_sum`` as counters plus ``name_min`` /
    ``name_max`` gauges. Output is sorted (deterministic) and purely a
    rendering of current state — nothing is charged or mutated.
    """
    from repro.obs.metrics import Histogram, _parse_series

    groups: Dict[str, list] = {}
    for key in sorted(registry._metrics):
        name, labels, _suffix = _parse_series(key)
        groups.setdefault(name, []).append((labels, registry._metrics[key]))
    lines: List[str] = []
    for name in sorted(groups):
        series = groups[name]
        if isinstance(series[0][1], Histogram):
            for part, kind in (
                ("count", "counter"), ("sum", "counter"),
                ("min", "gauge"), ("max", "gauge"),
            ):
                samples = []
                for labels, metric in series:
                    value = {
                        "count": metric.count, "sum": metric.total,
                        "min": metric.min, "max": metric.max,
                    }[part]
                    if value is None:
                        continue  # min/max of a never-observed histogram
                    samples.append(
                        f"{name}_{part}{_prom_labels(labels)} "
                        f"{_prom_value(value)}"
                    )
                if samples:
                    lines.append(f"# TYPE {name}_{part} {kind}")
                    lines.extend(samples)
            continue
        kind = "counter" if type(series[0][1]).__name__ == "Counter" else "gauge"
        lines.append(f"# TYPE {name} {kind}")
        for labels, metric in series:
            lines.append(
                f"{name}{_prom_labels(labels)} {_prom_value(metric.value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def prometheus_violations(text: str) -> List[str]:
    """Line-level validation of Prometheus text exposition format.

    Returns one message per malformed line: bad ``# TYPE`` comments,
    samples that do not parse, and samples whose metric name was never
    typed. Empty list means the exposition is well-formed.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            problems.append(f"line {number}: blank line inside exposition")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in _PROM_TYPES:
                problems.append(
                    f"line {number}: malformed TYPE comment: {line!r}"
                )
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP/free comments are legal
        if _PROM_SAMPLE.match(line) is None:
            problems.append(f"line {number}: malformed sample: {line!r}")
            continue
        name = line.split("{", 1)[0].split(" ", 1)[0]
        if name not in typed:
            problems.append(
                f"line {number}: sample {name!r} precedes its TYPE comment"
            )
    return problems
