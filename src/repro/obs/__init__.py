"""``repro.obs``: deterministic observability for the simulated cluster.

Two instruments, one contract:

* :mod:`repro.obs.trace` — structured spans for the full query
  lifecycle (dispatch, per-task slice execution, operators, storage
  scans, motion streams, RPC protocol events), timestamped on the
  *simulated* clock and assembled from the event scheduler's timelines.
* :mod:`repro.obs.metrics` — per-node labeled counters/gauges/
  histograms, snapshot-diffed per query onto ``QueryResult.metrics``.

The contract: observability is *passive*. Recording never charges a
cost accumulator, never reads the wall clock, and never perturbs a
simulated figure — with tracing enabled, answers and ``cost.seconds``
are bit-identical to tracing disabled (lint R6 + the differential test
enforce this).

CLI: ``python -m repro.obs --query 3 --export trace.json`` traces a
TPC-H query and writes Chrome trace_event JSON for Perfetto.
"""

from repro.obs.export import (
    render_summary,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.trace import (
    Instant,
    QueryTrace,
    RpcEvent,
    Span,
    TraceCollector,
    rpc_closure_violations,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "MetricsSnapshot",
    "QueryTrace",
    "RpcEvent",
    "Span",
    "TraceCollector",
    "render_summary",
    "rpc_closure_violations",
    "to_chrome_trace",
    "validate_chrome_trace",
]
