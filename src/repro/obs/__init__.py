"""``repro.obs``: deterministic observability for the simulated cluster.

Two instruments, one contract:

* :mod:`repro.obs.trace` — structured spans for the full query
  lifecycle (dispatch, per-task slice execution, operators, storage
  scans, motion streams, RPC protocol events), timestamped on the
  *simulated* clock and assembled from the event scheduler's timelines.
* :mod:`repro.obs.metrics` — per-node labeled counters/gauges/
  histograms, snapshot-diffed per query onto ``QueryResult.metrics``.

The contract: observability is *passive*. Recording never charges a
cost accumulator, never reads the wall clock, and never perturbs a
simulated figure — with tracing enabled, answers and ``cost.seconds``
are bit-identical to tracing disabled (lint R6 + the differential test
enforce this).

CLI: ``python -m repro.obs --query 3 --export trace.json`` traces a
TPC-H query and writes Chrome trace_event JSON for Perfetto.
"""

from repro.obs.activity import ClusterTelemetry, StatementStats, fingerprint
from repro.obs.export import (
    prometheus_violations,
    render_prometheus,
    render_summary,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.sysviews import (
    SYSTEM_VIEW_COLUMNS,
    render_top,
    system_view_rows,
    system_view_schema,
)
from repro.obs.trace import (
    Instant,
    QueryTrace,
    RpcEvent,
    Span,
    TraceCollector,
    rpc_closure_violations,
)

__all__ = [
    "SYSTEM_VIEW_COLUMNS",
    "ClusterTelemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "MetricsSnapshot",
    "QueryTrace",
    "RpcEvent",
    "Span",
    "StatementStats",
    "TraceCollector",
    "fingerprint",
    "prometheus_violations",
    "render_prometheus",
    "render_summary",
    "render_top",
    "rpc_closure_violations",
    "system_view_rows",
    "system_view_schema",
    "to_chrome_trace",
    "validate_chrome_trace",
]
