"""Trace a TPC-H query and export it: ``python -m repro.obs``.

Stands up a small cluster, loads a TPC-H subset at ``--scale``, runs the
chosen query with ``SET trace = on``, prints the text flame summary and
per-query metrics, and (with ``--export``) writes Chrome trace_event
JSON loadable in Perfetto / ``chrome://tracing``.

    python -m repro.obs --query 3 --export trace.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.engine import Engine
from repro.obs.export import render_summary, to_chrome_trace
from repro.tpch import QUERIES, create_table_sql, generate

#: Tables required per supported query (Q1/Q6 scan lineitem; Q3 joins).
_TABLES = ("customer", "orders", "lineitem")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="trace one TPC-H query on the simulated cluster",
    )
    parser.add_argument(
        "--query", type=int, default=3, choices=sorted(QUERIES),
        help="TPC-H query number (default: 3)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.001,
        help="TPC-H scale factor (default: 0.001)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="engine + data seed"
    )
    parser.add_argument(
        "--mode", choices=("udp", "tcp"), default="udp",
        help="interconnect mode (default: udp)",
    )
    parser.add_argument(
        "--export", metavar="PATH", default=None,
        help="write Chrome trace_event JSON to PATH",
    )
    args = parser.parse_args(argv)

    engine = Engine(
        num_segment_hosts=4,
        segments_per_host=2,
        seed=args.seed,
        interconnect=args.mode,
    )
    session = engine.connect()
    data = generate(args.scale, seed=args.seed or 19940601)
    for table in _TABLES:
        session.execute(create_table_sql(table))
        session.load_rows(table, getattr(data, table))
    session.execute("ANALYZE")

    session.execute("SET trace = on")
    result = None
    for stmt in QUERIES[args.query]:
        result = session.execute(stmt)
    # Select the trace by the statement's engine-wide query id — never
    # "the latest trace", which under concurrent sessions could belong
    # to someone else's statement.
    trace = session.tracer.for_query(result.query_id)
    if trace is None:
        print("no trace recorded (statement did not dispatch)")
        return 1
    trace.label = f"tpch-q{args.query} scale={args.scale} {args.mode}"

    print(render_summary(trace))
    print()
    print(f"rows returned: {len(result.rows)}")
    print("metrics (this statement):")
    for key, value in result.metrics.items():
        print(f"  {key} = {value}")

    if args.export:
        document = to_chrome_trace(trace)
        with open(args.export, "w") as fh:
            json.dump(document, fh, indent=1)
        print(f"wrote {args.export} ({len(document['traceEvents'])} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
