"""Observability CLI: traces, dashboard, Prometheus: ``python -m repro.obs``.

Default mode stands up a small cluster, loads a TPC-H subset at
``--scale``, runs the chosen query with ``SET trace = on``, prints the
text flame summary and per-query metrics, and (with ``--export``)
writes Chrome trace_event JSON loadable in Perfetto.

    python -m repro.obs --query 3 --export trace.json

Three telemetry modes ride the same standup:

* ``--top`` — run a 4-stream concurrent TPC-H batch and render the
  text dashboard (activity table, queue gauges, per-segment
  utilization bars) from the busiest mid-schedule telemetry snapshot.
* ``--prom`` — run a mixed serial/concurrent workload and print the
  MetricsRegistry in Prometheus text exposition format; ``--check``
  self-validates the exposition and exits nonzero on violations.
* ``--smoke`` — SELECT over all four pg_stat_* system views through
  the normal SQL path (filter, ORDER BY, aggregation) and exit nonzero
  if any view misbehaves — the CI gate for the introspection surface.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.engine import Engine
from repro.executor.concurrent import ConcurrentRunner
from repro.obs.export import (
    prometheus_violations,
    render_prometheus,
    render_summary,
    to_chrome_trace,
)
from repro.obs.sysviews import render_top
from repro.tpch import QUERIES, create_table_sql, generate

#: Tables required per supported query (Q1/Q6 scan lineitem; Q3 joins).
_TABLES = ("customer", "orders", "lineitem")


def _standup(args):
    """One loaded cluster + session, shared by every mode."""
    engine = Engine(
        num_segment_hosts=4,
        segments_per_host=2,
        seed=args.seed,
        interconnect=args.mode,
    )
    session = engine.connect()
    data = generate(args.scale, seed=args.seed or 19940601)
    for table in _TABLES:
        session.execute(create_table_sql(table))
        session.load_rows(table, getattr(data, table))
    session.execute("ANALYZE")
    return engine, session


def _telemetry_workload(engine, session) -> None:
    """A small mixed workload: serial statements plus a contended
    2-stream batch, so queue-pressure metrics and the workload
    repository have something to show."""
    session.execute("CREATE RESOURCE QUEUE obs_narrow WITH (active_statements=1)")
    for number in (1, 6):
        for stmt in QUERIES[number]:
            session.execute(stmt)
    runner = ConcurrentRunner(
        engine,
        streams=[[QUERIES[6][0]], [QUERIES[1][0]]],
        queues={0: "obs_narrow", 1: "obs_narrow"},
    )
    runner.run()


def _run_top(engine, args) -> int:
    streams = [
        [QUERIES[1][0], QUERIES[6][0]] for _stream in range(4)
    ]
    snapshots = []

    def probe(stream, index):
        snapshots.append(engine.telemetry.overview())

    runner = ConcurrentRunner(engine, streams, before_query=probe)
    batch = runner.run()
    if snapshots:
        busiest = max(
            snapshots,
            key=lambda snap: (len(snap["activity"]), snap["now"]),
        )
    else:
        busiest = engine.telemetry.overview()
    print(render_top(busiest))
    print()
    print(
        f"batch: {len(batch.outcomes)} statements, "
        f"makespan {batch.makespan:.4f}s, {batch.qps:.2f} qps"
    )
    return 0


def _run_prom(engine, session, check: bool) -> int:
    _telemetry_workload(engine, session)
    text = render_prometheus(engine.metrics)
    print(text, end="")
    if check:
        problems = prometheus_violations(text)
        for problem in problems:
            print(f"invalid exposition: {problem}", file=sys.stderr)
        if problems:
            return 1
    return 0


def _run_smoke(engine, session) -> int:
    """System-view smoke: every view answers through plain SQL."""
    _telemetry_workload(engine, session)
    failures = []

    def check(label, sql, predicate):
        rows = session.execute(sql).rows
        if not predicate(rows):
            failures.append(f"{label}: unexpected result {rows!r}")
        else:
            print(f"ok: {label} ({len(rows)} rows)")

    check(
        "pg_stat_segments covers every segment",
        "SELECT segment_id, host, tasks FROM pg_stat_segments "
        "ORDER BY segment_id",
        lambda rows: len(rows) == engine.num_segments,
    )
    check(
        "pg_stat_segments aggregates",
        "SELECT count(*), sum(busy_seconds) FROM pg_stat_segments",
        lambda rows: rows and rows[0][0] == engine.num_segments,
    )
    check(
        "pg_resqueue_status filter + order",
        "SELECT queue, slots, slots_in_use, waiters FROM pg_resqueue_status "
        "WHERE slots > 0 ORDER BY queue",
        lambda rows: "pg_default" in [row[0] for row in rows],
    )
    check(
        "pg_stat_statements repository",
        "SELECT fingerprint, calls, mean_seconds FROM pg_stat_statements "
        "WHERE calls >= 1 ORDER BY calls DESC",
        lambda rows: len(rows) >= 1,
    )
    check(
        "pg_stat_activity shows the probe itself",
        "SELECT query_id, state, queue FROM pg_stat_activity "
        "WHERE state = 'running' ORDER BY query_id",
        lambda rows: len(rows) == 1 and rows[0][1] == "running",
    )
    for failure in failures:
        print(f"smoke failure: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability CLI for the simulated cluster",
    )
    parser.add_argument(
        "--query", type=int, default=3, choices=sorted(QUERIES),
        help="TPC-H query number (default: 3)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.001,
        help="TPC-H scale factor (default: 0.001)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="engine + data seed"
    )
    parser.add_argument(
        "--mode", choices=("udp", "tcp"), default="udp",
        help="interconnect mode (default: udp)",
    )
    parser.add_argument(
        "--export", metavar="PATH", default=None,
        help="write Chrome trace_event JSON to PATH",
    )
    parser.add_argument(
        "--top", action="store_true",
        help="render the live-cluster text dashboard from a "
        "concurrent TPC-H batch",
    )
    parser.add_argument(
        "--prom", action="store_true",
        help="print the metrics registry in Prometheus text format",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="with --prom: validate the exposition, exit 1 on violations",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run system-view smoke queries through the SQL path",
    )
    args = parser.parse_args(argv)

    engine, session = _standup(args)
    if args.top:
        return _run_top(engine, args)
    if args.prom:
        return _run_prom(engine, session, check=args.check)
    if args.smoke:
        return _run_smoke(engine, session)

    session.execute("SET trace = on")
    result = None
    for stmt in QUERIES[args.query]:
        result = session.execute(stmt)
    # Select the trace by the statement's engine-wide query id — never
    # "the latest trace", which under concurrent sessions could belong
    # to someone else's statement.
    trace = session.tracer.for_query(result.query_id)
    if trace is None:
        print("no trace recorded (statement did not dispatch)")
        return 1
    trace.label = f"tpch-q{args.query} scale={args.scale} {args.mode}"

    print(render_summary(trace))
    print()
    print(f"rows returned: {len(result.rows)}")
    print("metrics (this statement):")
    for key, value in result.metrics.items():
        print(f"  {key} = {value}")

    if args.export:
        document = to_chrome_trace(trace)
        with open(args.export, "w") as fh:
            json.dump(document, fh, indent=1)
        print(f"wrote {args.export} ({len(document['traceEvents'])} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
