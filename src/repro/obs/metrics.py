"""Per-node counters, gauges and histograms on the simulated cluster.

A :class:`MetricsRegistry` is process-global per :class:`~repro.engine.
Engine`: instrumentation points across the runtime (RPC bus, exchange
fabric, segment workers, the write path) increment labeled metrics as a
side effect of execution. Metrics are *passive observers* — they never
charge the simulated clock (lint R6 enforces this for the whole ``obs``
package), so enabling or reading them cannot perturb any simulated
figure.

Per-query attribution works by snapshot-diffing: the session snapshots
the registry before a statement and exposes ``after.diff(before)`` on
``QueryResult.metrics``. That is what lets the bench harness report a
cache hit *rate per query* even though the block decode cache itself
only keeps process-global counters.

Metric keys render Prometheus-style: ``name{label=value,...}`` with
labels sorted, so snapshots are deterministic and diff-able by string
key alone.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple


def _key(name: str, labels: Dict[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


#: Scalar series a snapshot expands each Histogram into.
_HISTOGRAM_SUFFIXES = ("count", "total", "min", "max")


def _parse_series(key: str) -> Tuple[str, Optional[str], Optional[str]]:
    """Split a snapshot key into (name, labels, histogram-suffix).

    ``"h{queue=q1}.count"`` -> ``("h", "queue=q1", "count")``;
    ``"n{node=seg0}"`` -> ``("n", "node=seg0", None)``; ``"n"`` ->
    ``("n", None, None)``. A dot inside a label value never splits
    (the suffix must follow the closing brace or a brace-less name).
    """
    suffix = None
    if "." in key:
        head, _, tail = key.rpartition(".")
        if tail in _HISTOGRAM_SUFFIXES and (head.endswith("}") or "{" not in head):
            key, suffix = head, tail
    if key.endswith("}") and "{" in key:
        name, _, labels = key.partition("{")
        return name, labels[:-1], suffix
    return key, None, suffix


def _series_matches(key: str, name: str) -> bool:
    """True when snapshot ``key`` belongs to the queried series
    ``name`` (optionally suffix-qualified), any labels."""
    want_base, want_suffix = name, None
    if "." in name:
        head, _, tail = name.rpartition(".")
        if tail in _HISTOGRAM_SUFFIXES:
            want_base, want_suffix = head, tail
    base, _labels, suffix = _parse_series(key)
    return base == want_base and suffix == want_suffix


class Counter:
    """A monotonically increasing count (events, bytes, rows)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, cache bytes resident)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A cheap summary histogram: count / total / min / max.

    Enough to answer "how many, how big, how skewed" without bucket
    bookkeeping; snapshots expand it into four scalar series.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value


class MetricsRegistry:
    """Labeled metric instruments, keyed by rendered name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, kind, name: str, labels: Dict[str, object]):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind()
            self._metrics[key] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    def snapshot(self) -> "MetricsSnapshot":
        """A flat, immutable view: key -> scalar value."""
        data: Dict[str, float] = {}
        for key, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                data[f"{key}.count"] = metric.count
                data[f"{key}.total"] = metric.total
                if metric.min is not None:
                    data[f"{key}.min"] = metric.min
                if metric.max is not None:
                    data[f"{key}.max"] = metric.max
            else:
                data[key] = metric.value
        return MetricsSnapshot(data)


class MetricsSnapshot(Mapping):
    """Immutable flat metrics view; ``diff`` gives per-query deltas."""

    def __init__(self, data: Optional[Dict[str, float]] = None) -> None:
        self._data: Dict[str, float] = dict(data or {})

    # ----------------------------------------------------------- Mapping api
    def __getitem__(self, key: str) -> float:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"MetricsSnapshot({len(self._data)} series)"

    # ------------------------------------------------------------- analysis
    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """self - earlier, keeping only series that changed.

        Gauges and histogram min/max are levels, not rates — the delta
        of a level is still meaningful per query (how much it moved), so
        one subtraction rule covers every instrument.
        """
        out: Dict[str, float] = {}
        for key, value in self._data.items():
            delta = value - earlier._data.get(key, 0)
            if delta != 0:
                out[key] = delta
        return MetricsSnapshot(out)

    def total(self, name: str) -> float:
        """Sum one series across all label combinations.

        ``name`` is either a bare metric (counters/gauges) or one
        histogram component qualified with its suffix — ``h.count``,
        ``h.total``, ``h.min``, ``h.max``. Histogram components never
        leak into a bare-name sum: ``total("h")`` of a histogram is 0,
        while ``total("h.count")`` is the observation count — so a
        mean is always ``total("h.total") / total("h.count")``.
        """
        out = 0.0
        for key, value in self._data.items():
            if _series_matches(key, name):
                out += value
        return out

    def by_label(self, name: str) -> Dict[str, float]:
        """``labels -> value`` for every series of one metric.

        The unlabeled series maps from ``""``. Histogram components
        use the same suffix qualification as :meth:`total`:
        ``by_label("h.count")`` gives per-label observation counts
        with the label string intact (no suffix mangling).
        """
        out: Dict[str, float] = {}
        for key, value in self._data.items():
            if _series_matches(key, name):
                _base, labels, _suffix = _parse_series(key)
                out[labels or ""] = value
        return out

    def items(self) -> Iterator[Tuple[str, float]]:  # type: ignore[override]
        return iter(sorted(self._data.items()))

    def as_dict(self) -> Dict[str, float]:
        return dict(sorted(self._data.items()))
