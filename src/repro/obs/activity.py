"""Live cluster activity and the session workload repository.

:class:`ClusterTelemetry` is the passive facade behind the SQL system
views (:mod:`repro.obs.sysviews`). The runtime *publishes* into it —
the concurrent driver attaches itself for the duration of a batch, the
serial dispatcher registers each statement around its restart loop, and
every settled statement lands in the :class:`StatementStats` workload
repository — and the views *read* from it. Nothing here charges the
simulated clock or mutates any engine structure the executor reads
(lint R6 obs-passivity holds for this whole package), so interleaving
system-view queries with a workload leaves every row and every charged
second bit-identical.

All mutable state is instance-held (created in ``__init__``): the
facade is engine-scoped, never module-global, so concurrent engines
never share telemetry (and the R7 isolation lint has nothing to flag).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

#: The master's own loopback worker (gang "1" slices) — excluded from
#: per-segment utilization, matching EXPLAIN's QD/segN distinction.
_QD_SEGMENT = -1

_LITERAL = re.compile(r"'(?:[^']|'')*'")
_NUMBER = re.compile(r"(?<![\w.])\d+(?:\.\d+)?")
_WHITESPACE = re.compile(r"\s+")


def fingerprint(sql: str) -> str:
    """Normalize one statement to its pg_stat_statements identity.

    String and numeric literals become ``?`` placeholders, whitespace
    collapses, case folds, and a trailing semicolon is dropped — so
    ``SELECT * FROM t WHERE a = 7`` and ``select *  from t where a=19``
    with different constants accumulate into one repository entry.
    """
    text = _LITERAL.sub("?", sql)
    text = _NUMBER.sub("?", text)
    text = _WHITESPACE.sub(" ", text).strip()
    if text.endswith(";"):
        text = text[:-1].rstrip()
    return text.lower()


class _StatementEntry:
    """Accumulated facts for one normalized statement."""

    __slots__ = (
        "calls",
        "charged_total",
        "row_total",
        "queue_wait_total",
        "retry_total",
        "cache_hits",
        "cache_misses",
    )

    def __init__(self) -> None:
        self.calls = 0
        self.charged_total = 0.0
        self.row_total = 0
        self.queue_wait_total = 0.0
        self.retry_total = 0
        self.cache_hits = 0
        self.cache_misses = 0


class StatementStats:
    """The session-lifetime workload repository (pg_stat_statements).

    Fed one ``(sql, QueryResult)`` pair per settled statement; charged
    time is the statement's accounted ``cost.seconds`` (which already
    includes queue wait under the concurrent accounting contract), and
    cache deltas come from the statement's own metrics snapshot diff.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, _StatementEntry] = {}

    def observe_statement(self, sql: str, result) -> None:
        key = fingerprint(sql)
        entry = self._entries.get(key)
        if entry is None:
            entry = _StatementEntry()
            self._entries[key] = entry
        entry.calls += 1
        cost = getattr(result, "cost", None)
        if cost is not None:
            entry.charged_total += cost.seconds
        entry.row_total += len(result.rows or [])
        entry.queue_wait_total += getattr(result, "queue_wait_seconds", 0.0)
        entry.retry_total += getattr(result, "retries", 0)
        metrics = getattr(result, "metrics", None)
        if metrics is not None:
            entry.cache_hits += int(metrics.total("cache_hits"))
            entry.cache_misses += int(metrics.total("cache_misses"))

    def statement_rows(self) -> List[tuple]:
        out: List[tuple] = []
        for key in sorted(self._entries):
            entry = self._entries[key]
            mean = entry.charged_total / entry.calls if entry.calls else 0.0
            out.append(
                (
                    key,
                    entry.calls,
                    entry.charged_total,
                    mean,
                    entry.row_total,
                    entry.queue_wait_total,
                    entry.retry_total,
                    entry.cache_hits,
                    entry.cache_misses,
                )
            )
        return out


class ClusterTelemetry:
    """Engine-scoped publication point for live and historical state.

    Three producers feed it:

    * :meth:`attach_batch` / :meth:`detach_batch` — the concurrent
      driver lends its live registries (in-flight statements, resource
      queue manager, event scheduler) for the duration of one batch.
    * :meth:`serial_begin` / :meth:`serial_attempt` / :meth:`serial_end`
      — the serial dispatcher brackets each statement's restart loop.
    * :meth:`record_statement` — every settled statement (serial or
      concurrent) lands in the workload repository and the cumulative
      per-segment timeline aggregates.

    Every reader (:func:`repro.obs.sysviews.system_view_rows`) only
    inspects; the facade never calls back into the runtime.
    """

    def __init__(
        self,
        segments: List,
        security=None,
        is_cancelled: Optional[Callable[[int], bool]] = None,
    ) -> None:
        self._segments = list(segments)
        self._security = security
        self._is_cancelled = is_cancelled
        #: The live ConcurrentRunner while a batch is in flight.
        self._runner = None
        #: Serially-dispatched statements currently inside their
        #: restart loop: query_id -> {"queue": str, "attempt": int}.
        self._serial: Dict[int, Dict[str, object]] = {}
        self.statements = StatementStats()
        # Cumulative per-segment timeline aggregates (the fallback when
        # no batch is live): task counts, busy seconds, and the total
        # observed makespan they are a fraction of.
        self._segment_tasks: Dict[int, int] = {}
        self._segment_busy: Dict[int, float] = {}
        self._observed_span = 0.0

    # -------------------------------------------------------- batch plumbing
    def attach_batch(self, runner) -> None:
        """A concurrent batch starts: lend its live registries."""
        self._runner = runner

    def detach_batch(self, runner) -> None:
        if self._runner is runner:
            self._runner = None

    # ------------------------------------------------------- serial plumbing
    def serial_begin(self, query_id: int, queue_name: str) -> None:
        self._serial[query_id] = {"queue": queue_name, "attempt": 1}

    def serial_attempt(self, query_id: int, attempt: int) -> None:
        entry = self._serial.get(query_id)
        if entry is not None:
            entry["attempt"] = attempt

    def serial_end(self, query_id: int) -> None:
        self._serial.pop(query_id, None)

    # --------------------------------------------------- workload repository
    def record_statement(self, sql: str, result) -> None:
        """Fold one settled statement into the repository and the
        cumulative segment aggregates."""
        self.statements.observe_statement(sql, result)
        slices = getattr(result, "slices", None) or {}
        for slice_id in sorted(slices):
            timing = slices[slice_id]
            for segment_id in sorted(timing.tasks):
                if segment_id == _QD_SEGMENT:
                    continue
                task = timing.tasks[segment_id]
                self._segment_tasks[segment_id] = (
                    self._segment_tasks.get(segment_id, 0) + 1
                )
                self._segment_busy[segment_id] = (
                    self._segment_busy.get(segment_id, 0.0) + task.seconds
                )
        self._observed_span += getattr(result, "makespan", 0.0) or 0.0

    # ------------------------------------------------------------- view rows
    def activity_rows(self) -> List[tuple]:
        """pg_stat_activity: one row per live statement.

        Batch statements come from the attached runner's in-flight
        registry (queued/running on the shared clock, with the slice
        dispatch ledger); serial statements from the dispatcher's
        bracket (always running — serial admission never parks). A
        statement with a pending cancel request shows as ``cancelling``
        until its teardown event settles it.
        """
        rows: List[tuple] = []
        runner = self._runner
        if runner is not None and runner.scheduler is not None:
            now = runner.scheduler.now
            for query_id in sorted(runner._by_qid):
                state = runner._by_qid[query_id]
                if state.settled:
                    continue
                outcome = state.outcome
                if state.admitted:
                    status = "running"
                    wait_so_far = outcome.queue_wait
                else:
                    status = "queued"
                    wait_so_far = now - outcome.submit
                if self._cancel_pending(query_id):
                    status = "cancelling"
                dispatched, completed = self._slice_progress(runner, state)
                rows.append(
                    (
                        query_id,
                        status,
                        outcome.queue,
                        wait_so_far,
                        max(state.attempt, 1),
                        dispatched,
                        completed,
                    )
                )
        for query_id in sorted(self._serial):
            entry = self._serial[query_id]
            status = (
                "cancelling" if self._cancel_pending(query_id) else "running"
            )
            rows.append(
                (query_id, status, entry["queue"], 0.0, entry["attempt"], 0, 0)
            )
        rows.sort(key=lambda row: row[0])
        return rows

    def _cancel_pending(self, query_id: int) -> bool:
        return self._is_cancelled is not None and self._is_cancelled(query_id)

    @staticmethod
    def _slice_progress(runner, state) -> Tuple[int, int]:
        """(slices dispatched, slices completed) for one statement.

        Task keys are attempt-namespaced ``(qid, stride+slice, seg)``;
        grouping by the namespaced slice id counts a retried wave as a
        re-dispatch, which is the honest operator-facing number.
        """
        by_slice: Dict[int, List[tuple]] = {}
        for key in state.keys:
            by_slice.setdefault(key[1], []).append(key)
        completed = 0
        for slice_id in sorted(by_slice):
            keys = by_slice[slice_id]
            if runner.scheduler.finished_count(keys) == len(keys):
                completed += 1
        return len(by_slice), completed

    def resqueue_rows(self) -> List[tuple]:
        """pg_resqueue_status: per-queue occupancy.

        Live from the batch's ResourceQueueManager when one is
        attached; otherwise from the catalog's declarative queues (the
        serial path admits through those directly).
        """
        runner = self._runner
        if runner is not None and runner.manager is not None:
            return runner.manager.occupancy()
        rows: List[tuple] = []
        if self._security is not None:
            for name in sorted(self._security.queues):
                queue = self._security.queues[name]
                rows.append(
                    (
                        name,
                        queue.active_statements,
                        queue.running,
                        float(queue.memory_limit),
                        0.0,
                        0,
                        None,
                    )
                )
        return rows

    def segment_rows(self) -> List[tuple]:
        """pg_stat_segments: per-segment timeline occupancy.

        During a batch, straight off the event scheduler's slot
        timelines (utilization = busy seconds / current clock);
        otherwise the cumulative aggregates over every recorded
        statement (utilization = busy / total observed makespan).
        """
        runner = self._runner
        live = (
            runner is not None
            and runner.scheduler is not None
            and runner.scheduler.running
        )
        if live:
            usage = runner.scheduler.slot_usage()
            now = runner.scheduler.now
            span = now if now > 0 else 0.0
        else:
            usage = {
                segment_id: (
                    self._segment_tasks[segment_id],
                    self._segment_busy.get(segment_id, 0.0),
                )
                for segment_id in sorted(self._segment_tasks)
            }
            span = self._observed_span
        rows: List[tuple] = []
        for segment in self._segments:
            tasks, busy = usage.get(segment.segment_id, (0, 0.0))
            utilization = busy / span if span > 0 else 0.0
            rows.append(
                (segment.segment_id, segment.host, tasks, busy, utilization)
            )
        return rows

    def statement_rows(self) -> List[tuple]:
        return self.statements.statement_rows()

    # ------------------------------------------------------------- dashboard
    def overview(self) -> Dict[str, object]:
        """One coherent snapshot for the ``--top`` dashboard."""
        runner = self._runner
        now = 0.0
        if runner is not None and runner.scheduler is not None:
            now = runner.scheduler.now
        return {
            "now": now,
            "activity": self.activity_rows(),
            "queues": self.resqueue_rows(),
            "segments": self.segment_rows(),
        }
