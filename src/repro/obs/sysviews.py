"""SQL-queryable system views over the cluster telemetry facade.

HAWQ is operated through Postgres-style introspection relations; this
module is our equivalent surface. Four virtual tables resolve in the
catalog/planner exactly like the SQL-on-catalog relations (master-only
zero-cost scans served by the segment-0 QE), so they compose with
ordinary WHERE / ORDER BY / aggregation::

    SELECT query_id, queue, queue_wait_seconds
      FROM pg_stat_activity WHERE state = 'queued' ORDER BY query_id

* ``pg_stat_activity`` — live per-statement state on the simulated
  clock: queued / running / cancelling, resource queue, queue-wait so
  far, attempt number, slices dispatched/completed.
* ``pg_resqueue_status`` — per-queue slot and memory occupancy, waiter
  count, head-of-line query id.
* ``pg_stat_segments`` — per-segment tasks run, busy seconds, and
  utilization fraction from the event scheduler's slot timelines.
* ``pg_stat_statements`` — the session workload repository: normalized
  fingerprint, calls, total/mean charged seconds, rows, queue wait,
  retries, cache hit/miss deltas.

Everything is read-only over :class:`~repro.obs.activity.
ClusterTelemetry` (lint R6 obs-passivity applies): a system-view scan
charges nothing and perturbs nothing, which the passivity differential
in the test suite proves bit-exactly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.activity import ClusterTelemetry

#: Column layout of every system view, in SELECT * order.
SYSTEM_VIEW_COLUMNS: Dict[str, List[str]] = {
    "pg_stat_activity": [
        "query_id", "state", "queue", "queue_wait_seconds",
        "attempt", "slices_dispatched", "slices_completed",
    ],
    "pg_resqueue_status": [
        "queue", "slots", "slots_in_use", "memory_limit",
        "memory_used", "waiters", "head_of_line",
    ],
    "pg_stat_segments": [
        "segment_id", "host", "tasks", "busy_seconds", "utilization",
    ],
    "pg_stat_statements": [
        "fingerprint", "calls", "total_seconds", "mean_seconds",
        "total_rows", "queue_wait_seconds", "retries",
        "cache_hits", "cache_misses",
    ],
}

_COLUMN_TYPES = {
    "query_id": "int", "attempt": "int", "slices_dispatched": "int",
    "slices_completed": "int", "queue_wait_seconds": "float8",
    "slots": "int", "slots_in_use": "int", "memory_limit": "float8",
    "memory_used": "float8", "waiters": "int", "head_of_line": "int",
    "segment_id": "int", "tasks": "int", "busy_seconds": "float8",
    "utilization": "float8", "calls": "int", "total_seconds": "float8",
    "mean_seconds": "float8", "total_rows": "int8", "retries": "int",
    "cache_hits": "int8", "cache_misses": "int8",
}


def system_view_schema(name: str):
    """A TableSchema describing one system view (analyzer-facing)."""
    from repro.catalog.schema import Column, DataType, Distribution, TableSchema

    columns = [
        Column(col, DataType.parse(_COLUMN_TYPES.get(col, "text")))
        for col in SYSTEM_VIEW_COLUMNS[name]
    ]
    return TableSchema(
        name=name, columns=columns, distribution=Distribution.random()
    )


def system_view_rows(telemetry: ClusterTelemetry, name: str) -> List[tuple]:
    """Current rows of one system view (master-only, zero-cost)."""
    if name == "pg_stat_activity":
        return telemetry.activity_rows()
    if name == "pg_resqueue_status":
        return telemetry.resqueue_rows()
    if name == "pg_stat_segments":
        return telemetry.segment_rows()
    if name == "pg_stat_statements":
        return telemetry.statement_rows()
    raise KeyError(f"unknown system view {name!r}")


# ----------------------------------------------------------------- dashboard
def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_top(overview: Dict[str, object]) -> str:
    """The ``--top`` text dashboard from one telemetry snapshot:
    activity table, per-queue slot gauges, per-segment utilization
    bars. Pure rendering — the snapshot is the input."""
    lines: List[str] = []
    lines.append(
        f"cluster activity @ t={overview['now']:.4f}s (simulated clock)"
    )
    lines.append("")
    activity = overview["activity"]
    lines.append(f"statements ({len(activity)} live):")
    lines.append(
        f"  {'qid':>5}  {'state':<11}{'queue':<14}"
        f"{'wait_s':>9}  {'att':>3}  {'slices':>7}"
    )
    for row in activity:
        qid, state, queue, wait, attempt, dispatched, completed = row
        lines.append(
            f"  {qid:>5}  {state:<11}{queue:<14}"
            f"{wait:>9.4f}  {attempt:>3}  {completed:>3}/{dispatched}"
        )
    if not activity:
        lines.append("  (idle)")
    lines.append("")
    lines.append("resource queues:")
    for row in overview["queues"]:
        name, slots, in_use, mem_limit, mem_used, waiters, head = row
        fraction = in_use / slots if slots else 0.0
        suffix = f"  waiting={waiters}"
        if head is not None:
            suffix += f" head=q{head}"
        lines.append(
            f"  {name:<14}[{_bar(fraction)}] {in_use:>3}/{slots:<3} slots  "
            f"mem {mem_used / 1e9:.2f}/{mem_limit / 1e9:.2f} GB{suffix}"
        )
    lines.append("")
    lines.append("segments:")
    for row in overview["segments"]:
        segment_id, host, tasks, busy, utilization = row
        lines.append(
            f"  seg{segment_id:<3}{host:<8}[{_bar(utilization)}] "
            f"{utilization * 100:5.1f}%  {tasks:>4} tasks  "
            f"{busy:.4f}s busy"
        )
    return "\n".join(lines)
