"""Deterministic random-number streams.

Every stochastic component (network loss, data generation, failover
choice) draws from its own named stream derived from a root seed, so that
simulations are reproducible and independent components do not perturb
each other's randomness when code paths change.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from a root seed and a path of names."""
    digest = hashlib.sha256(
        ("/".join(str(n) for n in (root_seed, *names))).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


class DeterministicRng(random.Random):
    """A :class:`random.Random` seeded from a (root, *names) path."""

    def __init__(self, root_seed: int, *names: object) -> None:
        super().__init__(derive_seed(root_seed, *names))

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self.random() < probability
