"""Small shared utilities: deterministic RNG streams and byte helpers."""

from repro.util.rng import DeterministicRng, derive_seed

__all__ = ["DeterministicRng", "derive_seed"]
