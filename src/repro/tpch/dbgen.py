"""A deterministic, scaled-down TPC-H data generator.

Follows the TPC-H specification's cardinalities and value domains —
every word list a benchmark query predicate touches (``BUILDING``,
``ECONOMY ANODIZED STEEL``, ``forest`` colors, ``MED BOX``,
``special ... requests`` comments, phone country codes, ...) is drawn
from the spec's vocabularies so all 22 queries select non-empty,
shape-faithful results at any scale factor.

Cardinalities at scale factor SF: supplier 10k*SF, part 200k*SF,
partsupp 4/part, customer 150k*SF, orders 10/customer, lineitem 1-7 per
order. Scale factors far below 1 keep the pure-Python executor fast; the
simulated clock re-inflates volumes to the paper's 160GB/1.6TB.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.util import DeterministicRng

START_DATE = datetime.date(1992, 1, 1)
END_DATE = datetime.date(1998, 8, 2)
CURRENT_DATE = datetime.date(1995, 6, 17)

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive",
    "orange", "orchid", "pale", "papaya", "peach", "peru", "pink", "plum",
    "powder", "puff", "purple", "red", "rose", "rosy", "royal", "saddle",
    "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow",
    "spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet",
    "wheat", "white", "yellow",
]
TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
CONTAINER_SYLLABLE_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
NOUNS = [
    "packages", "requests", "accounts", "deposits", "foxes", "ideas",
    "theodolites", "pinto beans", "instructions", "dependencies", "excuses",
    "platelets", "asymptotes", "courts", "dolphins", "multipliers",
]
VERBS = [
    "sleep", "wake", "are", "cajole", "haggle", "nag", "use", "boost",
    "affix", "detect", "integrate", "maintain", "nod", "was", "lose", "sublate",
]
ADJECTIVES = [
    "special", "pending", "unusual", "express", "furious", "sly", "careful",
    "blithe", "quick", "fluffy", "slow", "quiet", "ruthless", "thin", "close",
]
#: Q22 selects customers in these seven country codes.
PHONE_CODES_START = 10  # country code = nationkey + 10


@dataclass
class TpchData:
    """All eight tables as lists of python-typed tuples."""

    scale: float
    region: List[tuple] = field(default_factory=list)
    nation: List[tuple] = field(default_factory=list)
    supplier: List[tuple] = field(default_factory=list)
    customer: List[tuple] = field(default_factory=list)
    part: List[tuple] = field(default_factory=list)
    partsupp: List[tuple] = field(default_factory=list)
    orders: List[tuple] = field(default_factory=list)
    lineitem: List[tuple] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        return {
            name: len(getattr(self, name))
            for name in (
                "region", "nation", "supplier", "customer",
                "part", "partsupp", "orders", "lineitem",
            )
        }

    def total_rows(self) -> int:
        return sum(self.counts().values())


def _money(rng: DeterministicRng, lo: float, hi: float) -> float:
    return round(rng.uniform(lo, hi), 2)


def _date(rng: DeterministicRng, lo=START_DATE, hi=END_DATE) -> datetime.date:
    span = (hi - lo).days
    return lo + datetime.timedelta(days=rng.randrange(span + 1))


def _comment(rng: DeterministicRng, max_len: int) -> str:
    words = []
    for _ in range(rng.randrange(3, 8)):
        words.append(rng.choice(ADJECTIVES + NOUNS + VERBS))
    text = " ".join(words)
    return text[:max_len]


def _special_requests_comment(rng: DeterministicRng) -> str:
    """Comments matching Q13's '%special%requests%' pattern."""
    return f"the {rng.choice(ADJECTIVES)} special packages wake requests"


def _complaints_comment(rng: DeterministicRng) -> str:
    """Comments matching Q16's '%Customer%Complaints%' pattern."""
    return f"{rng.choice(VERBS)} Customer slyly Complaints {rng.choice(NOUNS)}"


def _phone(rng: DeterministicRng, nationkey: int) -> str:
    return (
        f"{PHONE_CODES_START + nationkey}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10000)}"
    )


def generate(scale: float = 0.01, seed: int = 19940601) -> TpchData:
    """Generate a deterministic TPC-H dataset at the given scale factor."""
    data = TpchData(scale=scale)
    num_suppliers = max(int(10_000 * scale), 10)
    num_parts = max(int(200_000 * scale), 40)
    num_customers = max(int(150_000 * scale), 30)
    num_orders = num_customers * 10

    rng = DeterministicRng(seed, "region")
    for i, name in enumerate(REGIONS):
        data.region.append((i, name, _comment(rng, 152)))

    rng = DeterministicRng(seed, "nation")
    for i, (name, region_key) in enumerate(NATIONS):
        data.nation.append((i, name, region_key, _comment(rng, 152)))

    rng = DeterministicRng(seed, "supplier")
    for key in range(1, num_suppliers + 1):
        nationkey = rng.randrange(len(NATIONS))
        comment = (
            _complaints_comment(rng) if rng.chance(0.02) else _comment(rng, 101)
        )
        data.supplier.append(
            (
                key,
                f"Supplier#{key:09d}",
                f"addr sup {key} {rng.randrange(10000)}",
                nationkey,
                _phone(rng, nationkey),
                _money(rng, -999.99, 9999.99),
                comment,
            )
        )

    rng = DeterministicRng(seed, "customer")
    for key in range(1, num_customers + 1):
        nationkey = rng.randrange(len(NATIONS))
        data.customer.append(
            (
                key,
                f"Customer#{key:09d}",
                f"addr cust {key} {rng.randrange(10000)}",
                nationkey,
                _phone(rng, nationkey),
                _money(rng, -999.99, 9999.99),
                rng.choice(SEGMENTS),
                _comment(rng, 117),
            )
        )

    rng = DeterministicRng(seed, "part")
    for key in range(1, num_parts + 1):
        name = " ".join(rng.sample(COLORS, 5))
        mfgr = rng.randrange(1, 6)
        brand = mfgr * 10 + rng.randrange(1, 6)
        ptype = (
            f"{rng.choice(TYPE_SYLLABLE_1)} {rng.choice(TYPE_SYLLABLE_2)} "
            f"{rng.choice(TYPE_SYLLABLE_3)}"
        )
        container = f"{rng.choice(CONTAINER_SYLLABLE_1)} {rng.choice(CONTAINER_SYLLABLE_2)}"
        retail = round(
            (90000 + (key % 200001) / 10.0 + 100 * (key % 1000)) / 100.0, 2
        )
        data.part.append(
            (
                key,
                name,
                f"Manufacturer#{mfgr}",
                f"Brand#{brand}",
                ptype,
                rng.randrange(1, 51),
                container,
                retail,
                _comment(rng, 23),
            )
        )

    rng = DeterministicRng(seed, "partsupp")
    for part_key in range(1, num_parts + 1):
        for i in range(4):
            supp_key = (
                (part_key + (i * ((num_suppliers // 4) + 1))) % num_suppliers
            ) + 1
            data.partsupp.append(
                (
                    part_key,
                    supp_key,
                    rng.randrange(1, 10_000),
                    _money(rng, 1.00, 1000.00),
                    _comment(rng, 199),
                )
            )

    rng = DeterministicRng(seed, "orders")
    line_rng = DeterministicRng(seed, "lineitem")
    order_key = 0
    for i in range(1, num_orders + 1):
        order_key += rng.choice((1, 3, 4))  # sparse keys, like dbgen
        # Spec: a third of customers never place orders (custkey % 3 == 0),
        # which is what Q13's zero-order bucket and Q22 rely on.
        cust_key = rng.randrange(1, num_customers + 1)
        while cust_key % 3 == 0:
            cust_key = rng.randrange(1, num_customers + 1)
        order_date = _date(rng, START_DATE, END_DATE - datetime.timedelta(days=151))
        priority = rng.choice(PRIORITIES)
        comment = (
            _special_requests_comment(rng)
            if rng.chance(0.05)
            else _comment(rng, 79)
        )
        lines = []
        num_lines = rng.randrange(1, 8)
        total = 0.0
        for line_no in range(1, num_lines + 1):
            part_key = line_rng.randrange(1, num_parts + 1)
            retail = data.part[part_key - 1][7]
            supp_index = line_rng.randrange(4)
            supp_key = (
                (part_key + (supp_index * ((num_suppliers // 4) + 1)))
                % num_suppliers
            ) + 1
            quantity = line_rng.randrange(1, 51)
            extended = round(quantity * retail, 2)
            discount = line_rng.randrange(0, 11) / 100.0
            tax = line_rng.randrange(0, 9) / 100.0
            ship_date = order_date + datetime.timedelta(
                days=line_rng.randrange(1, 122)
            )
            commit_date = order_date + datetime.timedelta(
                days=line_rng.randrange(30, 91)
            )
            receipt_date = ship_date + datetime.timedelta(
                days=line_rng.randrange(1, 31)
            )
            if receipt_date <= CURRENT_DATE:
                return_flag = line_rng.choice(("R", "A"))
            else:
                return_flag = "N"
            line_status = "F" if ship_date <= CURRENT_DATE else "O"
            lines.append(
                (
                    order_key,
                    part_key,
                    supp_key,
                    line_no,
                    float(quantity),
                    extended,
                    discount,
                    tax,
                    return_flag,
                    line_status,
                    ship_date,
                    commit_date,
                    receipt_date,
                    line_rng.choice(INSTRUCTIONS),
                    line_rng.choice(SHIP_MODES),
                    _comment(line_rng, 44),
                )
            )
            total += round(extended * (1 + tax) * (1 - discount), 2)
        all_f = all(l[9] == "F" for l in lines)
        all_o = all(l[9] == "O" for l in lines)
        status = "F" if all_f else ("O" if all_o else "P")
        data.orders.append(
            (
                order_key,
                cust_key,
                status,
                round(total, 2),
                order_date,
                priority,
                f"Clerk#{rng.randrange(1, 1001):09d}",
                0,
                comment,
            )
        )
        data.lineitem.extend(lines)
    return data
