"""TPC-H table definitions and loading helpers.

``create_table_sql`` emits HAWQ DDL with configurable storage format,
compression and distribution policy — the axes Figures 6-11 sweep.
Distribution keys follow the paper's setup: ``orders`` and ``lineitem``
share ``orderkey`` hashing so their join is co-located (Section 2.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

TABLE_NAMES = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)

_COLUMNS: Dict[str, str] = {
    "region": """
        r_regionkey INTEGER NOT NULL,
        r_name CHAR(25) NOT NULL,
        r_comment VARCHAR(152)
    """,
    "nation": """
        n_nationkey INTEGER NOT NULL,
        n_name CHAR(25) NOT NULL,
        n_regionkey INTEGER NOT NULL,
        n_comment VARCHAR(152)
    """,
    "supplier": """
        s_suppkey INTEGER NOT NULL,
        s_name CHAR(25) NOT NULL,
        s_address VARCHAR(40) NOT NULL,
        s_nationkey INTEGER NOT NULL,
        s_phone CHAR(15) NOT NULL,
        s_acctbal DECIMAL(15,2) NOT NULL,
        s_comment VARCHAR(101) NOT NULL
    """,
    "customer": """
        c_custkey INTEGER NOT NULL,
        c_name VARCHAR(25) NOT NULL,
        c_address VARCHAR(40) NOT NULL,
        c_nationkey INTEGER NOT NULL,
        c_phone CHAR(15) NOT NULL,
        c_acctbal DECIMAL(15,2) NOT NULL,
        c_mktsegment CHAR(10) NOT NULL,
        c_comment VARCHAR(117) NOT NULL
    """,
    "part": """
        p_partkey INTEGER NOT NULL,
        p_name VARCHAR(55) NOT NULL,
        p_mfgr CHAR(25) NOT NULL,
        p_brand CHAR(10) NOT NULL,
        p_type VARCHAR(25) NOT NULL,
        p_size INTEGER NOT NULL,
        p_container CHAR(10) NOT NULL,
        p_retailprice DECIMAL(15,2) NOT NULL,
        p_comment VARCHAR(23) NOT NULL
    """,
    "partsupp": """
        ps_partkey INTEGER NOT NULL,
        ps_suppkey INTEGER NOT NULL,
        ps_availqty INTEGER NOT NULL,
        ps_supplycost DECIMAL(15,2) NOT NULL,
        ps_comment VARCHAR(199) NOT NULL
    """,
    "orders": """
        o_orderkey INT8 NOT NULL,
        o_custkey INTEGER NOT NULL,
        o_orderstatus CHAR(1) NOT NULL,
        o_totalprice DECIMAL(15,2) NOT NULL,
        o_orderdate DATE NOT NULL,
        o_orderpriority CHAR(15) NOT NULL,
        o_clerk CHAR(15) NOT NULL,
        o_shippriority INTEGER NOT NULL,
        o_comment VARCHAR(79) NOT NULL
    """,
    "lineitem": """
        l_orderkey INT8 NOT NULL,
        l_partkey INTEGER NOT NULL,
        l_suppkey INTEGER NOT NULL,
        l_linenumber INTEGER NOT NULL,
        l_quantity DECIMAL(15,2) NOT NULL,
        l_extendedprice DECIMAL(15,2) NOT NULL,
        l_discount DECIMAL(15,2) NOT NULL,
        l_tax DECIMAL(15,2) NOT NULL,
        l_returnflag CHAR(1) NOT NULL,
        l_linestatus CHAR(1) NOT NULL,
        l_shipdate DATE NOT NULL,
        l_commitdate DATE NOT NULL,
        l_receiptdate DATE NOT NULL,
        l_shipinstruct CHAR(25) NOT NULL,
        l_shipmode CHAR(10) NOT NULL,
        l_comment VARCHAR(44) NOT NULL
    """,
}

#: The paper's co-location-friendly distribution keys.
DISTRIBUTION_KEYS: Dict[str, str] = {
    "region": "r_regionkey",
    "nation": "n_nationkey",
    "supplier": "s_suppkey",
    "customer": "c_custkey",
    "part": "p_partkey",
    "partsupp": "ps_partkey",
    "orders": "o_orderkey",
    "lineitem": "l_orderkey",
}


def create_table_sql(
    table: str,
    storage_format: str = "ao",
    compression: str = "none",
    distribution: str = "hash",
) -> str:
    """DDL for one TPC-H table under the given physical design."""
    orientation = {"ao": "row", "co": "column", "parquet": "parquet"}[storage_format]
    options = [f"appendonly=true", f"orientation={orientation}"]
    if compression != "none":
        if compression.startswith(("zlib", "gzip")) and compression[-1].isdigit():
            options.append(f"compresstype={compression[:-1]}")
            options.append(f"compresslevel={compression[-1]}")
        else:
            options.append(f"compresstype={compression}")
    with_clause = "WITH (" + ", ".join(options) + ")"
    if distribution == "hash":
        dist_clause = f"DISTRIBUTED BY ({DISTRIBUTION_KEYS[table]})"
    else:
        dist_clause = "DISTRIBUTED RANDOMLY"
    return (
        f"CREATE TABLE {table} ({_COLUMNS[table]}) {with_clause} {dist_clause}"
    )


def load_tpch(
    session,
    scale: float = 0.01,
    storage_format: str = "ao",
    compression: str = "none",
    distribution: str = "hash",
    seed: int = 19940601,
    analyze: bool = True,
    data=None,
):
    """Create, load and ANALYZE all eight tables; returns the TpchData."""
    from repro.tpch.dbgen import generate

    if data is None:
        data = generate(scale, seed=seed)
    for table in TABLE_NAMES:
        session.execute(
            create_table_sql(table, storage_format, compression, distribution)
        )
        session.load_rows(table, getattr(data, table))
    if analyze:
        session.execute("ANALYZE")
    return data
