"""TPC-H: schema DDL, a scaled-down deterministic dbgen, and the 22
benchmark queries adapted to the supported dialect (as the paper adapted
them for Stinger)."""

from repro.tpch.dbgen import TpchData, generate
from repro.tpch.queries import QUERIES, query_sql
from repro.tpch.schema import TABLE_NAMES, create_table_sql, load_tpch

__all__ = [
    "QUERIES",
    "TABLE_NAMES",
    "TpchData",
    "create_table_sql",
    "generate",
    "load_tpch",
    "query_sql",
]
