"""Interconnect chaos drill: a seeded tuple stream over a degraded fabric.

The SQL executor charges interconnect work through the cost model rather
than pushing live packets, so packet-level faults (drop, duplicate,
corrupt, delay) cannot surface inside a query. This drill exercises them
directly: it runs one UDP interconnect stream — the paper §4 reliability
protocol — over a :class:`SimNetwork` degraded by the fault plan's
``net_degrade`` event, and asserts the protocol still delivers every
payload exactly once, in order, within a simulated-clock deadline (the
hang watchdog).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.interconnect import StreamKey, UdpEndpoint
from repro.network import NetworkConditions, SimNetwork

#: Baseline degraded fabric used when a plan carries no net_degrade event:
#: lossy, duplicating, corrupting and slow — but survivable.
DEGRADED = NetworkConditions(
    latency=3e-4,
    jitter=2e-4,
    loss_rate=0.12,
    dup_rate=0.08,
    corrupt_rate=0.05,
)


@dataclass
class DrillReport:
    """Outcome of one interconnect drill."""

    seed: int
    messages: int
    delivered: int
    in_order: bool
    retransmits: int
    duplicates: int
    corrupt_dropped: int
    sim_seconds: float

    @property
    def ok(self) -> bool:
        return self.in_order and self.delivered == self.messages


def run_drill(
    seed: int,
    conditions: Optional[NetworkConditions] = None,
    messages: int = 150,
    max_sim_seconds: float = 120.0,
) -> DrillReport:
    """Stream ``messages`` payloads across a degraded fabric.

    ``max_sim_seconds`` bounds the *simulated* clock: if the protocol
    ever livelocked (e.g. an ack storm that never converges) the event
    loop would stop there and the report would show missing payloads
    instead of the test hanging.
    """
    net = SimNetwork(conditions or DEGRADED, seed=seed)
    sender_end = UdpEndpoint(net, ("qe-send", 4000))
    receiver_end = UdpEndpoint(net, ("qe-recv", 4000))
    key = StreamKey(
        session_id=seed % 1000, command_id=1, motion_id=1, sender_id=0, receiver_id=1
    )
    recv = receiver_end.create_receiver(key, ("qe-send", 4000))
    send = sender_end.create_sender(key, ("qe-recv", 4000))
    payloads = list(range(messages))
    for payload in payloads:
        send.send(payload, size=96)
    send.finish()
    elapsed = net.run(
        until=lambda: send.done and recv.done, max_time=max_sim_seconds
    )
    return DrillReport(
        seed=seed,
        messages=messages,
        delivered=len(recv.received),
        in_order=recv.received == payloads,
        retransmits=send.retransmits,
        duplicates=recv.duplicates,
        corrupt_dropped=sender_end.corrupt_dropped + receiver_end.corrupt_dropped,
        sim_seconds=elapsed,
    )
