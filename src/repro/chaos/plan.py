"""Seeded fault schedules: *what* breaks *when* on the simulated clock.

A :class:`FaultPlan` is a deterministic schedule of :class:`FaultEvent`s.
Event times are simulated seconds on the chaos clock — the clock a
:class:`~repro.chaos.injector.FaultInjector` advances as the engine
reports completed simulated work — so a plan generated from a seed
always breaks the same things at the same points of the same workload.

Two trigger families exist:

* **Clock events** (``events``) fire when the chaos clock passes their
  ``at`` timestamp: segment kills/revivals, DataNode and disk failures,
  interconnect degradation, NameNode re-replication passes, master
  crashes, and mid-query transaction aborts.
* **WAL triggers** (``abort_at_lsn_offsets``) fire when the write-ahead
  log grows past an offset measured from injector attach time, aborting
  whichever transaction wrote that record — the paper's "transaction
  aborted at a chosen WAL point" failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.util import DeterministicRng

#: Every fault kind the injector knows how to apply.
EVENT_KINDS = frozenset(
    {
        "kill_segment",  # target: segment id
        "revive_segment",  # target: segment id
        "fail_disk",  # target: host, args: {"disk": index}
        "fail_datanode",  # target: host
        "revive_datanode",  # target: host
        "check_replication",  # NameNode background re-replication pass
        "crash_master",  # promote the warm standby
        "abort_txn",  # abort the running transaction (mid-query only)
        "net_degrade",  # args: NetworkConditions overrides for the drill
    }
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on the chaos clock."""

    at: float
    kind: str
    target: Optional[object] = None
    args: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ReproError(f"unknown fault event kind {self.kind!r}")
        if self.at < 0:
            raise ReproError("fault events cannot be scheduled before t=0")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults for one chaos run."""

    events: List[FaultEvent] = field(default_factory=list)
    #: One-shot WAL triggers, as offsets from the log length at injector
    #: attach time; each aborts the transaction writing that record.
    abort_at_lsn_offsets: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.at)
        self.abort_at_lsn_offsets = sorted(self.abort_at_lsn_offsets)

    def __len__(self) -> int:
        return len(self.events) + len(self.abort_at_lsn_offsets)

    def describe(self) -> List[str]:
        lines = [
            f"t={event.at:.4f}s {event.kind}"
            + (f" target={event.target}" if event.target is not None else "")
            + (f" args={event.args}" if event.args else "")
            for event in self.events
        ]
        lines.extend(
            f"wal+{offset} abort_txn_at_lsn" for offset in self.abort_at_lsn_offsets
        )
        return lines


def random_plan(
    seed: int,
    horizon: float,
    *,
    hosts: Sequence[str],
    num_segments: int,
    replication: int = 3,
    disks_per_host: int = 12,
    with_master_crash: bool = True,
) -> FaultPlan:
    """Draw a seeded fault schedule for a run of roughly ``horizon``
    chaos-clock seconds.

    The draw is bounded so that a schedule is always *survivable after
    heal*: at most ``replication - 1`` disk failures (each destroys at
    most one replica of any block, and replicas live on distinct hosts),
    at most one DataNode down at a time (node death hides replicas but
    does not destroy them), and at most one master crash (there is one
    standby). Within those bounds anything goes — including killing
    every segment, which merely makes queries fail cleanly until the
    segments are recovered.
    """
    if horizon <= 0:
        raise ReproError("random_plan needs a positive horizon")
    rng = DeterministicRng(seed, "fault-plan")
    events: List[FaultEvent] = []

    def when() -> float:
        return rng.uniform(0.0, horizon)

    # --- stateless-segment kills (the paper's bread and butter) -----------
    for _ in range(rng.randint(1, 3)):
        segment_id = rng.randrange(num_segments)
        killed_at = when()
        events.append(FaultEvent(killed_at, "kill_segment", segment_id))
        if rng.chance(0.5):
            events.append(
                FaultEvent(
                    rng.uniform(killed_at, horizon), "revive_segment", segment_id
                )
            )

    # --- two-level disk fault tolerance -----------------------------------
    disk_hosts = list(hosts)
    rng.shuffle(disk_hosts)
    for host in disk_hosts[: rng.randint(0, replication - 1)]:
        events.append(
            FaultEvent(
                when(), "fail_disk", host, {"disk": rng.randrange(disks_per_host)}
            )
        )

    # --- whole-DataNode failure (always revived within the plan) ----------
    if rng.chance(0.4):
        host = rng.choice(list(hosts))
        down_at = when()
        events.append(FaultEvent(down_at, "fail_datanode", host))
        events.append(
            FaultEvent(rng.uniform(down_at, horizon), "revive_datanode", host)
        )

    # --- NameNode background healing runs on the same clock ---------------
    for _ in range(rng.randint(1, 2)):
        events.append(FaultEvent(when(), "check_replication"))

    # --- master crash: warm standby promotion -----------------------------
    if with_master_crash and rng.chance(0.3):
        events.append(FaultEvent(when(), "crash_master"))

    # --- transaction aborts ------------------------------------------------
    if rng.chance(0.3):
        events.append(FaultEvent(when(), "abort_txn"))
    offsets = [rng.randint(2, 40) for _ in range(rng.randint(0, 2))]

    # --- interconnect degradation beyond simnet's baseline ----------------
    if rng.chance(0.5):
        events.append(
            FaultEvent(
                when(),
                "net_degrade",
                None,
                {
                    "loss_rate": rng.uniform(0.05, 0.2),
                    "dup_rate": rng.uniform(0.0, 0.1),
                    "corrupt_rate": rng.uniform(0.0, 0.08),
                    "latency": rng.uniform(1e-4, 8e-4),
                },
            )
        )

    return FaultPlan(events=events, abort_at_lsn_offsets=offsets)
