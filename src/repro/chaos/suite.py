"""The chaos property suite: seeded fault schedules over a TPC-H subset.

One *schedule* is: build a small cluster (3 hosts x 2 segments, a warm
standby master, 3-way HDFS replication), load a TPC-H subset, attach a
:class:`FaultInjector` carrying a :func:`random_plan` draw, then run a
fixed script of TPC-H queries interleaved with single-row inserts while
the plan kills segments, fails disks and DataNodes, crashes the master
and aborts transactions. The properties asserted per schedule:

* **No wrong answers** — every statement that *returns* must return the
  fault-free twin's rows bit-identically; a fault may only surface as a
  clean :class:`~repro.errors.ClusterError`.
* **No hangs** — simulated cost per statement is bounded, and the
  interconnect drill's event loop runs under a simulated-clock deadline.
* **Recovery invariants** — after healing (recover segments, restore
  DataNodes, let the NameNode re-replicate): the replication factor is
  restored, the (possibly promoted-standby) catalog answers every query
  with fault-free rows, committed inserts survive exactly (no lost
  commits, no resurrected aborts) and no non-empty HDFS file is
  unreferenced by the catalog (no orphaned segfiles).

The *fault-free twin* doubles as the metronome: an empty-plan injector
meters how many chaos-clock seconds the script takes, and that horizon
seeds the random plan so faults land inside the run deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.injector import FaultInjector
from repro.chaos.netdrill import DrillReport, run_drill
from repro.chaos.plan import FaultEvent, FaultPlan, random_plan
from repro.engine import Engine
from repro.errors import ClusterError
from repro.executor.concurrent import ConcurrentRunner
from repro.obs.trace import rpc_closure_violations, trace_query_id_violations
from repro.tpch import QUERIES, create_table_sql, generate
from repro.util import DeterministicRng

#: TPC-H scale factor for chaos runs: small enough that one schedule is
#: sub-second, large enough that every segment holds multiple blocks.
SCALE = 0.0005
DATA_SEED = 19940601
#: Tables needed by the query mix (Q1/Q6 on lineitem, Q3 joins all three).
CHAOS_TABLES = ("customer", "orders", "lineitem")
#: Chaos-clock seconds charged between statements (dispatch overhead),
#: kept small so in-query scan pulses are a big slice of the horizon.
STATEMENT_QUANTUM = 0.01
#: A statement whose simulated cost exceeds this has hung by any
#: reasonable reading of the cost model (the whole script costs < 10s).
SIM_WATCHDOG_SECONDS = 3600.0
REPLICATION = 3
#: The concurrent phase (PR 7): every schedule also replays this many
#: closed-loop SELECT streams with a seeded mid-flight segment kill.
CONCURRENT_STREAMS = 4
CONCURRENT_STATEMENTS = 3


def build_engine(seed: int = 0) -> Engine:
    """A chaos-sized cluster: small blocks force multi-block files."""
    return Engine(
        num_segment_hosts=3,
        segments_per_host=2,
        seed=seed,
        replication=REPLICATION,
        block_size=16 * 1024,
    )


def generate_data(scale: float = SCALE, seed: int = DATA_SEED):
    return generate(scale, seed=seed)


def load_workload(engine: Engine, data):
    """Create + load the TPC-H subset and the chaos_log scratch table."""
    session = engine.connect()
    for table in CHAOS_TABLES:
        session.execute(create_table_sql(table))
        session.load_rows(table, getattr(data, table))
    session.execute(
        "CREATE TABLE chaos_log (id INTEGER, note VARCHAR(32)) DISTRIBUTED BY (id)"
    )
    session.execute("ANALYZE")
    return session


def script() -> List[Tuple[str, str, str]]:
    """The fixed statement script every schedule runs: (kind, name, sql)."""
    return [
        ("query", "q6", QUERIES[6][0]),
        ("insert", "ins0", "INSERT INTO chaos_log VALUES (0, 'chaos-0')"),
        ("query", "q1", QUERIES[1][0]),
        ("insert", "ins1", "INSERT INTO chaos_log VALUES (1, 'chaos-1')"),
        ("query", "q3", QUERIES[3][0]),
        ("insert", "ins2", "INSERT INTO chaos_log VALUES (2, 'chaos-2')"),
        ("query", "q6-again", QUERIES[6][0]),
    ]


@dataclass
class Baseline:
    """The fault-free twin: expected rows per query step + the horizon."""

    expected: Dict[int, List[tuple]]
    horizon: float


@dataclass
class ScheduleReport:
    """What one chaos schedule did and whether any property broke."""

    seed: int
    violations: List[str]
    clean_failures: List[str]
    fired: List[Tuple[float, str]]
    retries: int
    promoted: bool
    committed: int
    drill: Optional[DrillReport] = None
    #: Queries the concurrent-phase kill cleanly failed (all of which
    #: must have touched the dead segment).
    concurrent_failed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def fault_free_baseline(data) -> Baseline:
    """Run the script with an empty plan: expected rows + chaos horizon."""
    engine = build_engine()
    session = load_workload(engine, data)
    session.trace_enabled = True
    meter = FaultInjector(engine, FaultPlan())
    engine.attach_chaos(meter)
    expected: Dict[int, List[tuple]] = {}
    for index, (kind, _name, sql) in enumerate(script()):
        result = session.execute(sql)
        if kind == "query":
            expected[index] = result.rows
        meter.pulse(STATEMENT_QUANTUM)
    meter.detach()
    return Baseline(expected=expected, horizon=max(meter.clock, STATEMENT_QUANTUM))


def run_schedule(seed: int, data, baseline: Baseline) -> ScheduleReport:
    """Run the script under one seeded fault schedule and check every
    chaos property; any violation lands in the report's ``violations``."""
    engine = build_engine()
    session = load_workload(engine, data)
    # Trace every scripted statement: the per-attempt RPC event log is
    # what the protocol-closure invariant below is checked against.
    session.trace_enabled = True
    plan = random_plan(
        seed,
        baseline.horizon,
        hosts=engine.hosts,
        num_segments=engine.num_segments,
        replication=REPLICATION,
    )
    injector = FaultInjector(engine, plan)
    engine.attach_chaos(injector)

    violations: List[str] = []
    clean_failures: List[str] = []
    committed = 0
    retries = 0

    def quantum() -> None:
        # Applying a due event can itself run a catalog transaction
        # (fault detection marking a segment down) and trip a WAL abort
        # trigger — a clean failure with no statement attached.
        try:
            injector.pulse(STATEMENT_QUANTUM)
        except ClusterError as exc:
            clean_failures.append(
                f"between statements: {type(exc).__name__}: {exc}"
            )

    for index, (kind, name, sql) in enumerate(script()):
        try:
            result = session.execute(sql)
        except ClusterError as exc:
            # The allowed failure mode: a clean, typed cluster error.
            clean_failures.append(f"step {index} ({name}): {type(exc).__name__}: {exc}")
            quantum()
            continue
        except Exception as exc:  # noqa: BLE001 - the property under test
            violations.append(
                f"step {index} ({name}): NON-CLEAN failure "
                f"{type(exc).__name__}: {exc}"
            )
            quantum()
            continue
        retries += result.retries
        if result.cost.seconds > SIM_WATCHDOG_SECONDS:
            violations.append(
                f"step {index} ({name}): simulated hang "
                f"({result.cost.seconds:.1f}s simulated)"
            )
        if kind == "query" and result.rows != baseline.expected[index]:
            violations.append(f"step {index} ({name}): WRONG ANSWER under faults")
        if kind == "insert":
            committed += 1
        quantum()

    # Fire whatever the plan still holds so heal sees the full fault
    # state, then stop injecting before recovery runs. Events are popped
    # before application, so draining past a WAL-trigger abort resumes
    # with the next event.
    while True:
        try:
            if injector.drain() == 0:
                break
        except ClusterError as exc:
            clean_failures.append(f"during drain: {type(exc).__name__}: {exc}")
    promoted = engine.standby is None
    net_conditions = injector.net_conditions
    engine.chaos = None
    injector.detach()

    heal(engine)
    check_recovery_invariants(engine, session, baseline, committed, violations)

    # Trace invariant (RPC protocol closure): in every traced attempt —
    # including failed ones — each DISPATCH is closed by exactly one
    # COMPLETE or synthetic ABORT, and a killed segment never COMPLETEs.
    for trace in session.tracer.queries:
        violations.extend(rpc_closure_violations(trace))

    # Concurrency under chaos (PR 7): replay seeded concurrent streams
    # on the healed cluster with one mid-flight segment kill.
    concurrent_failed = run_concurrent_phase(engine, seed, violations)

    # Packet-level chaos: the paper-§4 UDP protocol must still deliver
    # exactly-once in-order over the plan's degraded fabric.
    drill = run_drill(seed, conditions=net_conditions)
    if not drill.ok:
        violations.append(
            f"interconnect drill: delivered {drill.delivered}/{drill.messages},"
            f" in_order={drill.in_order}"
        )

    return ScheduleReport(
        seed=seed,
        violations=violations,
        clean_failures=clean_failures,
        fired=list(injector.fired),
        retries=retries,
        promoted=promoted,
        committed=committed,
        drill=drill,
        concurrent_failed=concurrent_failed,
    )


def concurrent_streams(seed: int) -> List[List[str]]:
    """Seeded SELECT-only stream mix: full scans (Q6/Q1) that touch
    every segment, plus direct-dispatch customer point lookups that
    touch exactly one — so a kill can hit or miss a given query."""
    pool = [
        QUERIES[6][0],
        QUERIES[1][0],
    ]
    streams: List[List[str]] = []
    for stream_id in range(CONCURRENT_STREAMS):
        rng = DeterministicRng(seed, "chaos-concurrent", f"stream{stream_id}")
        stream = []
        for _ in range(CONCURRENT_STATEMENTS):
            if rng.chance(0.5):
                key = rng.randrange(1, 76)  # SCALE=0.0005 -> keys 1..75
                stream.append(
                    "SELECT c_custkey, c_name FROM customer "
                    f"WHERE c_custkey = {key}"
                )
            else:
                stream.append(pool[rng.randrange(len(pool))])
        streams.append(stream)
    return streams


def _metered_concurrent_run(
    engine: Engine,
    injector: FaultInjector,
    streams: List[List[str]],
    starts: List[float],
    ends: List[float],
    queues: Optional[Dict[int, str]] = None,
):
    """Run the streams concurrently while metering submission windows
    on the injector's chaos clock. The clock right before each pulse
    closes the *previous* submission's window; right after it opens the
    next one's. A kill must land between a statement's own start and
    end to be mid-query."""

    def before_query(stream_id, index):
        ends.append(injector.clock)
        injector.pulse(STATEMENT_QUANTUM)
        starts.append(injector.clock)

    runner = ConcurrentRunner(
        engine,
        streams,
        queues=queues,
        trace=True,
        allow_failures=True,
        before_query=before_query,
    )
    batch = runner.run()
    ends.append(injector.clock)
    del ends[0]  # clock before the first statement's pulse
    return runner, batch


def run_concurrent_phase(
    engine: Engine, seed: int, violations: List[str]
) -> int:
    """Chaos under concurrency: 4 closed-loop streams, one seeded kill.

    An empty-plan metering run establishes the expected rows, the set of
    segments each statement touches, and the chaos-clock time of every
    submission. A seeded (victim segment, submission) pair then places a
    ``kill_segment`` inside that submission's execution window and the
    same streams replay with no query retries. Properties:

    * a killed segment fails only queries whose slices touch it (clean
      :class:`~repro.errors.QueryRetriesExhausted`, nothing else);
    * every surviving query returns rows bit-identical to the fault-free
      run;
    * per-query traces stay disjoint: each trace's RPC protocol closes
      per attempt, carries only its own query id, and no query id
      repeats across the phase's sessions.
    """
    streams = concurrent_streams(seed)
    total = sum(len(s) for s in streams)

    # Fault-free twin: expected rows, touched segments, scan windows.
    meter = FaultInjector(engine, FaultPlan())
    engine.attach_chaos(meter)
    starts: List[float] = []
    ends: List[float] = []
    try:
        _runner, expected = _metered_concurrent_run(
            engine, meter, streams, starts, ends
        )
    finally:
        engine.chaos = None
        meter.detach()
    for outcome in expected.outcomes:
        if outcome.error is not None:
            violations.append(
                f"concurrent fault-free run failed: {outcome.error}"
            )
            return 0

    rng = DeterministicRng(seed, "chaos-concurrent", "kill")
    victim = rng.randrange(engine.num_segments)
    # Aim at a statement that actually charges scan time (a point
    # lookup's window is near-empty and the kill would drift past it).
    candidates = [
        k for k in range(total) if ends[k] - starts[k] > 1e-6
    ] or list(range(total))
    target = candidates[rng.randrange(len(candidates))]
    kill_at = (starts[target] + ends[target]) / 2

    saved_retries = engine.max_query_retries
    engine.max_query_retries = 0
    injector = FaultInjector(
        engine,
        FaultPlan(events=[
            FaultEvent(at=kill_at, kind="kill_segment", target=victim)
        ]),
    )
    engine.attach_chaos(injector)
    try:
        chaos_runner, chaos = _metered_concurrent_run(
            engine, injector, streams, [], []
        )
    finally:
        engine.max_query_retries = saved_retries
        engine.chaos = None
        injector.detach()

    failed = 0
    expected_by_key = {
        (o.stream, o.index): o for o in expected.outcomes
    }
    for outcome in chaos.outcomes:
        twin = expected_by_key[(outcome.stream, outcome.index)]
        if outcome.error is not None:
            failed += 1
            if victim not in twin.segments:
                violations.append(
                    f"concurrent kill of seg{victim} failed stream "
                    f"{outcome.stream} stmt {outcome.index}, whose slices "
                    f"touch only {twin.segments}"
                )
            if "QueryRetriesExhausted" not in outcome.error:
                violations.append(
                    f"concurrent kill: stream {outcome.stream} stmt "
                    f"{outcome.index} failed NON-CLEANLY: {outcome.error}"
                )
        elif outcome.rows != twin.rows:
            violations.append(
                f"concurrent survivor diverged: stream {outcome.stream} "
                f"stmt {outcome.index} rows differ from fault-free run"
            )

    seen_ids = set()
    for session in chaos_runner.sessions:
        for trace in session.tracer.queries:
            violations.extend(rpc_closure_violations(trace))
            violations.extend(trace_query_id_violations(trace))
            if trace.query_id and trace.query_id in seen_ids:
                violations.append(
                    f"duplicate query id {trace.query_id} across "
                    "concurrent sessions"
                )
            seen_ids.add(trace.query_id)

    heal(engine)
    failed += run_admission_kill_phase(
        engine, seed, violations, expected_by_key
    )
    heal(engine)
    return failed


def run_admission_kill_phase(
    engine: Engine,
    seed: int,
    violations: List[str],
    expected_by_key: Dict[Tuple[int, int], object],
) -> int:
    """Chaos inside the admission window: the same streams replay
    through a one-slot resource queue, so at any instant one statement
    executes while the other stream heads sit *parked* waiting for
    admission — a mid-execution kill therefore lands inside the
    waiters' admission windows. On top of the mid-flight phase's
    properties:

    * **waiters drain** — every submitted statement settles with rows
      or a clean error; the failed query's slot is released, nobody
      waits forever, and the closed-loop streams run to completion;
    * parking provably happened (the queue's stats saw waiters), so
      the kill overlapped admission waits;
    * queue pressure changes no rows: the queued fault-free twin and
      every chaos survivor stay bit-identical to the unqueued run.
    """
    session = engine.connect()
    session.execute(
        "CREATE RESOURCE QUEUE chaos_narrow WITH (active_statements=1)"
    )
    streams = concurrent_streams(seed)
    total = sum(len(s) for s in streams)
    queues = {sid: "chaos_narrow" for sid in range(len(streams))}

    # Queued fault-free twin: parking reshapes every window, so the
    # unqueued phase's windows cannot place this phase's kill.
    meter = FaultInjector(engine, FaultPlan())
    engine.attach_chaos(meter)
    starts: List[float] = []
    ends: List[float] = []
    try:
        _runner, queued = _metered_concurrent_run(
            engine, meter, streams, starts, ends, queues
        )
    finally:
        engine.chaos = None
        meter.detach()
    queued_by_key = {}
    for outcome in queued.outcomes:
        if outcome.error is not None:
            violations.append(
                f"admission-window fault-free run failed: {outcome.error}"
            )
            return 0
        queued_by_key[(outcome.stream, outcome.index)] = outcome
        twin = expected_by_key[(outcome.stream, outcome.index)]
        if outcome.rows != twin.rows:
            violations.append(
                f"queue pressure changed rows: stream {outcome.stream} "
                f"stmt {outcome.index} diverges from the unqueued run"
            )
    if not any(o.queue_wait > 0 for o in queued.outcomes):
        violations.append(
            "admission-window phase: a one-slot queue under "
            f"{len(streams)} streams parked nobody"
        )
        return 0

    rng = DeterministicRng(seed, "chaos-concurrent", "admission-kill")
    victim = rng.randrange(engine.num_segments)
    candidates = [
        k for k in range(total) if ends[k] - starts[k] > 1e-6
    ] or list(range(total))
    target = candidates[rng.randrange(len(candidates))]
    kill_at = (starts[target] + ends[target]) / 2

    saved_retries = engine.max_query_retries
    engine.max_query_retries = 0
    injector = FaultInjector(
        engine,
        FaultPlan(events=[
            FaultEvent(at=kill_at, kind="kill_segment", target=victim)
        ]),
    )
    engine.attach_chaos(injector)
    try:
        chaos_runner, chaos = _metered_concurrent_run(
            engine, injector, streams, [], [], queues
        )
    finally:
        engine.max_query_retries = saved_retries
        engine.chaos = None
        injector.detach()

    failed = 0
    settled = 0
    for outcome in chaos.outcomes:
        twin = queued_by_key[(outcome.stream, outcome.index)]
        if outcome.error is not None or outcome.rows is not None:
            settled += 1
        if outcome.error is not None:
            failed += 1
            if victim not in twin.segments:
                violations.append(
                    f"admission-window kill of seg{victim} failed stream "
                    f"{outcome.stream} stmt {outcome.index}, whose slices "
                    f"touch only {twin.segments}"
                )
            if "QueryRetriesExhausted" not in outcome.error:
                violations.append(
                    f"admission-window kill: stream {outcome.stream} stmt "
                    f"{outcome.index} failed NON-CLEANLY: {outcome.error}"
                )
        elif outcome.rows != twin.rows:
            violations.append(
                f"admission-window survivor diverged: stream "
                f"{outcome.stream} stmt {outcome.index} rows differ "
                "from fault-free run"
            )
    if len(chaos.outcomes) != total or settled != total:
        violations.append(
            "admission-window waiters did not drain: "
            f"{settled}/{total} statements settled"
        )
    stats = chaos.queue_stats.get("chaos_narrow")
    if stats is None or stats.parked == 0:
        violations.append(
            "admission-window kill replay parked nobody: the kill "
            "cannot have overlapped an admission wait"
        )

    for session in chaos_runner.sessions:
        for trace in session.tracer.queries:
            violations.extend(rpc_closure_violations(trace))
            violations.extend(trace_query_id_violations(trace))

    return failed


def heal(engine: Engine) -> None:
    """The operator playbook: recover segments, restore DataNodes, let
    the NameNode re-replicate until nothing is under-replicated."""
    for segment in engine.segments:
        if not segment.alive:
            engine.recover_segment(segment.segment_id)
    for host, node in engine.hdfs.datanodes.items():
        if not node.alive:
            engine.hdfs.restore_datanode(host)
    for _ in range(4):
        engine.hdfs.check_replication()
        if not engine.hdfs.under_replicated():
            break


def check_recovery_invariants(
    engine: Engine,
    session,
    baseline: Baseline,
    committed: int,
    violations: List[str],
) -> None:
    """Post-heal invariants: replication restored, catalog correct on the
    serving master, committed data exact, no orphaned segfiles."""
    under = engine.hdfs.under_replicated()
    if under:
        violations.append(f"replication factor not restored for blocks {under}")

    for index, (kind, name, sql) in enumerate(script()):
        if kind != "query":
            continue
        try:
            rows = session.query(sql)
        except Exception as exc:  # noqa: BLE001 - post-heal must succeed
            violations.append(
                f"post-heal {name}: {type(exc).__name__}: {exc}"
            )
            continue
        if rows != baseline.expected[index]:
            violations.append(f"post-heal {name}: rows diverge from fault-free run")

    try:
        count = session.query("SELECT count(*) FROM chaos_log")[0][0]
    except Exception as exc:  # noqa: BLE001
        violations.append(f"post-heal chaos_log count: {type(exc).__name__}: {exc}")
    else:
        if count != committed:
            violations.append(
                f"durability: chaos_log has {count} rows,"
                f" client saw {committed} commits"
            )

    orphans = orphaned_files(engine)
    if orphans:
        violations.append(f"orphaned segfiles: {orphans[:3]}")


def orphaned_files(engine: Engine) -> List[str]:
    """Non-empty HDFS files under the data path no catalog segfile
    references — bytes an aborted transaction failed to reclaim."""
    with engine.txns.run() as txn:
        snapshot = txn.statement_snapshot()
        referenced = set()
        for relation in engine.catalog.relations(snapshot):
            if relation.get("kind") != "table":
                continue
            for segfile in engine.catalog.segfiles(relation["name"], snapshot):
                # ``paths`` maps file path -> committed logical length.
                referenced.update(segfile["paths"].keys())
    return [
        status.path
        for status in engine.hdfs.list_status(engine.data_path)
        if status.length > 0 and status.path not in referenced
    ]


def run_smoke(
    schedules: int = 5, scale: float = SCALE, data=None, seed: int = 0
) -> Dict[str, object]:
    """A quick seeded chaos sweep (the ``python -m repro.chaos --smoke``
    entry point and the tier-1 smoke test). ``seed`` offsets the block
    of schedule seeds, so ``--seed 100 --schedules 5`` replays exactly
    schedules 100..104."""
    if data is None:
        data = generate_data(scale)
    baseline = fault_free_baseline(data)
    reports = [
        run_schedule(s, data, baseline)
        for s in range(seed, seed + schedules)
    ]
    return {
        "schedules": len(reports),
        "violations": [v for r in reports for v in r.violations],
        "clean_failures": sum(len(r.clean_failures) for r in reports),
        "retries": sum(r.retries for r in reports),
        "promotions": sum(1 for r in reports if r.promoted),
        "faults_fired": sum(len(r.fired) for r in reports),
        "ok": all(r.ok for r in reports),
    }
