"""The fault injector: applies a :class:`FaultPlan` to a live engine.

The injector owns the *chaos clock* — a simulated-seconds counter the
engine advances through two hooks threaded into the execution path:

* ``Engine.chaos_point`` (→ :meth:`FaultInjector.tick`) marks an
  interruptible point, e.g. the start of a segment scan lane.
* ``Engine.chaos_progress`` (→ :meth:`FaultInjector.pulse`) reports
  completed simulated work, e.g. the charged seconds of a finished
  scan lane, advancing the clock.

Whenever the clock passes a scheduled event the injector applies it to
the engine. Events applied *inside* a query (``in_query=True``) also
raise the matching :class:`~repro.errors.ClusterError` so the query
fails the way a real fault would — then the dispatcher's bounded
restart loop takes over (restart over recover, paper §2.6).

WAL-offset triggers ride the write-ahead log instead of the clock: the
injector subscribes to the WAL and aborts the transaction that writes
the Nth catalog change after attach, reproducing "transaction aborted
at a chosen WAL point".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.chaos.plan import FaultEvent, FaultPlan
from repro.errors import (
    MasterUnavailable,
    ReproError,
    TransactionAbortedByFault,
)
from repro.network.simnet import NetworkConditions


class FaultInjector:
    """Applies one :class:`FaultPlan` to one engine, deterministically."""

    def __init__(self, engine, plan: FaultPlan):
        self.engine = engine
        self.plan = plan
        self.clock = 0.0
        #: (clock, description) log of everything that actually fired.
        self.fired: List[Tuple[float, str]] = []
        #: NetworkConditions requested by the latest net_degrade event,
        #: consumed by the interconnect drill (the SQL executor charges
        #: interconnect cost via the cost model, not a live fabric).
        self.net_conditions: Optional[NetworkConditions] = None
        self._pending: List[FaultEvent] = list(plan.events)  # sorted by .at
        # Resolve WAL offsets to absolute lsns relative to attach time.
        self._lsn_targets: List[int] = [
            self.engine.txns.wal.last_lsn + offset
            for offset in plan.abort_at_lsn_offsets
        ]
        self._wal_subscribed = False
        if self._lsn_targets:
            self.engine.txns.wal.subscribe(self._on_wal)
            self._wal_subscribed = True

    # ---------------------------------------------------------------- clock
    def tick(self, segment_id: Optional[int] = None, in_query: bool = False) -> None:
        """An interruptible point: fire everything already due."""
        self._fire_due(in_query=in_query)

    def pulse(
        self,
        seconds: float,
        segment_id: Optional[int] = None,
        in_query: bool = False,
    ) -> None:
        """Advance the chaos clock by completed simulated work."""
        if seconds > 0:
            self.clock += seconds
        self._fire_due(in_query=in_query)

    def drain(self) -> int:
        """Fire every remaining clock event, outside any query.

        Used at end of run so the heal/invariant phase sees the plan's
        full final fault state even when queries finished early.
        """
        remaining = len(self._pending)
        if remaining:
            self.clock = max(self.clock, self._pending[-1].at)
            self._fire_due(in_query=False)
        return remaining

    def detach(self) -> None:
        """Stop injecting (unsubscribe the WAL trigger)."""
        if self._wal_subscribed:
            self.engine.txns.wal.unsubscribe(self._on_wal)
            self._wal_subscribed = False

    # ------------------------------------------------------------- internals
    def _fire_due(self, in_query: bool) -> None:
        while self._pending and self._pending[0].at <= self.clock:
            event = self._pending.pop(0)
            self._apply(event, in_query=in_query)

    def _log(self, event: FaultEvent, note: str = "") -> None:
        text = event.kind
        if event.target is not None:
            text += f"({event.target})"
        if note:
            text += f" {note}"
        self.fired.append((self.clock, text))

    def _apply(self, event: FaultEvent, in_query: bool) -> None:
        engine = self.engine
        kind = event.kind
        if kind == "kill_segment":
            segment = engine.segments[int(event.target) % len(engine.segments)]
            if not segment.alive:
                self._log(event, "already down")
                return
            self._log(event)
            engine.fail_segment(segment.segment_id)
            # Kill the QE *process*, not the query: the worker's RPC
            # channel drops, so the query fails (as SegmentDown, into
            # the session's restart loop) only when that channel is
            # actually needed — the dead worker reporting COMPLETE, or
            # the master dispatching a later wave to it.
            engine.drop_worker_channel(segment.segment_id)
        elif kind == "revive_segment":
            segment = engine.segments[int(event.target) % len(engine.segments)]
            if segment.alive:
                self._log(event, "already up")
                return
            self._log(event)
            engine.recover_segment(segment.segment_id)
        elif kind == "fail_disk":
            host = str(event.target)
            if host not in engine.hdfs.datanodes:
                self._log(event, "no such host")
                return
            lost = engine.hdfs.fail_disk(host, int(event.args.get("disk", 0)))
            self._log(event, f"lost {len(lost)} replicas")
        elif kind == "fail_datanode":
            host = str(event.target)
            node = engine.hdfs.datanodes.get(host)
            if node is None or not node.alive:
                self._log(event, "already down")
                return
            self._log(event)
            engine.hdfs.fail_datanode(host)
        elif kind == "revive_datanode":
            host = str(event.target)
            node = engine.hdfs.datanodes.get(host)
            if node is None or node.alive:
                self._log(event, "already up")
                return
            self._log(event)
            engine.hdfs.restore_datanode(host)
        elif kind == "check_replication":
            copied = engine.hdfs.check_replication()
            self._log(event, f"created {copied} replicas")
        elif kind == "crash_master":
            if engine.standby is None:
                self._log(event, "no standby; skipped")
                return
            aborted = engine.crash_master()
            self._log(event, f"promoted standby, aborted xids {aborted}")
            if in_query:
                raise MasterUnavailable(
                    "chaos: primary master crashed mid-query; standby promoted"
                )
        elif kind == "abort_txn":
            if in_query:
                self._log(event)
                raise TransactionAbortedByFault(
                    "chaos: running transaction aborted by fault plan"
                )
            self._log(event, "no query in flight")
        elif kind == "net_degrade":
            overrides = {str(k): v for k, v in event.args.items()}
            self.net_conditions = NetworkConditions(**overrides)
            self._log(event, str(event.args))
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ReproError(f"unknown fault event kind {kind!r}")

    def _on_wal(self, record) -> None:
        """WAL subscriber: abort the txn writing the targeted record."""
        if record.kind != "change" or not self._lsn_targets:
            return
        if record.lsn >= self._lsn_targets[0]:
            target = self._lsn_targets.pop(0)
            self.fired.append(
                (self.clock, f"abort_at_lsn({target}) hit at lsn {record.lsn}")
            )
            raise TransactionAbortedByFault(
                f"chaos: transaction {record.xid} aborted at WAL lsn "
                f"{record.lsn} (trigger {target})"
            )
