"""Deterministic fault injection and the chaos property suite.

Everything here is seeded: a :class:`FaultPlan` drawn from a seed plus
the :class:`FaultInjector`'s simulated chaos clock reproduce the same
faults at the same points of the same workload, every run. See
``DESIGN.md`` ("Fault injection & recovery") for the mapping from paper
§2.6 claims to fault kinds and pinning tests.
"""

from repro.chaos.injector import FaultInjector
from repro.chaos.netdrill import DEGRADED, DrillReport, run_drill
from repro.chaos.plan import EVENT_KINDS, FaultEvent, FaultPlan, random_plan
from repro.chaos.suite import (
    Baseline,
    ScheduleReport,
    build_engine,
    fault_free_baseline,
    generate_data,
    heal,
    load_workload,
    orphaned_files,
    run_schedule,
    run_smoke,
    script,
)

__all__ = [
    "Baseline",
    "DEGRADED",
    "DrillReport",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ScheduleReport",
    "build_engine",
    "fault_free_baseline",
    "generate_data",
    "heal",
    "load_workload",
    "orphaned_files",
    "random_plan",
    "run_drill",
    "run_schedule",
    "run_smoke",
    "script",
]
