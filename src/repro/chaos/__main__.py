"""``python -m repro.chaos``: run a seeded chaos sweep from the shell.

``--smoke`` runs the short tier-1 sweep (a handful of schedules, ~30s);
``--schedules N`` widens it. Exit status 0 means every chaos property
held; 1 means at least one violation (printed).
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos.suite import SCALE, run_smoke


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="seeded fault-injection sweep over the TPC-H chaos workload",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the quick tier-1 sweep (default if no flags given)",
    )
    parser.add_argument(
        "--schedules",
        type=int,
        default=5,
        help="number of seeded fault schedules to run (default 5)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=SCALE,
        help=f"TPC-H scale factor for the workload (default {SCALE})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="first schedule seed (schedules run seeds seed..seed+N-1; "
        "default 0)",
    )
    args = parser.parse_args(argv)

    summary = run_smoke(
        schedules=args.schedules, scale=args.scale, seed=args.seed
    )
    print(
        f"chaos sweep: {summary['schedules']} schedules, "
        f"{summary['faults_fired']} faults fired, "
        f"{summary['clean_failures']} clean failures, "
        f"{summary['retries']} query restarts, "
        f"{summary['promotions']} master promotions"
    )
    if summary["violations"]:
        print(f"{len(summary['violations'])} VIOLATIONS:")
        for violation in summary["violations"]:
            print(f"  - {violation}")
        return 1
    print("all chaos properties held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
