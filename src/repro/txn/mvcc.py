"""Transaction ids and snapshot visibility (PostgreSQL-style MVCC).

A row version carries ``xmin`` (creating transaction) and ``xmax``
(deleting transaction, if any). A :class:`Snapshot` decides which
versions a statement sees: versions created by transactions that
committed before the snapshot and not deleted by such a transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Set


class XidManager:
    """Allocates transaction ids and tracks their fate."""

    def __init__(self) -> None:
        self._next_xid = 1
        self.active: Set[int] = set()
        self.committed: Set[int] = set()
        self.aborted: Set[int] = set()

    def begin(self) -> int:
        xid = self._next_xid
        self._next_xid += 1
        self.active.add(xid)
        return xid

    def commit(self, xid: int) -> None:
        self.active.discard(xid)
        self.committed.add(xid)

    def abort(self, xid: int) -> None:
        self.active.discard(xid)
        self.aborted.add(xid)

    def is_committed(self, xid: int) -> bool:
        return xid in self.committed

    def snapshot(self, for_xid: int) -> "Snapshot":
        """Take a snapshot as of now, on behalf of transaction ``for_xid``."""
        return Snapshot(
            xid=for_xid,
            xmax=self._next_xid,
            active=frozenset(self.active - {for_xid}),
            committed=frozenset(self.committed),
        )


@dataclass(frozen=True)
class Snapshot:
    """A point-in-time visibility horizon.

    ``xid`` is the owning transaction: it always sees its own writes.
    A foreign transaction's effects are visible iff it committed before
    this snapshot was taken (committed and < xmax and not active).
    """

    xid: int
    xmax: int
    active: FrozenSet[int]
    committed: FrozenSet[int]

    def sees_xid(self, other_xid: int) -> bool:
        if other_xid == self.xid:
            return True
        if other_xid >= self.xmax or other_xid in self.active:
            return False
        return other_xid in self.committed

    def row_visible(self, xmin: int, xmax: Optional[int]) -> bool:
        """Is a row version with these stamps visible to this snapshot?"""
        if not self.sees_xid(xmin):
            return False
        if xmax is None:
            return True
        return not self.sees_xid(xmax)
