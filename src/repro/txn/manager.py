"""The transaction manager: isolation, commit/abort, truncate-on-abort.

Transactions are only noticeable on the master (paper Section 5): there
is no two-phase commit; segments are stateless and catalog changes made
during execution are piggybacked back to the master, which commits them
in the UCS. Aborting a transaction truncates any user-data bytes it
appended beyond the previously committed logical length.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TransactionAborted, TransactionError
from repro.txn.locks import LockManager, LockMode
from repro.txn.mvcc import Snapshot, XidManager
from repro.txn.swimlane import SegfileAllocator
from repro.txn.wal import WriteAheadLog


class IsolationLevel(enum.Enum):
    """The two levels HAWQ implements; the SQL-standard four map onto them
    (read uncommitted -> read committed, repeatable read -> serializable)."""

    READ_COMMITTED = "read committed"
    SERIALIZABLE = "serializable"

    @classmethod
    def parse(cls, text: str) -> "IsolationLevel":
        lowered = " ".join(text.lower().split())
        if lowered in ("read committed", "read uncommitted"):
            return cls.READ_COMMITTED
        if lowered in ("serializable", "repeatable read"):
            return cls.SERIALIZABLE
        raise TransactionError(f"unknown isolation level {text!r}")


@dataclass
class AppendedFile:
    """One file a transaction appended to, with its rollback point."""

    table: str
    segment_id: int
    segfile_id: int
    path: str
    previous_length: int
    #: Callable that truncates the physical file back (wired by the engine
    #: to the segment's HDFS client).
    truncate: Callable[[str, int], None]


class Transaction:
    """One transaction's state on the master."""

    def __init__(
        self, manager: "TransactionManager", xid: int, isolation: IsolationLevel
    ):
        self.manager = manager
        self.xid = xid
        self.isolation = isolation
        self.state = "active"  # active | committed | aborted
        self._txn_snapshot: Optional[Snapshot] = None
        self.appended_files: List[AppendedFile] = []

    # ------------------------------------------------------------ snapshots
    def statement_snapshot(self) -> Snapshot:
        """The snapshot a new statement in this transaction should use.

        Read committed takes a fresh snapshot per statement; serializable
        reuses the snapshot taken at the first statement (Section 5.1).
        """
        self._check_active()
        if self.isolation is IsolationLevel.SERIALIZABLE:
            if self._txn_snapshot is None:
                self._txn_snapshot = self.manager.xids.snapshot(self.xid)
            return self._txn_snapshot
        return self.manager.xids.snapshot(self.xid)

    # -------------------------------------------------------------- locking
    def lock(self, key: str, mode: LockMode, wait: bool = True) -> bool:
        self._check_active()
        return self.manager.locks.acquire(self.xid, key, mode, wait=wait)

    # ---------------------------------------------------------- user data io
    def record_append(self, appended: AppendedFile) -> None:
        """Remember an append for truncate-on-abort."""
        self._check_active()
        self.appended_files.append(appended)

    # ------------------------------------------------------------- lifecycle
    def commit(self) -> None:
        self.manager.commit(self)

    def abort(self) -> None:
        self.manager.abort(self)

    def _check_active(self) -> None:
        if self.state != "active":
            raise TransactionAborted(f"transaction {self.xid} is {self.state}")


class TransactionManager:
    """Owns xids, locks, the WAL and the swimming-lane allocator."""

    def __init__(self, wal: Optional[WriteAheadLog] = None):
        self.xids = XidManager()
        self.locks = LockManager()
        self.wal = wal or WriteAheadLog()
        self.segfiles = SegfileAllocator()
        #: Live Transaction objects by xid, so a master crash can abort
        #: every in-flight transaction (and run truncate-on-abort).
        self._live: Dict[int, Transaction] = {}

    # ------------------------------------------------------------ lifecycle
    def begin(
        self, isolation: IsolationLevel = IsolationLevel.READ_COMMITTED
    ) -> Transaction:
        xid = self.xids.begin()
        self.wal.append(xid, "begin")
        txn = Transaction(self, xid, isolation)
        self._live[xid] = txn
        return txn

    def commit(self, txn: Transaction) -> None:
        if txn.state != "active":
            raise TransactionError(f"cannot commit a {txn.state} transaction")
        # Commit happens only on the master: flip the xid, log it, release.
        self.xids.commit(txn.xid)
        self.wal.append(txn.xid, "commit")
        txn.state = "committed"
        self._cleanup(txn)

    def abort(self, txn: Transaction) -> None:
        if txn.state != "active":
            return  # aborting twice is a no-op
        # Truncate garbage bytes this transaction appended (Section 5.3/5.4):
        # the catalog's logical lengths roll back automatically via MVCC.
        for appended in txn.appended_files:
            appended.truncate(appended.path, appended.previous_length)
        self.xids.abort(txn.xid)
        self.wal.append(txn.xid, "abort")
        txn.state = "aborted"
        self._cleanup(txn)

    def _cleanup(self, txn: Transaction) -> None:
        self._live.pop(txn.xid, None)
        self.segfiles.release(txn.xid)
        self.locks.release_all(txn.xid)

    def abort_all_active(self) -> List[int]:
        """Abort every in-flight transaction (master crash / failover).

        Each abort truncates the transaction's appended user-data bytes
        back to the committed logical length, so no garbage outlives the
        crash. Returns the aborted xids.
        """
        aborted: List[int] = []
        for txn in list(self._live.values()):
            if txn.state == "active":
                self.abort(txn)
                aborted.append(txn.xid)
        return aborted

    # --------------------------------------------------------------- helpers
    def run(self, isolation: IsolationLevel = IsolationLevel.READ_COMMITTED):
        """Context manager running a transaction: commit on success,
        abort on exception."""
        return _TxnContext(self, isolation)


class _TxnContext:
    def __init__(self, manager: TransactionManager, isolation: IsolationLevel):
        self.manager = manager
        self.isolation = isolation
        self.txn: Optional[Transaction] = None

    def __enter__(self) -> Transaction:
        self.txn = self.manager.begin(self.isolation)
        return self.txn

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self.txn is not None
        if exc_type is None:
            self.manager.commit(self.txn)
        else:
            self.manager.abort(self.txn)
        return False
