"""Write-ahead log for catalog changes, and the standby's feed.

Only the catalog is WAL-logged (paper Section 5): user data is
append-only on HDFS and needs no log — visibility is the logical file
length recorded (transactionally, hence through this log) in the catalog.
The master's standby stays warm by replaying this log (Section 2.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class WalRecord:
    """One log record."""

    lsn: int
    xid: int
    kind: str  # begin | commit | abort | change
    table: Optional[str] = None
    op: Optional[str] = None  # insert | update | delete
    row: Optional[Dict[str, object]] = None


class WriteAheadLog:
    """An ordered, durable (simulated) record stream with subscribers."""

    def __init__(self) -> None:
        self._records: List[WalRecord] = []
        self._subscribers: List[Callable[[WalRecord], None]] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_lsn(self) -> int:
        return len(self._records)

    def append(
        self,
        xid: int,
        kind: str,
        table: Optional[str] = None,
        op: Optional[str] = None,
        row: Optional[Dict[str, object]] = None,
    ) -> WalRecord:
        record = WalRecord(
            lsn=len(self._records) + 1, xid=xid, kind=kind, table=table, op=op, row=row
        )
        self._records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)
        return record

    def records_from(self, lsn: int) -> List[WalRecord]:
        """All records with lsn > the given one (log shipping pull)."""
        return self._records[lsn:]

    def subscribe(self, callback: Callable[[WalRecord], None]) -> None:
        """Push-mode log shipping: callback per appended record."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[WalRecord], None]) -> None:
        """Stop shipping to a subscriber (e.g. a promoted standby).

        Compares with ``==`` because bound methods are recreated on every
        attribute access (``obj.method is obj.method`` is False).
        """
        self._subscribers = [s for s in self._subscribers if s != callback]
