"""Table-level locking with deadlock detection (paper Section 5.2).

DML takes weak locks (ACCESS_SHARE for reads, ROW_EXCLUSIVE for inserts)
and DDL takes ACCESS_EXCLUSIVE, so concurrent selects proceed while an
ALTER/DROP waits. A wait-for graph is maintained and checked on every
blocked request; the requester that would close a cycle is aborted
(HAWQ runs its checker periodically — on a discrete simulation, checking
at wait time is equivalent and deterministic).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import DeadlockDetected, LockTimeout


class LockMode(enum.IntEnum):
    """Subset of PostgreSQL lock modes that HAWQ uses for DDL/DML."""

    ACCESS_SHARE = 1
    ROW_EXCLUSIVE = 2
    SHARE = 3
    ACCESS_EXCLUSIVE = 4


#: (held, requested) pairs that conflict.
_CONFLICTS: Set[Tuple[LockMode, LockMode]] = set()


def _conflict(a: LockMode, b: LockMode) -> None:
    _CONFLICTS.add((a, b))
    _CONFLICTS.add((b, a))


_conflict(LockMode.ACCESS_EXCLUSIVE, LockMode.ACCESS_SHARE)
_conflict(LockMode.ACCESS_EXCLUSIVE, LockMode.ROW_EXCLUSIVE)
_conflict(LockMode.ACCESS_EXCLUSIVE, LockMode.SHARE)
_conflict(LockMode.ACCESS_EXCLUSIVE, LockMode.ACCESS_EXCLUSIVE)
_conflict(LockMode.SHARE, LockMode.ROW_EXCLUSIVE)
_conflict(LockMode.SHARE, LockMode.SHARE)  # SHARE self-conflicts? No: compatible.
_CONFLICTS.discard((LockMode.SHARE, LockMode.SHARE))


def modes_conflict(held: LockMode, requested: LockMode) -> bool:
    return (held, requested) in _CONFLICTS


@dataclass
class _PendingRequest:
    xid: int
    key: str
    mode: LockMode


class LockManager:
    """Grants, queues and deadlock-checks lock requests."""

    def __init__(self) -> None:
        # key -> list of (xid, mode) currently granted
        self._granted: Dict[str, List[Tuple[int, LockMode]]] = defaultdict(list)
        self._waiting: List[_PendingRequest] = []

    # ------------------------------------------------------------ public api
    def acquire(self, xid: int, key: str, mode: LockMode, wait: bool = True) -> bool:
        """Try to take a lock.

        Returns True if granted. If blocked and ``wait`` is True the
        request is queued and False is returned — unless queueing would
        create a deadlock cycle, in which case :class:`DeadlockDetected`
        is raised for the requester. If blocked with ``wait=False``,
        :class:`LockTimeout` is raised.
        """
        if self._grantable(xid, key, mode):
            self._grant(xid, key, mode)
            return True
        if not wait:
            raise LockTimeout(f"xid {xid} could not lock {key!r} ({mode.name})")
        request = _PendingRequest(xid, key, mode)
        self._waiting.append(request)
        if self._creates_cycle(xid):
            self._waiting.remove(request)
            raise DeadlockDetected(
                f"xid {xid} waiting for {key!r} would deadlock"
            )
        return False

    def release_all(self, xid: int) -> List[Tuple[int, str, LockMode]]:
        """Drop every lock held by ``xid``; grant what became unblocked.

        Returns the requests granted as a result, so callers (the engine)
        can resume blocked sessions.
        """
        for key in list(self._granted):
            self._granted[key] = [(x, m) for x, m in self._granted[key] if x != xid]
            if not self._granted[key]:
                del self._granted[key]
        self._waiting = [r for r in self._waiting if r.xid != xid]
        return self._grant_waiters()

    def holders(self, key: str) -> List[Tuple[int, LockMode]]:
        return list(self._granted.get(key, []))

    def waiting(self) -> List[Tuple[int, str, LockMode]]:
        return [(r.xid, r.key, r.mode) for r in self._waiting]

    # ------------------------------------------------------------- internals
    def _grantable(self, xid: int, key: str, mode: LockMode) -> bool:
        for holder_xid, held_mode in self._granted.get(key, []):
            if holder_xid != xid and modes_conflict(held_mode, mode):
                return False
        return True

    def _grant(self, xid: int, key: str, mode: LockMode) -> None:
        self._granted[key].append((xid, mode))

    def _grant_waiters(self) -> List[Tuple[int, str, LockMode]]:
        granted = []
        still_waiting = []
        for request in self._waiting:
            if self._grantable(request.xid, request.key, request.mode):
                self._grant(request.xid, request.key, request.mode)
                granted.append((request.xid, request.key, request.mode))
            else:
                still_waiting.append(request)
        self._waiting = still_waiting
        return granted

    def _creates_cycle(self, start_xid: int) -> bool:
        """DFS over the wait-for graph looking for a cycle through start."""
        edges: Dict[int, Set[int]] = defaultdict(set)
        for request in self._waiting:
            for holder_xid, held_mode in self._granted.get(request.key, []):
                if holder_xid != request.xid and modes_conflict(
                    held_mode, request.mode
                ):
                    edges[request.xid].add(holder_xid)
        seen: Set[int] = set()
        stack = [start_xid]
        first = True
        while stack:
            node = stack.pop()
            if node == start_xid and not first:
                return True
            if node in seen:
                continue
            seen.add(node)
            first = False
            stack.extend(edges.get(node, ()))
        return False
