"""Swimming-lane concurrent inserts (paper Section 5.4).

Different concurrent writers to the same table append to *different*
segment files — like swimmers in separate lanes they never interfere, so
no user-data locking or logging is needed. A segfile freed by a committed
or aborted transaction is reused by the next writer (so the number of
small files stays bounded).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple


class SegfileAllocator:
    """Hands out per-table segment-file ids, one lane per concurrent writer."""

    def __init__(self) -> None:
        # table -> segfile_id -> xid using it (None when free)
        self._lanes: Dict[str, Dict[int, Optional[int]]] = defaultdict(dict)

    def acquire(self, table: str, xid: int) -> int:
        """Reserve the lowest free lane of ``table`` for ``xid``.

        A transaction that already holds a lane keeps getting the same one
        (all of its inserts to the table go to one file).
        """
        table = table.lower()
        lanes = self._lanes[table]
        for segfile_id, owner in sorted(lanes.items()):
            if owner == xid:
                return segfile_id
        for segfile_id, owner in sorted(lanes.items()):
            if owner is None:
                lanes[segfile_id] = xid
                return segfile_id
        segfile_id = max(lanes) + 1 if lanes else 0
        lanes[segfile_id] = xid
        return segfile_id

    def release(self, xid: int) -> None:
        """Free every lane held by ``xid`` (commit or abort)."""
        for lanes in self._lanes.values():
            for segfile_id, owner in lanes.items():
                if owner == xid:
                    lanes[segfile_id] = None

    def lanes_of(self, table: str) -> Dict[int, Optional[int]]:
        return dict(self._lanes[table.lower()])

    def drop_table(self, table: str) -> None:
        self._lanes.pop(table.lower(), None)
