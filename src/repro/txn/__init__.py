"""Transaction management (paper Section 5).

Catalog data gets full write-ahead logging and multi-version concurrency
control; user data is append-only on HDFS with visibility controlled by
*logical file lengths* recorded in the catalog, truncated on abort.
"""

from repro.txn.mvcc import Snapshot, XidManager
from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import IsolationLevel, Transaction, TransactionManager
from repro.txn.swimlane import SegfileAllocator
from repro.txn.wal import WalRecord, WriteAheadLog

__all__ = [
    "IsolationLevel",
    "LockManager",
    "LockMode",
    "SegfileAllocator",
    "Snapshot",
    "Transaction",
    "TransactionManager",
    "WalRecord",
    "WriteAheadLog",
    "XidManager",
]
