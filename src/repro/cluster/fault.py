"""Fault detection and segment failover (paper Section 2.6).

The master's fault detector checks segment health periodically. When a
segment fails, it is marked "down" in the system catalog; in-flight
queries fail (query restart beats heavy recovery, per the paper) and
*future* sessions randomly fail the segment over to one of the remaining
active hosts — stateless segments make any host a valid replacement, and
random choice balances load across concurrent sessions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.segment import Segment
from repro.errors import ClusterError
from repro.util import DeterministicRng


class FaultDetector:
    """Health checks plus per-session failover assignment."""

    def __init__(self, segments: List[Segment], seed: int = 0):
        self.segments = segments
        self._rng = DeterministicRng(seed, "fault-detector")
        self.checks_run = 0

    # ---------------------------------------------------------------- health
    def check(self) -> List[int]:
        """Probe every segment; returns ids newly detected as down."""
        self.checks_run += 1
        return [s.segment_id for s in self.segments if not s.alive]

    def alive_hosts(self) -> List[str]:
        hosts = sorted(
            {s.host for s in self.segments if s.alive}
        )
        if not hosts:
            raise ClusterError("no alive segment hosts remain")
        return hosts

    # -------------------------------------------------------------- failover
    def assign_failover(self) -> Dict[int, str]:
        """For each down segment pick a random alive host to act for it.

        Called per session, so different sessions spread a failed
        segment's work across the cluster (the paper's load-balancing
        argument for random failover).

        The failed segment's own host is never a candidate, even when a
        sibling segment on it is alive (or came back alive mid-session):
        the host just lost this segment's process, so until the segment
        itself is recovered the host cannot be trusted to act for it.
        """
        hosts = self.alive_hosts()
        assignment: Dict[int, str] = {}
        for segment in self.segments:
            if segment.alive:
                segment.acting_host = None
                continue
            candidates = [h for h in hosts if h != segment.host]
            if not candidates:
                raise ClusterError(
                    f"no failover host for segment {segment.segment_id}: "
                    f"only its own host {segment.host!r} remains alive"
                )
            acting = self._rng.choice(candidates)
            segment.acting_host = acting
            assignment[segment.segment_id] = acting
        return assignment

    def fail_segment(self, segment_id: int) -> None:
        self._segment(segment_id).alive = False

    def recover_segment(self, segment_id: int) -> None:
        """The paper's recovery utility: bring a fixed segment back."""
        segment = self._segment(segment_id)
        segment.alive = True
        segment.acting_host = None

    def _segment(self, segment_id: int) -> Segment:
        for segment in self.segments:
            if segment.segment_id == segment_id:
                return segment
        raise ClusterError(f"no segment {segment_id}")
