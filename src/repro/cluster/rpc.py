"""Master/segment control-plane RPC, riding the simulated datagram net.

The query dispatcher (QD) and every :class:`~repro.cluster.worker.
SegmentWorker` own one :class:`RpcChannel` on a shared :class:`RpcBus`.
All control traffic — plan dispatch, acks, completion reports, aborts —
flows as datagrams through :class:`~repro.network.simnet.SimNetwork`,
and every charged send pays real bytes plus **one** ``net_latency`` on
the sender's cost accumulator (latency is per message, never per
fragment: a multi-fragment payload is batched into one charged send).

Killing a segment process is modeled as *dropping its channel*: the
endpoint stays bound (stray datagrams vanish like real UDP to a dead
port), but any attempt to send through a closed channel — the master
dispatching to it, or the dead worker trying to report back — raises
:class:`~repro.errors.SegmentDown`, which the session's bounded-restart
loop turns into a query restart (paper §2.6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import InterconnectError, SegmentDown
from repro.network.simnet import Datagram, SimNetwork
from repro.simtime import CostAccumulator

# Message kinds of the dispatch protocol.
DISPATCH = "dispatch"
ACK = "ack"
COMPLETE = "complete"
ABORT = "abort"

#: The master's well-known channel name on the bus.
MASTER = "master"

#: Nominal wire sizes of the fixed-shape control messages.
ACK_BYTES = 64
ABORT_BYTES = 64
COMPLETE_BYTES = 128
#: Charged wire size of a thin plan when metadata dispatch is ablated
#: (the plan itself shrinks to a stub; the metadata RPC storm is charged
#: separately, per catalog object).
CATALOG_LOOKUP_BYTES = 256

_RPC_HOST = "rpc"
_BASE_PORT = 9000


def charge_control(acc: CostAccumulator, nbytes: int) -> None:
    """Charge one control-plane message: its bytes at wire bandwidth plus
    exactly one ``net_latency``. Control traffic (plans, acks, reports)
    is *not* data-proportional, so the byte time is a fixed cost — it
    never gets multiplied by the data-volume scale factor."""
    acc.net_bytes += nbytes
    acc.fixed(nbytes / acc.model.net_bw + acc.model.net_latency)


@dataclass
class RpcMessage:
    """One control-plane message."""

    kind: str
    sender: str
    payload: object = None
    #: Charged wire size in bytes (plan bytes for DISPATCH, a small
    #: fixed header for ACK/COMPLETE/ABORT).
    size: int = 0
    #: Engine-wide id of the statement this message belongs to (0 when
    #: no statement is attached). Under concurrency, every query's
    #: control traffic must stay attributable — traces key on this.
    query_id: int = 0


@dataclass
class TaskReport:
    """COMPLETE payload: what one (slice, segment) task did."""

    slice_id: int
    segment: int
    seconds: float
    #: Rows pushed through the slice's motion (or returned, for top).
    rows_out: int
    #: Bytes pushed through the slice's motion.
    bytes_out: int
    disk_read_bytes: int = 0
    disk_write_bytes: int = 0
    net_bytes: int = 0
    tuples: int = 0
    #: Top-slice only: the result rows gathered back to the client.
    result_rows: Optional[List[tuple]] = None


@dataclass
class RpcChannel:
    """One endpoint's connection to the bus. ``open=False`` models a
    dead process: the channel exists but nothing can traverse it."""

    name: str
    address: Tuple[str, int]
    open: bool = True


class RpcBus:
    """Name-addressed control-plane messaging over a SimNetwork."""

    def __init__(self, net: SimNetwork):
        self._net = net
        self._ports = itertools.count(_BASE_PORT)
        self._handlers: Dict[str, Callable[[RpcMessage], None]] = {}
        self.channels: Dict[str, RpcChannel] = {}
        #: Optional :class:`repro.obs.trace.QueryTrace` recorder and
        #: :class:`repro.obs.metrics.MetricsRegistry`. Both are passive
        #: observers of the control plane — they never charge the clock.
        self.trace = None
        self.metrics = None

    def register(
        self, name: str, handler: Callable[[RpcMessage], None]
    ) -> RpcChannel:
        """Bind ``name`` to a fresh (host, port) endpoint on the net.

        A name whose channel was dropped may be re-registered — that is
        a replacement process reviving a dead segment's endpoint. The
        old address stays reachable (stray datagrams to it still vanish
        at the closed channel); the revived endpoint listens on a fresh
        port. Re-registering a live name is still an error.
        """
        existing = self.channels.get(name)
        if existing is not None and existing.open:
            raise InterconnectError(f"rpc name already bound: {name}")
        if existing is not None:
            # Unbind the dead endpoint's port: datagrams addressed to
            # the old process drop at the net, never at the new one.
            self._net.unregister(existing.address)
            if self.trace is not None:
                # Revival is trace-visible, like the drop was: a
                # COMPLETE from the replacement process must not read
                # as the dead one reporting posthumously.
                on_revive = getattr(self.trace, "on_revive", None)
                if on_revive is not None:
                    on_revive(name)
        address = (_RPC_HOST, next(self._ports))
        self._net.register(address, lambda d: self._receive(name, d))
        channel = RpcChannel(name=name, address=address)
        self.channels[name] = channel
        self._handlers[name] = handler
        return channel

    def _receive(self, name: str, datagram: Datagram) -> None:
        channel = self.channels.get(name)
        if channel is None or not channel.open:
            return  # dead process: datagram vanishes, like real UDP
        self._handlers[name](datagram.payload)

    def drop(self, name: str) -> None:
        """Kill the named endpoint's process: close its channel."""
        channel = self.channels.get(name)
        if channel is not None:
            if channel.open and self.trace is not None:
                self.trace.on_drop(name)
            channel.open = False

    def is_open(self, name: str) -> bool:
        channel = self.channels.get(name)
        return channel is not None and channel.open

    def send(
        self,
        sender: str,
        dest: str,
        message: RpcMessage,
        acc: Optional[CostAccumulator] = None,
    ) -> None:
        """Send one control message; charges ``acc`` (when given) the
        message's bytes plus exactly one ``net_latency``."""
        src = self.channels.get(sender)
        dst = self.channels.get(dest)
        if src is None or not src.open:
            raise SegmentDown(f"rpc endpoint {sender!r} is down")
        if dst is None or not dst.open:
            raise SegmentDown(f"rpc channel to {dest!r} is down")
        if acc is not None:
            charge_control(acc, message.size)
        if self.trace is not None:
            # Past the open-checks: a send that raised SegmentDown was
            # never sent, so the protocol log only holds real traffic.
            self.trace.on_rpc(sender, dest, message)
        if self.metrics is not None:
            self.metrics.counter("rpc_messages", kind=message.kind).inc()
            self.metrics.counter("rpc_bytes", kind=message.kind).inc(
                message.size
            )
        self._net.send(src.address, dst.address, message, message.size)
