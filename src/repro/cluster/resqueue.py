"""Resource-queue admission control for the concurrent runtime.

HAWQ's resource queues (paper Section 2.2 / Section 4) bound how many
statements — and how much memory — may execute concurrently. This
module is the *runtime* half: the catalog's declarative
:class:`~repro.catalog.security.ResourceQueue` rows become frozen
:class:`QueueSpec`s, and a :class:`ResourceQueueManager` tracks, on the
simulated clock, which queries are running against which queue and
which are parked waiting for a slot or for memory.

Admission rules (the determinism contract):

- A query is admitted immediately iff its queue has a free statement
  slot AND the queue's in-use memory plus the query's need fits the
  queue's memory budget. A query's need is clamped to the budget, so a
  single over-sized query can still run (alone).
- Otherwise the query parks. When a running query releases, waiters are
  re-examined in ``(-priority, arrival, query_id)`` order — strictly
  head-of-line: if the front waiter still does not fit, nothing behind
  it may jump the queue. This keeps admission a pure function of the
  submission order and makes queue-wait time reproducible.
- Queue-wait (admit − submit, simulated seconds) is charged into the
  waiting query's ``cost.seconds`` by the caller; this module only
  measures it.

Everything is passive with respect to the cost model: the manager never
charges an accumulator itself — it hands admission timestamps back to
the scheduler, which translates waits into task release times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError


@dataclass(frozen=True)
class QueueSpec:
    """Immutable queue definition (mirrors the catalog row)."""

    name: str
    #: Max concurrently running statements.
    slots: int = 20
    #: Simulated bytes of query memory the queue may hand out at once.
    memory_limit: float = 8e9
    #: Higher drains first when slots free up.
    priority: int = 0


@dataclass
class QueueStats:
    """Per-queue admission accounting over one concurrent run."""

    admitted: int = 0
    parked: int = 0
    #: Total simulated seconds queries spent parked on this queue.
    wait_seconds: float = 0.0
    #: Max simultaneous waiters observed.
    max_depth: int = 0


@dataclass
class _Running:
    query_id: int
    memory: float


@dataclass
class _Waiter:
    query_id: int
    memory: float
    arrival: int
    submit_time: float
    priority: int
    on_admit: Callable[[float], None]


def specs_from_security(security) -> Dict[str, QueueSpec]:
    """Freeze the catalog's resource queues into runtime specs."""
    return {
        name: QueueSpec(
            name=name,
            slots=queue.active_statements,
            memory_limit=queue.memory_limit,
            priority=queue.priority,
        )
        for name, queue in sorted(security.queues.items())
    }


class _QueueState:
    def __init__(self, spec: QueueSpec):
        self.spec = spec
        self.running: Dict[int, _Running] = {}
        self.waiting: List[_Waiter] = []
        self.stats = QueueStats()

    @property
    def memory_used(self) -> float:
        return sum(r.memory for r in self.running.values())

    def fits(self, memory: float) -> bool:
        return (
            len(self.running) < self.spec.slots
            and self.memory_used + memory <= self.spec.memory_limit
        )


class ResourceQueueManager:
    """Admission control over named queues on the simulated clock."""

    def __init__(self, specs: Dict[str, QueueSpec], metrics=None, detsan=None):
        self._queues = {
            name: _QueueState(spec) for name, spec in sorted(specs.items())
        }
        self._metrics = metrics
        self._detsan = detsan
        self._arrivals = 0
        #: query_id -> queue name, for release().
        self._owner: Dict[int, str] = {}
        #: query_id -> measured queue wait (admit − submit).
        self.waits: Dict[int, float] = {}
        if detsan is not None:
            self._owner = detsan.guard_dict(
                self._owner, "ResourceQueueManager._owner"
            )
            self.waits = detsan.guard_dict(
                self.waits, "ResourceQueueManager.waits"
            )
            for name, state in sorted(self._queues.items()):
                state.running = detsan.guard_dict(
                    state.running, "_QueueState.running"
                )
                state.waiting = detsan.guard_list(
                    state.waiting, "_QueueState.waiting"
                )

    # ------------------------------------------------------------- admission
    def submit(
        self,
        query_id: int,
        queue_name: str,
        memory: float,
        now: float,
        on_admit: Callable[[float], None],
        priority: Optional[int] = None,
    ) -> None:
        """Offer a query to its queue at simulated time ``now``.

        ``on_admit(admit_time)`` fires exactly once — immediately when
        the queue has room, or later from :meth:`release` when capacity
        frees up. The measured wait lands in :attr:`waits`.
        ``priority`` defaults to the queue's own; a higher value lets a
        statement drain ahead of lower-priority waiters.
        """
        state = self._queues.get(queue_name)
        if state is None:
            raise ReproError(f"unknown resource queue {queue_name!r}")
        if query_id in self._owner:
            raise ReproError(f"query {query_id} already admitted or waiting")
        memory = min(memory, state.spec.memory_limit)
        if self._metrics is not None:
            # Depth as seen at submission (parked or not): the
            # distribution of what a newly arriving statement finds in
            # front of it is the queue-pressure signal.
            self._metrics.histogram(
                "resqueue_queue_depth", queue=state.spec.name
            ).observe(len(state.waiting))
        if not state.waiting and state.fits(memory):
            self._admit(state, query_id, memory, now, now, on_admit)
            return
        state.stats.parked += 1
        state.waiting.append(
            _Waiter(
                query_id=query_id,
                memory=memory,
                arrival=self._arrivals,
                submit_time=now,
                priority=(
                    state.spec.priority if priority is None else priority
                ),
                on_admit=on_admit,
            )
        )
        self._arrivals += 1
        state.stats.max_depth = max(
            state.stats.max_depth, len(state.waiting)
        )
        if self._metrics is not None:
            self._metrics.counter(
                "resqueue_parked", queue=state.spec.name
            ).inc()
            self._metrics.gauge(
                "resqueue_depth", queue=state.spec.name
            ).set(len(state.waiting))
            self._metrics.gauge(
                "resqueue_waiters", queue=state.spec.name
            ).set(len(state.waiting))

    def _admit(
        self,
        state: _QueueState,
        query_id: int,
        memory: float,
        submit_time: float,
        now: float,
        on_admit: Callable[[float], None],
    ) -> None:
        if self._detsan is not None:
            # Admission runs on behalf of the *admitted* query — release()
            # drains other queries' waiters, so re-scope the sanitizer
            # before touching their bookkeeping (and before on_admit
            # instantiates their task graphs).
            with self._detsan.scope(query_id):
                self._admit_scoped(
                    state, query_id, memory, submit_time, now, on_admit
                )
            return
        self._admit_scoped(state, query_id, memory, submit_time, now, on_admit)

    def _admit_scoped(
        self,
        state: _QueueState,
        query_id: int,
        memory: float,
        submit_time: float,
        now: float,
        on_admit: Callable[[float], None],
    ) -> None:
        state.running[query_id] = _Running(query_id=query_id, memory=memory)
        self._owner[query_id] = state.spec.name
        wait = now - submit_time
        self.waits[query_id] = wait
        state.stats.admitted += 1
        state.stats.wait_seconds += wait
        if self._metrics is not None:
            self._metrics.counter(
                "resqueue_admitted", queue=state.spec.name
            ).inc()
            # Observe every wait, including 0.0 for immediate admission:
            # the histogram's count then equals admissions, so wait-time
            # percentiles cover the whole workload, not only the parked
            # statements.
            self._metrics.histogram(
                "resqueue_wait_seconds", queue=state.spec.name
            ).observe(wait)
            self._metrics.gauge(
                "resqueue_slots_in_use", queue=state.spec.name
            ).set(len(state.running))
        on_admit(now)

    # --------------------------------------------------------------- release
    def release(self, query_id: int, now: float) -> None:
        """A running query finished: free its slot/memory and drain
        waiters (head-of-line, priority first) that now fit."""
        queue_name = self._owner.pop(query_id, None)
        if queue_name is None:
            return
        state = self._queues[queue_name]
        state.running.pop(query_id, None)
        while state.waiting:
            state.waiting.sort(
                key=lambda w: (-w.priority, w.arrival, w.query_id)
            )
            head = state.waiting[0]
            if not state.fits(head.memory):
                break  # head-of-line blocking: nobody jumps the queue
            state.waiting.pop(0)
            self._admit(
                state, head.query_id, head.memory,
                head.submit_time, now, head.on_admit,
            )
        if self._metrics is not None:
            self._metrics.gauge(
                "resqueue_depth", queue=state.spec.name
            ).set(len(state.waiting))
            self._metrics.gauge(
                "resqueue_waiters", queue=state.spec.name
            ).set(len(state.waiting))
            self._metrics.gauge(
                "resqueue_slots_in_use", queue=state.spec.name
            ).set(len(state.running))

    # ---------------------------------------------------------------- cancel
    def cancel(self, query_id: int, now: float) -> bool:
        """Withdraw a query from admission control.

        A parked waiter is removed without ever firing its ``on_admit``
        (cancel-while-queued); a running query's slot is released as if
        it had finished, which may drain waiters behind it. Returns True
        when the query was known to any queue. Never raises: cancelling
        an unknown id is a silent no-op, mirroring
        ``pg_cancel_backend``.
        """
        if query_id in self._owner:
            self.release(query_id, now)
            return True
        for name, state in sorted(self._queues.items()):
            for index, waiter in enumerate(state.waiting):
                if waiter.query_id != query_id:
                    continue
                state.waiting.pop(index)
                if self._metrics is not None:
                    self._metrics.counter(
                        "resqueue_cancelled", queue=state.spec.name
                    ).inc()
                    self._metrics.gauge(
                        "resqueue_depth", queue=state.spec.name
                    ).set(len(state.waiting))
                    self._metrics.gauge(
                        "resqueue_waiters", queue=state.spec.name
                    ).set(len(state.waiting))
                return True
        return False

    # ------------------------------------------------------------ inspection
    def depth(self, queue_name: str) -> int:
        return len(self._queues[queue_name].waiting)

    def running(self, queue_name: str) -> int:
        return len(self._queues[queue_name].running)

    def stats(self) -> Dict[str, QueueStats]:
        return {
            name: state.stats for name, state in sorted(self._queues.items())
        }

    def queue_of(self, query_id: int) -> Optional[str]:
        return self._owner.get(query_id)

    def occupancy(self) -> List[tuple]:
        """Passive per-queue occupancy rows for ``pg_resqueue_status``:
        ``(queue, slots, slots_in_use, memory_limit, memory_used,
        waiters, head_of_line_query_id)``.

        Head-of-line is the waiter that will be examined first on the
        next release — highest priority, then earliest arrival — or
        None when nothing is parked. Reads only; safe mid-run.
        """
        out: List[tuple] = []
        for name, state in sorted(self._queues.items()):
            head = None
            if state.waiting:
                front = min(
                    state.waiting,
                    key=lambda w: (-w.priority, w.arrival, w.query_id),
                )
                head = front.query_id
            out.append(
                (
                    name,
                    state.spec.slots,
                    len(state.running),
                    float(state.spec.memory_limit),
                    float(state.memory_used),
                    len(state.waiting),
                    head,
                )
            )
        return out
