"""Stateless segments: the basic compute units of HAWQ (paper Section 2).

A segment holds **no private persistent state** — all user data lives on
HDFS and all metadata on the master — so any alive segment can act as a
replacement for a failed one. The object here is little more than an
identity (logical segment id), a host binding (which changes on
failover), and an HDFS client scoped to that host for locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hdfs import Hdfs, HdfsClient


@dataclass
class Segment:
    """One logical segment of the cluster."""

    segment_id: int
    host: str
    alive: bool = True
    #: Host currently acting for this segment (differs after failover).
    acting_host: Optional[str] = None

    def effective_host(self) -> str:
        return self.acting_host or self.host

    def client(self, fs: Hdfs) -> HdfsClient:
        """HDFS client preferring replicas local to the acting host."""
        return fs.client(self.effective_host())

    def data_directory(self, base: str = "/hawq") -> str:
        """The segment's HDFS data directory (paper Section 2.3: each
        segment has a separate directory; directories are tied to the
        *logical* segment, so a replacement host serves the same files)."""
        return f"{base}/seg{self.segment_id}"
