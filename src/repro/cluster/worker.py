"""The segment-side query executor process (QE).

A :class:`SegmentWorker` owns everything segment-local: its HDFS client
(via the segment's placement), scan providers over dispatched
self-described plans, the shared block decode cache, and the chaos
hooks. It receives :class:`~repro.planner.dispatch.SliceTask`s as
DISPATCH messages on the :class:`~repro.cluster.rpc.RpcBus`, executes
exactly one task at a time with a :class:`~repro.executor.slice_runner.
SliceExecutor`, and reports back with an ACK (task accepted) and a
COMPLETE carrying the :class:`~repro.cluster.rpc.TaskReport`.

The master runs one extra worker for itself (``segment_id == -1``,
gang "1" slices). Its control messages travel the same code path but
are *loopback*: they charge no network time.

Death is a dropped RPC channel, not an exception reached into engine
internals: a killed worker keeps executing until it next needs its
channel (the COMPLETE send), at which point :class:`~repro.errors.
SegmentDown` surfaces and the session's bounded-restart loop takes over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List

from repro.catalog.service import CATALOG_RELATION_COLUMNS
from repro.obs.sysviews import SYSTEM_VIEW_COLUMNS
from repro.cluster.rpc import (
    ABORT,
    ACK,
    ACK_BYTES,
    COMPLETE,
    COMPLETE_BYTES,
    DISPATCH,
    MASTER,
    RpcBus,
    RpcMessage,
    TaskReport,
    charge_control,
)
from repro.errors import QueryCanceled, SegmentDown
from repro.executor.slice_runner import SliceExecutor, SliceProviders
from repro.interconnect.exchange import ExchangeFabric
from repro.planner.dispatch import QD_SEGMENT, SelfDescribedPlan
from repro.simtime import CostAccumulator
from repro.storage import get_codec, get_format
from repro.storage.base import ScanStats


@dataclass
class WorkerServices:
    """Cluster facilities a worker borrows from the engine.

    Everything here is *shared infrastructure* (HDFS namespace, block
    cache, segment placement, chaos clock) — the worker itself holds no
    cross-query state, which is what makes segments stateless and query
    restart cheap (paper §2.6).
    """

    hdfs: object
    block_cache: object
    pxf: object
    #: The engine's segment list (indexed by segment id).
    segments: List
    #: ``(relation_name, snapshot) -> rows`` for master-only catalog scans.
    catalog_rows: Callable[[str, object], Iterator[tuple]]
    chaos_point: Callable
    chaos_progress: Callable
    num_segments: int
    #: Optional :class:`repro.obs.metrics.MetricsRegistry` — passive.
    metrics: object = None
    #: Optional :class:`repro.sanitize.DetSan`: when set, each
    #: dispatched task executes inside its query's sanitizer scope.
    detsan: object = None
    #: ``query_id -> bool``: pending-cancellation probe (the engine's
    #: :meth:`~repro.engine.Engine.is_cancelled`). Workers refuse new
    #: slices and scan lanes for a cancelled query. None disables.
    is_cancelled: Callable[[int], bool] = None
    #: ``view_name -> rows`` for master-only system-view scans
    #: (:mod:`repro.obs.sysviews`) — live telemetry read at scan time.
    sysview_rows: Callable[[str], List] = None


class SegmentWorker:
    """One QE process: executes dispatched slice tasks, one at a time."""

    def __init__(
        self,
        segment_id: int,
        bus: RpcBus,
        exchange: ExchangeFabric,
        services: WorkerServices,
    ):
        self.segment_id = segment_id
        self.name = f"seg{segment_id}"
        self.bus = bus
        self.exchange = exchange
        self.services = services
        self.channel = bus.register(self.name, self._on_message)
        exchange.attach(segment_id)
        #: Loopback: the master's own worker pays no wire time.
        self.is_loopback = segment_id == QD_SEGMENT
        #: Current in-flight task/context (one at a time), for passive
        #: scan instrumentation.
        self._task = None
        self._ctx = None

    # --------------------------------------------------------------- messages
    def _on_message(self, message: RpcMessage) -> None:
        if message.kind == ABORT:
            # The master is tearing a query down. Tasks run to completion
            # within one bus delivery, so there is nothing mid-flight to
            # interrupt — but drop the instrumentation stash if it still
            # points at the aborted query so later scans cannot attribute
            # marks to a dead trace.
            if self._ctx is not None and self._ctx.query_id == message.query_id:
                self._task = None
                self._ctx = None
            return
        if message.kind != DISPATCH:
            return  # unknown kind: ignore, UDP-style
        detsan = self.services.detsan
        if detsan is not None:
            # Attribute every mutation this task performs (block cache,
            # kernel memo, LIKE cache, ...) to its query id.
            with detsan.scope(message.payload[3].query_id):
                self._run_dispatch(message)
            return
        self._run_dispatch(message)

    def _run_dispatch(self, message: RpcMessage) -> None:
        task, root, sdp, ctx = message.payload
        probe = self.services.is_cancelled
        if probe is not None and probe(ctx.query_id):
            # Refuse the slice outright: the master's abort broadcast and
            # this dispatch can cross on the wire, and a cancelled query
            # must not start new work it would only throw away.
            raise QueryCanceled(
                f"query {ctx.query_id} cancelled; "
                f"slice {task.slice_id} refused by {self.name}"
            )
        # One task at a time (synchronous bus delivery): stash the task
        # and context so scan instrumentation can reach them without
        # threading extra parameters through every provider signature.
        self._task = task
        self._ctx = ctx
        acc = CostAccumulator(ctx.cost_model)
        charged = None if self.is_loopback else acc
        self.bus.send(
            self.name,
            MASTER,
            RpcMessage(
                kind=ACK,
                sender=self.name,
                payload=(task.slice_id, task.segment),
                size=ACK_BYTES,
                query_id=ctx.query_id,
            ),
            acc=charged,
        )
        providers = SliceProviders(
            scan=self._scan_provider(sdp),
            batch_scan=self._batch_scan_provider(sdp),
            external=self._external_provider(),
        )
        executor = SliceExecutor(root, task, ctx, providers, self.exchange, acc)
        rows = executor.run()
        if charged is not None:
            # The completion report is part of the task's own timeline
            # (it must be pre-charged: the report carries acc.seconds).
            charge_control(acc, COMPLETE_BYTES)
        report = TaskReport(
            slice_id=task.slice_id,
            segment=task.segment,
            seconds=acc.seconds,
            rows_out=executor.rows_out,
            bytes_out=executor.bytes_out,
            disk_read_bytes=acc.disk_read_bytes,
            disk_write_bytes=acc.disk_write_bytes,
            net_bytes=acc.net_bytes,
            tuples=acc.tuples,
            result_rows=rows if task.is_top else None,
        )
        self.bus.send(
            self.name,
            MASTER,
            RpcMessage(
                kind=COMPLETE,
                sender=self.name,
                payload=report,
                size=COMPLETE_BYTES,
                query_id=ctx.query_id,
            ),
        )

    # -------------------------------------------------------------- providers
    def _scan_provider(self, sdp: SelfDescribedPlan):
        services = self.services

        def provider(table_source, partitions, segment_id, columns, acc):
            if table_source.table_name in CATALOG_RELATION_COLUMNS:
                # Master-only data: the catalog lives on the master, so
                # one QE serves it and the rest see an empty scan.
                if segment_id == 0:
                    yield from services.catalog_rows(
                        table_source.table_name, sdp.snapshot
                    )
                return
            if (
                services.sysview_rows is not None
                and table_source.table_name in SYSTEM_VIEW_COLUMNS
            ):
                # System views are master-only telemetry: zero-cost,
                # served by one QE at scan time (live state).
                if segment_id == 0:
                    yield from services.sysview_rows(table_source.table_name)
                return
            names = (
                partitions if partitions is not None else [table_source.table_name]
            )
            segment = services.segments[segment_id]
            self._check_segment_up(segment)
            client = segment.client(services.hdfs)
            for name in names:
                meta = sdp.metadata[name]
                fmt = get_format(meta.storage_format)
                for lane in meta.segfiles.get(segment_id, []):
                    yield from self._charged_scan(
                        fmt.scan,
                        client,
                        lane.paths,
                        meta,
                        columns,
                        acc,
                        segment_id=segment_id,
                        name=name,
                    )

        return provider

    def _batch_scan_provider(self, sdp: SelfDescribedPlan):
        """Block-granular sibling of :meth:`_scan_provider`: returns an
        iterator of ``(row_count, {column_index: values})`` column blocks
        for the vectorized executor, or None when the source only exists
        as rows (catalog relations)."""
        services = self.services

        def provider(table_source, partitions, segment_id, columns, acc):
            if table_source.table_name in CATALOG_RELATION_COLUMNS:
                return None  # master-only catalog data: row fallback
            if table_source.table_name in SYSTEM_VIEW_COLUMNS:
                return None  # system views only exist as rows
            names = (
                partitions if partitions is not None else [table_source.table_name]
            )
            segment = services.segments[segment_id]
            self._check_segment_up(segment)
            client = segment.client(services.hdfs)

            def blocks():
                for name in names:
                    meta = sdp.metadata[name]
                    fmt = get_format(meta.storage_format)
                    for lane in meta.segfiles.get(segment_id, []):
                        yield from self._charged_scan(
                            fmt.scan_blocks,
                            client,
                            lane.paths,
                            meta,
                            columns,
                            acc,
                            segment_id=segment_id,
                            name=name,
                        )

            return blocks()

        return provider

    @staticmethod
    def _check_segment_up(segment) -> None:
        """A scan may only run on an alive segment or an acting host."""
        if not segment.alive and segment.acting_host is None:
            raise SegmentDown(
                f"segment {segment.segment_id} is down with no acting host"
            )

    def _charged_scan(
        self,
        scan_fn,
        client,
        paths,
        meta,
        columns,
        acc,
        segment_id=None,
        name=None,
    ):
        """Run one segfile-lane scan, charging the cost model the same
        way regardless of entry point (row tuples or column blocks):
        disk for compressed bytes, CPU for decompression + decode, and
        network for remote-replica reads — including charges the decode
        cache *replays* on hits (``ScanStats.remote_bytes``). Charging
        happens in ``finally`` so an abandoned scan (LIMIT) still pays
        for the blocks it decoded.

        Chaos instrumentation: the lane is an execution point (due fault
        events fire before the scan starts) and, on normal completion,
        the lane's charged simulated seconds advance the chaos clock —
        so a seeded fault schedule can land *inside* a running query.
        Abandoned scans (LIMIT) skip the progress pulse: firing faults
        while a generator is being closed would corrupt the unwind."""
        services = self.services
        services.chaos_point(segment_id=segment_id)
        probe = services.is_cancelled
        if probe is not None and self._ctx is not None and probe(
            self._ctx.query_id
        ):
            # Cancellation point between lanes: a long multi-segfile scan
            # observes the cancel request without finishing every lane.
            raise QueryCanceled(
                f"query {self._ctx.query_id} cancelled mid-scan"
            )
        model = acc.model
        codec = get_codec(meta.compression)
        io_factor = (
            model.parquet_io_amplification
            if meta.storage_format == "parquet"
            else 1.0
        )
        cpu_factor = (
            model.parquet_cpu_factor
            if meta.storage_format == "parquet"
            else 1.0
        )
        stats = ScanStats()
        remote_before = client.remote_bytes_read
        seconds_before = acc.seconds
        cache = services.block_cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        if services.metrics is not None:
            # Paired open/close counters: equal totals prove no charged
            # scan iterator leaked, even across cancels (the sanitizer's
            # cancel sweep asserts opened == closed).
            services.metrics.counter("charged_scans_opened").inc()
        try:
            yield from scan_fn(
                client,
                paths,
                meta.schema,
                meta.compression,
                columns=columns,
                stats=stats,
                cache=services.block_cache,
            )
        finally:
            if services.metrics is not None:
                services.metrics.counter("charged_scans_closed").inc()
            acc.disk_read(int(stats.compressed_bytes * io_factor))
            acc.cpu_bytes(
                stats.uncompressed_bytes,
                (codec.decompress_cost + model.cpu_format_byte) * cpu_factor,
            )
            remote = (
                client.remote_bytes_read - remote_before + stats.remote_bytes
            )
            if remote:
                acc.network(remote)
            hit_delta = (cache.hits - hits_before) if cache is not None else 0
            miss_delta = (
                (cache.misses - misses_before) if cache is not None else 0
            )
            metrics = services.metrics
            if metrics is not None:
                metrics.counter(
                    "bytes_read",
                    format=meta.storage_format,
                    node=f"seg{segment_id}",
                ).inc(int(stats.compressed_bytes))
                if hit_delta:
                    metrics.counter(
                        "cache_hits", node=f"seg{segment_id}"
                    ).inc(hit_delta)
                if miss_delta:
                    metrics.counter(
                        "cache_misses", node=f"seg{segment_id}"
                    ).inc(miss_delta)
                if remote:
                    metrics.counter(
                        "remote_read_bytes", node=f"seg{segment_id}"
                    ).inc(remote)
            trace = getattr(self._ctx, "trace", None)
            if trace is not None:
                trace.op_mark(
                    self._task.slice_id,
                    self._task.segment,
                    f"scan:{name}" if name else "scan",
                    seconds_before,
                    acc.seconds,
                    cat="storage",
                    table=name,
                    read_bytes=int(stats.compressed_bytes),
                    remote_bytes=remote,
                    cache_hits=hit_delta,
                    cache_misses=miss_delta,
                    rows=stats.rows,
                )
        services.chaos_progress(
            acc.seconds - seconds_before, segment_id=segment_id
        )

    def _external_provider(self):
        services = self.services

        def provider(table_source, segment_id, columns, pushed, acc):
            yield from services.pxf.scan(
                table_source.pxf,
                table_source.schema,
                segment_id,
                services.num_segments,
                pushed,
                acc,
                segment_hosts={
                    s.segment_id: s.effective_host() for s in services.segments
                },
            )

        return provider
