"""Warm standby master kept current by transaction-log shipping.

Only the catalog needs replication (the master holds no user data), so
the standby subscribes to the WAL and replays every catalog change with
the original transaction stamps. ``promote()`` turns it into a primary:
its replayed catalog plus xid fate table can serve queries immediately.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.catalog.service import CatalogService
from repro.errors import ClusterError
from repro.txn.mvcc import Snapshot, XidManager
from repro.txn.wal import WalRecord, WriteAheadLog


class StandbyMaster:
    """Replays the primary's WAL into a shadow catalog."""

    def __init__(self, wal: WriteAheadLog, synchronous: bool = True):
        self.catalog = CatalogService()
        self.xids = XidManager()
        self.applied_lsn = 0
        self.promoted = False
        self._wal = wal
        if synchronous:
            wal.subscribe(self.apply)

    # -------------------------------------------------------------- shipping
    def catch_up(self) -> int:
        """Pull-mode log shipping: replay records we have not seen."""
        records = self._wal.records_from(self.applied_lsn)
        for record in records:
            self.apply(record)
        return len(records)

    def apply(self, record: WalRecord) -> None:
        if record.lsn <= self.applied_lsn:
            return  # duplicate replay (subscribe + catch_up overlap)
        if record.lsn > self.applied_lsn + 1:
            # Out-of-order shipping left a gap: pull the missing records
            # from the log in order (this record rides along), keeping
            # ``applied_lsn`` monotonic and the replay exactly-once.
            self.catch_up()
            return
        self.applied_lsn = record.lsn
        if record.kind == "begin":
            self._ensure_active(record.xid)
        elif record.kind == "commit":
            self._ensure_active(record.xid)
            self.xids.commit(record.xid)
        elif record.kind == "abort":
            self._ensure_active(record.xid)
            self.xids.abort(record.xid)
        elif record.kind == "change":
            self._apply_change(record)

    def _ensure_active(self, xid: int) -> None:
        if (
            xid not in self.xids.active
            and xid not in self.xids.committed
            and xid not in self.xids.aborted
        ):
            # Keep the standby's xid counter ahead of anything replayed.
            while self.xids._next_xid <= xid:
                self.xids._next_xid += 1
            self.xids.active.add(xid)

    def _apply_change(self, record: WalRecord) -> None:
        self._ensure_active(record.xid)
        table = self.catalog.table(record.table)
        if record.op == "insert":
            # Insert raw (bypassing the change hook: we are the replica).
            from repro.catalog.service import VersionedRow

            table._rows.append(VersionedRow(data=record.row, xmin=record.xid))
        elif record.op == "delete":
            for version in table._rows:
                if version.xmax is None and version.data == record.row:
                    version.xmax = record.xid
                    break
        else:  # pragma: no cover - update is logged as delete+insert
            raise ClusterError(f"unknown WAL change op {record.op!r}")

    # ------------------------------------------------------------- promotion
    def promote(self) -> CatalogService:
        """Fail over: the standby becomes the authoritative catalog.

        The standby stops consuming the log it is about to start
        *writing* — otherwise every post-promotion change would be
        replayed onto itself.
        """
        self.catch_up()
        self._wal.unsubscribe(self.apply)
        # Transactions still in flight died with the primary: no commit
        # record can ever arrive for them, so their xids abort and their
        # catalog changes stay invisible (restart over recover, §2.6).
        for xid in sorted(self.xids.active):
            self.xids.abort(xid)
        self.promoted = True
        return self.catalog

    def snapshot(self) -> Snapshot:
        """A read snapshot over the replayed catalog."""
        probe = self.xids._next_xid
        return Snapshot(
            xid=probe,
            xmax=probe,
            active=frozenset(self.xids.active),
            committed=frozenset(self.xids.committed),
        )
