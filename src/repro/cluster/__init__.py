"""Cluster runtime: stateless segments, standby master, fault detection,
and the master/segment control-plane RPC."""

from repro.cluster.segment import Segment
from repro.cluster.standby import StandbyMaster
from repro.cluster.fault import FaultDetector
from repro.cluster.rpc import RpcBus, RpcChannel, RpcMessage, TaskReport

__all__ = [
    "FaultDetector",
    "RpcBus",
    "RpcChannel",
    "RpcMessage",
    "Segment",
    "StandbyMaster",
    "TaskReport",
]
