"""Cluster runtime: stateless segments, standby master, fault detection."""

from repro.cluster.segment import Segment
from repro.cluster.standby import StandbyMaster
from repro.cluster.fault import FaultDetector

__all__ = ["FaultDetector", "Segment", "StandbyMaster"]
