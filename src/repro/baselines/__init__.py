"""Baselines the paper compares against: Stinger (Hive 0.12) on a
simulated MapReduce/YARN substrate with an ORC-like columnar format."""

from repro.baselines.mapreduce import (
    JobStats,
    MapReduceCluster,
    ReducerOutOfMemory,
)
from repro.baselines.stinger import StingerEngine, StingerResult

__all__ = [
    "JobStats",
    "MapReduceCluster",
    "ReducerOutOfMemory",
    "StingerEngine",
    "StingerResult",
]
