"""Stinger: Hive 0.12-class SQL over MapReduce (paper Section 8.1).

The comparison baseline, faithfully *rule-based*:

* joins run in the order the query writes them (left-deep, no cost-based
  reordering — the paper: "Stinger uses a simple rule-based algorithm
  and ... most of the time can only give a sub-optimal query plan");
* each join, aggregation, and ORDER BY is its own MapReduce job, with
  the intermediate result materialized to replicated HDFS between jobs;
* the Stinger improvements are included where they existed: ORC-like
  columnar storage with projection (here: the PAX/zlib format), map-side
  combiners for aggregation, and automatic map-joins for small tables;
* ORDER BY funnels through a single reducer (Hive's behaviour).

Queries execute for real (rows match HAWQ's answers — the test suite
checks), while job times come from the MapReduce cluster's clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.mapreduce import Dataset, JobStats, MapReduceCluster
from repro.catalog.schema import TableSchema
from repro.errors import PlannerError, ReproError, SemanticError
from repro.executor.aggregates import AggState, make_state
from repro.executor.expr import compile_expr
from repro.hdfs import Hdfs
from repro.planner import exprs as ex
from repro.planner.analyzer import Analyzer, RelationInfo
from repro.planner.decorrelate import decorrelate
from repro.planner.logical import DerivedSource, LogicalQuery, RelEntry
from repro.simtime import CostModel
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.storage import parquet as orcfile  # ORC stand-in: PAX + zlib
from repro.storage.base import ScanStats


@dataclass
class StingerResult:
    """Rows, simulated seconds, and per-job accounting."""

    rows: List[tuple]
    column_names: List[str]
    seconds: float
    jobs: List[JobStats] = field(default_factory=list)


class _Catalog:
    def __init__(self, engine: "StingerEngine"):
        self.engine = engine

    def resolve(self, name: str) -> RelationInfo:
        name = name.lower()
        if name in self.engine.views:
            return RelationInfo(kind="view", view_query=self.engine.views[name])
        entry = self.engine.tables.get(name)
        if entry is None:
            raise SemanticError(f"relation {name!r} does not exist")
        return RelationInfo(kind="table", schema=entry[0])


class StingerEngine:
    """A Hive/Stinger warehouse plus its MapReduce execution engine."""

    #: Hive's default auto-map-join threshold is 25 MB of (nominal) data.
    MAPJOIN_THRESHOLD = 25e6

    def __init__(
        self,
        num_nodes: int = 16,
        containers_per_node: int = 9,
        cost_model: Optional[CostModel] = None,
        scale: float = 1.0,
        compression: str = "zlib1",
        seed: int = 0,
    ):
        self.model = cost_model or CostModel()
        self.scale = scale
        self.compression = compression
        self.cluster = MapReduceCluster(
            num_nodes, containers_per_node, self.model, scale=scale
        )
        self.hdfs = Hdfs(block_size=256 * 1024, replication=3, seed=seed)
        for i in range(num_nodes):
            self.hdfs.add_datanode(f"hive{i}", num_disks=12)
        # name -> (schema, {path: length})
        self.tables: Dict[str, Tuple[TableSchema, Dict[str, int]]] = {}
        self.views: Dict[str, ast.SelectStmt] = {}

    # ---------------------------------------------------------------- loading
    def load_table(self, schema: TableSchema, rows: Sequence[tuple]) -> None:
        """Store a table in the warehouse in the ORC-like format."""
        client = self.hdfs.client()
        coerced = [schema.coerce_row(r) for r in rows]
        result = orcfile.write(
            client,
            f"/warehouse/{schema.name}",
            coerced,
            schema,
            self.compression,
        )
        self.tables[schema.name] = (schema, dict(result.paths))

    # --------------------------------------------------------------- queries
    def execute(self, sql: str) -> StingerResult:
        statements = parse_sql(sql)
        result: Optional[StingerResult] = None
        for stmt in statements:
            if isinstance(stmt, ast.CreateViewStmt):
                self.views[stmt.name.lower()] = stmt.query
                result = StingerResult([], [], 0.0)
            elif isinstance(stmt, ast.DropStmt) and stmt.object_kind == "view":
                self.views.pop(stmt.name.lower(), None)
                result = StingerResult([], [], 0.0)
            elif isinstance(stmt, ast.SelectStmt):
                result = self._select(stmt)
            else:
                raise ReproError(
                    f"Stinger baseline supports SELECT and views, not "
                    f"{type(stmt).__name__}"
                )
        assert result is not None
        return result

    def _select(self, stmt: ast.SelectStmt) -> StingerResult:
        analyzer = Analyzer(_Catalog(self))
        query = analyzer.analyze(stmt)
        decorrelate(query)
        jobs_before = len(self.cluster.jobs)
        params = [self._run_init_plan(ip) for ip in query.init_plans]
        dataset, layout = self._run_block(query, params)
        jobs = self.cluster.jobs[jobs_before:]
        return StingerResult(
            rows=dataset.rows,
            column_names=query.output_names,
            seconds=sum(j.seconds for j in jobs),
            jobs=jobs,
        )

    def _run_init_plan(self, query: LogicalQuery) -> object:
        params = [self._run_init_plan(ip) for ip in query.init_plans]
        dataset, _ = self._run_block(query, params)
        if len(dataset.rows) > 1:
            raise ReproError("InitPlan returned more than one row")
        return dataset.rows[0][0] if dataset.rows else None

    # ----------------------------------------------------------- query blocks
    def _run_block(
        self, query: LogicalQuery, params: List[object]
    ) -> Tuple[Dataset, List[tuple]]:
        """Execute one SELECT block as a chain of MapReduce jobs."""
        pool = list(query.quals)
        needed = self._needed_columns(query)

        # Scan (or recursively compute) every relation.
        rel_data: List[Tuple[Dataset, List[tuple]]] = []
        for index, rel in enumerate(query.rels):
            rel_data.append(self._input_for(index, rel, pool, needed, params))

        # Left-deep joins in FROM order (the rule-based part).
        dataset, layout = rel_data[0]
        joined = {0}
        for index in range(1, len(query.rels)):
            rel = query.rels[index]
            right_ds, right_layout = rel_data[index]
            quals = (
                list(ex.conjuncts(rel.join_cond)) if rel.join_cond is not None else []
            )
            quals += self._applicable(pool, joined, index)
            dataset, layout = self._join_job(
                rel.join_type if rel.join_type != "inner" else "inner",
                dataset,
                layout,
                right_ds,
                right_layout,
                joined,
                index,
                quals,
                params,
            )
            joined.add(index)

        # Any leftover predicates run in a filter pass.
        if pool:
            cond = compile_expr(ex.make_conjunction(pool), layout, params)
            dataset, _ = self.cluster.run_map_only_job(
                "filter",
                dataset,
                lambda row: [row] if cond(row) is True else [],
            )

        if query.has_aggregates:
            dataset, layout, rewrite = self._agg_job(query, dataset, layout, params)
        else:
            rewrite = lambda e: e

        # Final projection (+ DISTINCT / ORDER BY / LIMIT jobs).
        targets = [rewrite(t) for t, _ in query.targets]
        dataset, layout = self._project_job(query, dataset, layout, targets, params, rewrite)
        return dataset, layout

    # ---------------------------------------------------------------- inputs
    def _input_for(
        self,
        index: int,
        rel: RelEntry,
        pool: List[ex.BoundExpr],
        needed: Dict[int, List[int]],
        params: List[object],
    ) -> Tuple[Dataset, List[tuple]]:
        mine = [
            q
            for q in pool
            if ex.rels_of(q) == {index} and not ex.has_aggregate(q)
        ]
        for qual in mine:
            pool.remove(qual)

        if isinstance(rel.source, DerivedSource):
            inner_params = [
                self._run_init_plan(ip) for ip in rel.source.query.init_plans
            ]
            rel.source.query.init_plans = []
            dataset, _ = self._run_block(rel.source.query, inner_params)
            layout = [("r", index, i) for i in range(len(rel.column_names))]
            if mine:
                cond = compile_expr(ex.make_conjunction(mine), layout, params)
                dataset = Dataset.from_rows(
                    [r for r in dataset.rows if cond(r) is True], self.scale
                )
            return dataset, layout

        schema = rel.source.schema
        entry = self.tables.get(rel.source.table_name)
        if entry is None:
            raise SemanticError(f"table {rel.source.table_name!r} not loaded")
        _, paths = entry
        columns = needed.get(index) or [0]
        stats = ScanStats()
        client = self.hdfs.client()
        rows = list(
            orcfile.scan(
                client, paths, schema, self.compression, columns=columns, stats=stats
            )
        )
        pre_filter_rows = len(rows)
        layout_full = [("r", index, c) for c in range(len(schema.columns))]
        if mine:
            cond = compile_expr(ex.make_conjunction(mine), layout_full, params)
            rows = [r for r in rows if cond(r) is True]
        projected = [tuple(r[c] for c in columns) for r in rows]
        layout = [("r", index, c) for c in columns]
        # The job reading this input pays IO for the (projected) ORC
        # bytes, deserialization CPU for every pre-filter row, and input
        # splits are computed over the whole file (ORC behaviour).
        full_file_bytes = sum(paths.values())
        return (
            Dataset(
                rows=projected,
                nominal_bytes=stats.compressed_bytes * self.scale,
                cpu_rows=pre_filter_rows,
                split_bytes=full_file_bytes * self.scale,
            ),
            layout,
        )

    def _needed_columns(self, query: LogicalQuery) -> Dict[int, List[int]]:
        needed: Dict[int, set] = {i: set() for i in range(len(query.rels))}
        exprs: List[ex.BoundExpr] = [t for t, _ in query.targets]
        exprs.extend(query.quals)
        exprs.extend(query.group_by)
        if query.having is not None:
            exprs.append(query.having)
        exprs.extend(k.expr for k in query.order_by)
        for rel in query.rels:
            if rel.join_cond is not None:
                exprs.append(rel.join_cond)
        for expr in exprs:
            for var in ex.vars_of(expr, 0):
                if var.rel in needed:
                    needed[var.rel].add(var.col)
        return {i: sorted(cols) for i, cols in needed.items()}

    def _applicable(
        self, pool: List[ex.BoundExpr], joined: set, cand: int
    ) -> List[ex.BoundExpr]:
        out = []
        for qual in list(pool):
            rels = ex.rels_of(qual)
            if cand in rels and rels <= joined | {cand} and not ex.has_aggregate(qual):
                out.append(qual)
                pool.remove(qual)
        return out

    # ------------------------------------------------------------------ joins
    def _join_job(
        self,
        join_type: str,
        left: Dataset,
        left_layout: List[tuple],
        right: Dataset,
        right_layout: List[tuple],
        joined: set,
        cand: int,
        quals: List[ex.BoundExpr],
        params: List[object],
    ) -> Tuple[Dataset, List[tuple]]:
        left_keys, right_keys, residual = [], [], []
        for qual in quals:
            pair = self._split_eq(qual, joined, cand)
            if pair is not None:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
            else:
                residual.append(qual)
        out_layout = (
            list(left_layout)
            if join_type in ("semi", "anti")
            else list(left_layout) + list(right_layout)
        )
        residual_layout = list(left_layout) + list(right_layout)
        residual_fn = (
            compile_expr(ex.make_conjunction(residual), residual_layout, params)
            if residual
            else None
        )
        pad = (None,) * len(right_layout)

        def join_rows(lrow, matches):
            if residual_fn is not None:
                matches = [m for m in matches if residual_fn(lrow + m) is True]
            if join_type == "inner":
                return [lrow + m for m in matches]
            if join_type == "left":
                return [lrow + m for m in matches] if matches else [lrow + pad]
            if join_type == "semi":
                return [lrow] if matches else []
            if join_type == "anti":
                return [] if matches else [lrow]
            raise PlannerError(f"unknown join type {join_type!r}")

        if not left_keys:
            # Key-less join: broadcast the right side into every mapper.
            inner_rows = right.rows

            def cross_map(row):
                return join_rows(row, inner_rows)

            dataset, _ = self.cluster.run_map_only_job(
                "map-cross-join",
                left,
                cross_map,
                side_data_bytes=right.nominal_bytes,
                map_cpu_weight=1.0 + 0.3 * max(len(inner_rows), 1),
            )
            return dataset, out_layout

        lkey_fns = [compile_expr(k, left_layout, params) for k in left_keys]
        rkey_fns = [compile_expr(k, right_layout, params) for k in right_keys]

        if right.nominal_bytes <= self.MAPJOIN_THRESHOLD:
            # Stinger's automatic map-join: hash the small side in RAM.
            table: Dict[tuple, List[tuple]] = {}
            for row in right.rows:
                key = tuple(fn(row) for fn in rkey_fns)
                if any(k is None for k in key):
                    continue
                table.setdefault(key, []).append(row)

            def mapjoin_map(row):
                key = tuple(fn(row) for fn in lkey_fns)
                matches = table.get(key, []) if not any(k is None for k in key) else []
                return join_rows(row, matches)

            dataset, _ = self.cluster.run_map_only_job(
                "map-join",
                left,
                mapjoin_map,
                side_data_bytes=right.nominal_bytes,
                map_cpu_weight=2.0,
            )
            return dataset, out_layout

        # Reduce-side (common) join: tag, shuffle on key, join in reduce.
        def left_map(row):
            key = tuple(fn(row) for fn in lkey_fns)
            if any(k is None for k in key):
                if join_type in ("left", "anti"):
                    return [((None, id(row)), (0, row))]  # unmatched outer
                return []
            return [(key, (0, row))]

        def right_map(row):
            key = tuple(fn(row) for fn in rkey_fns)
            if any(k is None for k in key):
                return []
            return [(key, (1, row))]

        def join_reduce(key, values):
            lrows = [row for tag, row in values if tag == 0]
            rrows = [row for tag, row in values if tag == 1]
            out = []
            for lrow in lrows:
                out.extend(join_rows(lrow, rrows))
            return out

        dataset, _ = self.cluster.run_job(
            "common-join",
            [(left, left_map), (right, right_map)],
            join_reduce,
            reduce_cpu_weight=1.5,
        )
        return dataset, out_layout

    def _split_eq(self, qual, joined: set, cand: int):
        if not (isinstance(qual, ex.BOp) and qual.op == "="):
            return None
        left_rels, right_rels = ex.rels_of(qual.left), ex.rels_of(qual.right)
        if left_rels and left_rels <= joined and right_rels == {cand}:
            return qual.left, qual.right
        if right_rels and right_rels <= joined and left_rels == {cand}:
            return qual.right, qual.left
        return None

    # ------------------------------------------------------------ aggregation
    def _agg_job(
        self,
        query: LogicalQuery,
        dataset: Dataset,
        layout: List[tuple],
        params: List[object],
    ):
        aggs: List[ex.BAgg] = []
        seen: Dict[ex.BAgg, int] = {}
        scan_exprs = [t for t, _ in query.targets]
        if query.having is not None:
            scan_exprs.append(query.having)
        scan_exprs.extend(k.expr for k in query.order_by)
        for expr in scan_exprs:
            for node in ex.walk(expr):
                if isinstance(node, ex.BAgg) and node not in seen:
                    seen[node] = len(aggs)
                    aggs.append(node)

        key_fns = [compile_expr(k, layout, params) for k in query.group_by]
        arg_fns = [
            compile_expr(a.arg, layout, params) if a.arg is not None else None
            for a in aggs
        ]
        has_distinct = any(a.distinct for a in aggs)

        def agg_map(row):
            key = tuple(fn(row) for fn in key_fns)
            args = tuple(
                fn(row) if fn is not None else 1 for fn in arg_fns
            )
            return [(key, args)]

        def fold(values) -> List[AggState]:
            states = [make_state(a) for a in aggs]
            for value in values:
                if isinstance(value, list):  # combined partial states
                    for state, other in zip(states, value):
                        state.merge(other)
                else:
                    for state, arg in zip(states, value):
                        state.accumulate(arg)
            return states

        combine_fn = None
        if not has_distinct:
            # Stinger's map-side aggregation (hash + combiner).
            def combine_fn(key, values):
                return [list(fold(values))]

        def agg_reduce(key, values):
            states = fold(values)
            return [key + tuple(s.finalize() for s in states)]

        agg_dataset, _ = self.cluster.run_job(
            "group-by",
            [(dataset, agg_map)],
            agg_reduce,
            combine_fn=combine_fn,
            map_cpu_weight=1.2 + 0.3 * len(aggs),
            reduce_cpu_weight=1.2 + 0.3 * len(aggs),
        )
        if not agg_dataset.rows and not query.group_by and aggs:
            states = [make_state(a) for a in aggs]
            agg_dataset.rows.append(tuple(s.finalize() for s in states))

        agg_layout = [("g", i) for i in range(len(query.group_by))] + [
            ("a", i) for i in range(len(aggs))
        ]
        group_refs = {key: i for i, key in enumerate(query.group_by)}

        def rewrite(expr):
            return ex.rewrite_post_agg(expr, seen, group_refs)

        if query.having is not None:
            having_fn = compile_expr(rewrite(query.having), agg_layout, params)
            agg_dataset = Dataset.from_rows(
                [r for r in agg_dataset.rows if having_fn(r) is True], self.scale
            )
        return agg_dataset, agg_layout, rewrite

    # --------------------------------------------------------- project / sort
    def _project_job(
        self,
        query: LogicalQuery,
        dataset: Dataset,
        layout: List[tuple],
        targets: List[ex.BoundExpr],
        params: List[object],
        rewrite,
    ) -> Tuple[Dataset, List[tuple]]:
        project_exprs = list(targets)
        sort_slots: List[Tuple[int, bool, Optional[bool]]] = []
        for key in query.order_by:
            expr = rewrite(key.expr)
            if expr in project_exprs:
                slot = project_exprs.index(expr)
            else:
                project_exprs.append(expr)
                slot = len(project_exprs) - 1
            sort_slots.append((slot, key.ascending, key.nulls_first))

        fns = [compile_expr(e, layout, params) for e in project_exprs]

        def project_map(row):
            return [tuple(fn(row) for fn in fns)]

        dataset, _ = self.cluster.run_map_only_job(
            "select", dataset, project_map, map_cpu_weight=0.5 + 0.2 * len(fns)
        )

        if query.distinct:
            def distinct_map(row):
                return [(row, 1)]

            def distinct_reduce(key, values):
                return [key]

            dataset, _ = self.cluster.run_job(
                "distinct", [(dataset, distinct_map)], distinct_reduce
            )

        if sort_slots or query.limit is not None:
            dataset = self._sort_job(dataset, sort_slots, query.limit)

        ncols = len(targets)
        if len(project_exprs) > ncols:
            dataset = Dataset.from_rows(
                [r[:ncols] for r in dataset.rows], self.scale
            )
        return dataset, [("t", i) for i in range(ncols)]

    def _sort_job(
        self,
        dataset: Dataset,
        sort_slots: List[Tuple[int, bool, Optional[bool]]],
        limit: Optional[int],
    ) -> Dataset:
        """ORDER BY: Hive funnels everything through ONE reducer."""

        def sort_map(row):
            return [(0, row)]

        def sort_reduce(key, values):
            rows = list(values)
            for slot, ascending, nulls_first in reversed(sort_slots):
                if nulls_first is None:
                    nulls_first = not ascending
                if ascending:
                    null_bucket = 0 if nulls_first else 2
                else:
                    null_bucket = 2 if nulls_first else 0

                def sort_key(row, slot=slot, null_bucket=null_bucket):
                    value = row[slot]
                    if value is None:
                        return (null_bucket, 0)
                    return (1, value)

                rows.sort(key=sort_key, reverse=not ascending)
            if limit is not None:
                rows = rows[:limit]
            return rows

        out, _ = self.cluster.run_job(
            "order-by",
            [(dataset, sort_map)],
            sort_reduce,
            num_reducers=1,
            reduce_cpu_weight=2.0,
            # Hive's single-reducer sort spills externally; it is slow
            # but does not OOM.
            check_memory=False,
        )
        return out
