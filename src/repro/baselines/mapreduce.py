"""A MapReduce framework with YARN-style container scheduling.

Jobs *really execute* — mappers and reducers are Python callables over
real rows, shuffles really partition by key hash — while the simulated
clock charges what the paper blames for Hive/Stinger's slowness:

* a per-job JVM/ApplicationMaster start-up,
* a container launch per task, scheduled in waves under the cluster's
  container budget,
* full materialization of map output (local disk) and job output
  (replicated HDFS) between stages — no pipelining,
* an HTTP shuffle slower than the raw NIC,
* and reducers with bounded memory: a reducer whose (nominal) input
  exceeds ``mr_reducer_mem`` kills the job with
  :class:`ReducerOutOfMemory` (the paper's three failing queries).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.schema import hash_values
from repro.errors import ReproError
from repro.executor.expr import estimate_row_bytes
from repro.simtime import CostModel


class ReducerOutOfMemory(ReproError):
    """A reducer's input exceeded its container memory."""


@dataclass
class JobStats:
    """Accounting for one MapReduce job."""

    name: str
    map_tasks: int = 0
    reduce_tasks: int = 0
    map_waves: int = 0
    input_bytes_nominal: float = 0.0
    shuffle_bytes_nominal: float = 0.0
    output_bytes_nominal: float = 0.0
    seconds: float = 0.0


@dataclass
class Dataset:
    """Rows plus their physical footprint (nominal bytes on HDFS).

    ``cpu_rows``: rows the map phase must deserialize — for a table scan
    this is the *pre-filter* row count even though ``rows`` holds only
    the survivors. ``split_bytes``: bytes used for input-split (task)
    counting — ORC computes splits over the whole file even when column
    projection reads only part of it.
    """

    rows: List[tuple]
    nominal_bytes: float
    cpu_rows: Optional[int] = None
    split_bytes: Optional[float] = None

    @classmethod
    def from_rows(cls, rows: List[tuple], scale: float) -> "Dataset":
        actual = sum(estimate_row_bytes(r) for r in rows)
        return cls(rows=rows, nominal_bytes=actual * scale)

    @property
    def effective_cpu_rows(self) -> int:
        return self.cpu_rows if self.cpu_rows is not None else len(self.rows)

    @property
    def effective_split_bytes(self) -> float:
        return (
            self.split_bytes if self.split_bytes is not None else self.nominal_bytes
        )


class MapReduceCluster:
    """Schedules jobs on ``num_nodes`` x ``containers_per_node``."""

    def __init__(
        self,
        num_nodes: int = 16,
        containers_per_node: int = 9,
        cost_model: Optional[CostModel] = None,
        scale: float = 1.0,
    ):
        self.num_nodes = num_nodes
        self.containers_per_node = containers_per_node
        self.total_containers = num_nodes * containers_per_node
        self.model = cost_model or CostModel()
        self.scale = scale
        self.jobs: List[JobStats] = []

    # -------------------------------------------------------------- core api
    def run_job(
        self,
        name: str,
        inputs: Sequence[Tuple[Dataset, Callable[[tuple], Iterable[Tuple[object, object]]]]],
        reduce_fn: Callable[[object, List[object]], Iterable[tuple]],
        num_reducers: Optional[int] = None,
        combine_fn: Optional[Callable[[object, List[object]], List[object]]] = None,
        map_cpu_weight: float = 1.0,
        reduce_cpu_weight: float = 1.0,
        check_memory: bool = True,
    ) -> Tuple[Dataset, JobStats]:
        """One full map-shuffle-reduce round.

        ``inputs``: (dataset, mapper) pairs — a join job maps several
        tagged inputs into the same shuffle. The mapper returns (key,
        value) pairs. ``reduce_fn(key, values)`` yields output rows.
        """
        model = self.model
        stats = JobStats(name=name)

        total_input_nominal = sum(ds.nominal_bytes for ds, _ in inputs)
        total_split_bytes = sum(ds.effective_split_bytes for ds, _ in inputs)
        stats.input_bytes_nominal = total_input_nominal
        stats.map_tasks = max(
            1, math.ceil(total_split_bytes / model.mr_block_size)
        )
        if num_reducers is None:
            num_reducers = max(
                1,
                min(
                    math.ceil(total_input_nominal / (4 * model.mr_block_size)),
                    self.total_containers,
                ),
            )
        stats.reduce_tasks = num_reducers

        # ------------------------------------------------------- map phase
        shuffle: Dict[int, Dict[object, List[object]]] = defaultdict(
            lambda: defaultdict(list)
        )
        map_output_pairs = 0
        input_rows = 0
        for dataset, mapper in inputs:
            # Deserialization CPU covers pre-filter rows, not survivors.
            input_rows += dataset.effective_cpu_rows - len(dataset.rows)
            for row in dataset.rows:
                input_rows += 1
                for key, value in mapper(row):
                    partition = hash_values((key,), num_reducers)
                    shuffle[partition][key].append(value)
                    map_output_pairs += 1

        if combine_fn is not None:
            combined = 0
            for partition in shuffle.values():
                for key, values in partition.items():
                    partition[key] = combine_fn(key, values)
                    combined += len(partition[key])
            map_output_pairs = combined

        shuffle_actual = sum(
            estimate_row_bytes((key,)) + sum(
                estimate_row_bytes(v) if isinstance(v, tuple) else 16
                for v in values
            )
            for partition in shuffle.values()
            for key, values in partition.items()
        )
        scale = self.scale
        shuffle_nominal = shuffle_actual * scale
        stats.shuffle_bytes_nominal = shuffle_nominal

        # Reducer memory check. At full scale keys spread evenly over
        # reducers, so the expected per-reducer load is shuffle/reducers.
        # (Per-key sizes observed at a reduced scale factor cannot be
        # extrapolated: most TPC-H join keys gain *cardinality*, not
        # per-key volume, as data grows — so small-sample partition or
        # key lumpiness is deliberately not counted as skew.)
        biggest = shuffle_nominal / num_reducers
        if check_memory and biggest > model.mr_reducer_mem:
            raise ReducerOutOfMemory(
                f"job {name!r}: reducer input {biggest / 1e9:.1f} GB exceeds "
                f"container memory {model.mr_reducer_mem / 1e9:.1f} GB"
            )

        # ---------------------------------------------------- reduce phase
        out_rows: List[tuple] = []
        for partition in shuffle.values():
            for key, values in partition.items():
                out_rows.extend(reduce_fn(key, values))
        output = Dataset.from_rows(out_rows, scale)
        stats.output_bytes_nominal = output.nominal_bytes

        # -------------------------------------------------------- the clock
        stats.map_waves = math.ceil(stats.map_tasks / self.total_containers)
        per_task_input = total_input_nominal / stats.map_tasks
        # When the working set fits in the cluster's page cache (the
        # paper's 160 GB configuration) input reads, spills and shuffle
        # fetches run at memory/NIC speed; at 1.6 TB they hit real disks
        # — this is what makes the big scale superlinearly slower.
        if model.io_cached:
            read_bw = float("inf")
            spill_bw = float("inf")
            shuffle_bw = model.net_bw
        else:
            read_bw = model.disk_seq_bw
            spill_bw = model.mr_spill_bw
            shuffle_bw = model.mr_shuffle_bw
        # CPU is charged on *nominal* rows (actual rows x scale).
        rows_per_task = input_rows * scale / stats.map_tasks if stats.map_tasks else 0
        map_task_time = (
            model.mr_container_setup
            + per_task_input / read_bw
            + rows_per_task * model.mr_cpu_tuple * map_cpu_weight
            # map output spilled (sorted) to local disk: write + read
            + 2 * (shuffle_nominal / stats.map_tasks) / spill_bw
        )
        map_time = stats.map_waves * (map_task_time + model.mr_wave_delay)

        reduce_waves = math.ceil(num_reducers / self.total_containers)
        per_reducer = shuffle_nominal / num_reducers
        pairs_per_reducer = map_output_pairs * scale / num_reducers
        # Merge-sort goes multi-pass once the input exceeds sort memory.
        merge_passes = min(
            max(1, math.ceil(per_reducer / model.mr_sort_mem)), 6
        )
        reduce_task_time = (
            model.mr_container_setup
            + per_reducer / shuffle_bw  # HTTP fetch
            + 2 * merge_passes * per_reducer / spill_bw  # merge spill
            + pairs_per_reducer * model.mr_cpu_tuple * reduce_cpu_weight
            # output written to HDFS with replication
            + (output.nominal_bytes / num_reducers)
            * model.hdfs_replication
            / model.disk_seq_bw
        )
        reduce_time = reduce_waves * (reduce_task_time + model.mr_wave_delay)

        stats.seconds = model.mr_job_setup + map_time + reduce_time
        self.jobs.append(stats)
        return output, stats

    def run_map_only_job(
        self,
        name: str,
        dataset: Dataset,
        map_fn: Callable[[tuple], Iterable[tuple]],
        side_data_bytes: float = 0.0,
        map_cpu_weight: float = 1.0,
    ) -> Tuple[Dataset, JobStats]:
        """A map-only job (e.g. Stinger's broadcast map-join): the side
        table is distributed to every mapper (charged), no shuffle."""
        model = self.model
        stats = JobStats(name=name)
        stats.input_bytes_nominal = dataset.nominal_bytes
        stats.map_tasks = max(
            1, math.ceil(dataset.effective_split_bytes / model.mr_block_size)
        )
        out_rows: List[tuple] = []
        for row in dataset.rows:
            out_rows.extend(map_fn(row))
        output = Dataset.from_rows(out_rows, self.scale)
        stats.output_bytes_nominal = output.nominal_bytes
        stats.map_waves = math.ceil(stats.map_tasks / self.total_containers)
        per_task = dataset.nominal_bytes / stats.map_tasks
        read_bw = float("inf") if model.io_cached else model.disk_seq_bw
        rows_per_task = (
            dataset.effective_cpu_rows * self.scale / stats.map_tasks
        )
        task_time = (
            model.mr_container_setup
            + side_data_bytes / model.mr_shuffle_bw  # fetch the hash side
            + per_task / read_bw
            + rows_per_task * model.mr_cpu_tuple * map_cpu_weight
            + (output.nominal_bytes / stats.map_tasks)
            * model.hdfs_replication
            / model.disk_seq_bw
        )
        stats.seconds = model.mr_job_setup + stats.map_waves * (
            task_time + model.mr_wave_delay
        )
        self.jobs.append(stats)
        return output, stats
