"""Interconnect packet format.

Every packet carries a self-describing header: the motion node id, the
sending and receiving peer ids, and the session/command id — enough for a
receiver to demultiplex tuple streams arriving on its single shared
socket (paper Section 4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Size in bytes of the evenly-aligned packet header.
HEADER_SIZE = 32
#: Maximum payload bytes per data packet.
MAX_PAYLOAD = 8192


class PacketType(enum.Enum):
    """Wire message kinds of the UDP interconnect protocol."""

    DATA = "data"
    ACK = "ack"
    EOS = "eos"  # end of stream, sent by the sender
    STOP = "stop"  # receiver asks the sender to stop (LIMIT queries)
    OUT_OF_ORDER = "out_of_order"  # receiver NAKs possibly-lost packets
    DUPLICATE = "duplicate"  # receiver saw a duplicate; carries cumulative ack
    STATUS_QUERY = "status_query"  # deadlock elimination probe


@dataclass(frozen=True)
class StreamKey:
    """Identity of one virtual connection (one tuple stream).

    A stream is one (motion node, sender peer, receiver peer) triple
    within one command of one session.
    """

    session_id: int
    command_id: int
    motion_id: int
    sender_id: int
    receiver_id: int


@dataclass
class Packet:
    """One interconnect packet.

    ``seq`` numbers data and EOS packets (EOS consumes a sequence number
    so that end-of-stream itself is delivered reliably and in order).
    ``sc``/``sr`` ride on ACK-like packets: SC is the sequence number of
    the last packet the receiver has *consumed*; SR is the largest
    sequence number such that every packet up to it has been *received
    and queued* (cumulative).
    """

    kind: PacketType
    stream: StreamKey
    seq: int = 0
    payload: Optional[object] = None
    payload_size: int = 0
    sc: int = 0
    sr: int = 0
    missing: Tuple[int, ...] = ()

    @property
    def size(self) -> int:
        """Wire size in bytes."""
        return HEADER_SIZE + self.payload_size + 4 * len(self.missing)
