"""The HAWQ interconnect (paper Section 4).

Tuple streams between execution slices flow over one of two transports:

* :class:`~repro.interconnect.udp.UdpEndpoint` — the paper's contribution:
  every segment multiplexes all of its virtual connections over a single
  UDP socket, with sender/receiver state machines providing reliability,
  ordering, loss-based flow control and deadlock elimination on top of an
  unreliable datagram fabric.
* :class:`~repro.interconnect.tcp.TcpEndpoint` — the comparator: one real
  connection per stream, paying per-connection set-up and subject to port
  exhaustion.
"""

from repro.interconnect.exchange import ExchangeFabric, StreamRecord
from repro.interconnect.packet import Packet, PacketType, StreamKey
from repro.interconnect.tcp import (
    TcpEndpoint,
    TcpFabric,
    TcpReceiver,
    TcpSender,
    TcpTuning,
)
from repro.interconnect.udp import (
    ReceiverState,
    SenderState,
    UdpEndpoint,
    UdpReceiver,
    UdpSender,
    UdpTuning,
)

__all__ = [
    "ExchangeFabric",
    "Packet",
    "PacketType",
    "StreamRecord",
    "ReceiverState",
    "SenderState",
    "StreamKey",
    "TcpEndpoint",
    "TcpFabric",
    "TcpReceiver",
    "TcpSender",
    "TcpTuning",
    "UdpEndpoint",
    "UdpReceiver",
    "UdpSender",
    "UdpTuning",
]
