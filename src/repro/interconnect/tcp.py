"""TCP interconnect: the transport HAWQ's UDP design replaces.

The paper (Section 4) identifies two TCP limitations at MPP scale:

* every tuple stream needs its own connection, so an N-segment,
  S-slice query opens about ``S * N * N`` connections — the per-IP port
  space (~60k) runs out, and
* connection set-up is expensive when thousands must be opened at once,
  and throughput degrades under high stream concurrency per host.

This module models exactly those effects while still *functionally*
delivering tuples reliably and in order (as kernel TCP would): each
stream pays a handshake before data flows, each stream consumes a port on
both hosts, and per-host effective bandwidth shrinks as concurrent
streams grow.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConnectionLimitExceeded, InterconnectError
from repro.interconnect.packet import HEADER_SIZE, Packet, PacketType, StreamKey
from repro.network.simnet import Address, SimNetwork


@dataclass
class TcpTuning:
    """Model parameters for the TCP transport."""

    conn_setup: float = 1.2e-3
    max_streams_per_host: int = 60000
    #: Effective bandwidth divisor grows by this per concurrent stream.
    concurrency_penalty: float = 0.004
    base_bandwidth: float = 1.25e9


class TcpFabric:
    """Shared state across all TCP endpoints: ports, concurrency, and the
    per-host handshake queue (a kernel processes connection set-ups
    serially — with thousands of concurrent opens this is exactly the
    "time consuming connection setup step" the paper's UDP design
    eliminates)."""

    def __init__(self, network: SimNetwork, tuning: Optional[TcpTuning] = None):
        self.network = network
        self.tuning = tuning or TcpTuning()
        self.streams_per_host: Dict[str, int] = defaultdict(int)
        self.total_connections = 0
        self._handshake_free_at: Dict[str, float] = defaultdict(float)

    def open_stream(self, src_host: str, dst_host: str) -> float:
        """Register a stream; returns the handshake completion delay."""
        tuning = self.tuning
        for host in (src_host, dst_host):
            if self.streams_per_host[host] >= tuning.max_streams_per_host:
                raise ConnectionLimitExceeded(
                    f"host {host} exhausted its {tuning.max_streams_per_host} ports"
                )
        self.streams_per_host[src_host] += 1
        self.streams_per_host[dst_host] += 1
        self.total_connections += 1
        now = self.network.now
        start = max(
            now,
            self._handshake_free_at[src_host],
            self._handshake_free_at[dst_host],
        )
        done = start + tuning.conn_setup
        self._handshake_free_at[src_host] = done
        self._handshake_free_at[dst_host] = done
        return done - now + 2 * self.network.conditions.latency

    def close_stream(self, src_host: str, dst_host: str) -> None:
        self.streams_per_host[src_host] -= 1
        self.streams_per_host[dst_host] -= 1

    def effective_bandwidth(self, host: str) -> float:
        tuning = self.tuning
        streams = max(1, self.streams_per_host[host])
        return tuning.base_bandwidth / (1 + tuning.concurrency_penalty * streams)


class TcpEndpoint:
    """One host's TCP stack: creates per-stream senders and receivers."""

    def __init__(self, fabric: TcpFabric, address: Address):
        self.fabric = fabric
        self.address = address
        self._receivers: Dict[StreamKey, TcpReceiver] = {}

    def create_sender(self, stream: StreamKey, peer: "TcpEndpoint") -> "TcpSender":
        return TcpSender(self, stream, peer)

    def create_receiver(
        self,
        stream: StreamKey,
        on_payload: Optional[Callable[[object], None]] = None,
    ) -> "TcpReceiver":
        if stream in self._receivers:
            raise InterconnectError(f"receiver already exists for {stream}")
        receiver = TcpReceiver(self, stream, on_payload)
        self._receivers[stream] = receiver
        return receiver

    def _receiver_for(self, stream: StreamKey) -> "TcpReceiver":
        receiver = self._receivers.get(stream)
        if receiver is None:
            raise InterconnectError(f"no TCP receiver for {stream}")
        return receiver


class TcpSender:
    """Sending side of one TCP stream (connection)."""

    def __init__(self, endpoint: TcpEndpoint, stream: StreamKey, peer: TcpEndpoint):
        self.endpoint = endpoint
        self.stream = stream
        self.peer = peer
        self.connected = False
        self.closed = False
        self._connecting = False
        self._queue: List[Packet] = []
        self._next_ready = 0.0  # serialization point for in-order delivery
        self._eos_queued = False
        self.bytes_sent = 0
        self.packets_sent = 0
        self._stopped = False

    # ------------------------------------------------------------ public api
    def send(self, payload: object, size: Optional[int] = None) -> None:
        if self.closed:
            raise InterconnectError("send on closed TCP stream")
        if self._stopped:
            return  # receiver already said stop; drop silently like a RST'd pipe
        payload_size = size if size is not None else 256
        self._queue.append(
            Packet(
                kind=PacketType.DATA,
                stream=self.stream,
                payload=payload,
                payload_size=payload_size,
            )
        )
        self._ensure_connected()
        if self.connected:
            self._flush()

    def finish(self) -> None:
        if self._eos_queued:
            return
        self._eos_queued = True
        self._queue.append(Packet(kind=PacketType.EOS, stream=self.stream))
        self._ensure_connected()
        if self.connected:
            self._flush()

    @property
    def done(self) -> bool:
        return self.closed

    # ------------------------------------------------------------- internals
    def _ensure_connected(self) -> None:
        if self.connected or self._connecting:
            return
        self._connecting = True
        fabric = self.endpoint.fabric
        handshake = fabric.open_stream(
            self.endpoint.address[0], self.peer.address[0]
        )
        fabric.network.schedule(handshake, self._on_connected)

    def _on_connected(self) -> None:
        self.connected = True
        self._next_ready = self.endpoint.fabric.network.now
        self._flush()

    def _flush(self) -> None:
        network = self.endpoint.fabric.network
        fabric = self.endpoint.fabric
        while self._queue:
            packet = self._queue.pop(0)
            size = packet.size
            bw = min(
                fabric.effective_bandwidth(self.endpoint.address[0]),
                fabric.effective_bandwidth(self.peer.address[0]),
            )
            # Expected retransmission penalty folded into delivery time.
            loss = network.conditions.loss_rate
            penalty = 1.0 / (1.0 - loss) if loss < 1.0 else float("inf")
            self._next_ready = max(self._next_ready, network.now) + (
                size / bw
            ) * penalty
            arrival = self._next_ready + network.conditions.latency
            delay = arrival - network.now
            self.bytes_sent += size
            self.packets_sent += 1
            network.schedule(delay, lambda p=packet: self._deliver(p))

    def _deliver(self, packet: Packet) -> None:
        receiver = self.peer._receiver_for(self.stream)
        receiver._on_packet(packet)
        if packet.kind == PacketType.EOS:
            self._close()

    def _close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.connected = False
        self.endpoint.fabric.close_stream(
            self.endpoint.address[0], self.peer.address[0]
        )

    def _on_stop(self) -> None:
        """Receiver-side STOP propagated back (LIMIT queries)."""
        self._stopped = True
        self._queue = [p for p in self._queue if p.kind == PacketType.EOS]
        if not self._eos_queued:
            self.finish()


class TcpReceiver:
    """Receiving side of one TCP stream; delivery is reliable in-order."""

    def __init__(
        self,
        endpoint: TcpEndpoint,
        stream: StreamKey,
        on_payload: Optional[Callable[[object], None]] = None,
    ):
        self.endpoint = endpoint
        self.stream = stream
        self._on_payload = on_payload
        self.received: List[object] = []
        self.eos = False
        self._sender: Optional[TcpSender] = None

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == PacketType.EOS:
            self.eos = True
            return
        if self._on_payload is not None:
            self._on_payload(packet.payload)
        else:
            self.received.append(packet.payload)

    def attach_sender(self, sender: TcpSender) -> None:
        """Wire the back-channel used by :meth:`stop`."""
        self._sender = sender

    def stop(self) -> None:
        if self._sender is not None:
            self._sender._on_stop()

    @property
    def done(self) -> bool:
        return self.eos
