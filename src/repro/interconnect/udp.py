"""The UDP interconnect: reliability, ordering, flow control, deadlock
elimination — all in user space over an unreliable datagram network.

This is a faithful implementation of paper Section 4:

* **One socket per segment**: an :class:`UdpEndpoint` binds a single
  simulated UDP port and demultiplexes packets to per-stream senders and
  receivers by the self-describing header (:class:`StreamKey`).
* **Reliability**: senders keep unacknowledged packets in an expiration
  queue ring; retransmission timeouts are computed from measured RTT.
* **Ordering**: receivers slot packets into a ring buffer keyed by
  sequence number — no sorting — and deliver them in order.
* **Flow control**: a loss-based window. On an expired (presumed lost)
  packet the window collapses to a minimum and grows back via slow start;
  receiver capacity (advertised through SC) bounds it.
* **OUT-OF-ORDER / DUPLICATE**: gaps trigger immediate NAKs listing the
  possibly-lost packets; duplicates trigger an immediate cumulative ack
  so the sender can clear its expiration ring.
* **Deadlock elimination**: if all acks are lost the sender would wait
  forever on a full receiver; after a quiet period it sends a
  STATUS_QUERY and the receiver replies with its current SC/SR
  (Section 4.5).
* **EoS / Stop**: the sender/receiver state machines of Figure 5,
  including the receiver stopping the sender for LIMIT queries.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import InterconnectError
from repro.interconnect.packet import (
    HEADER_SIZE,
    MAX_PAYLOAD,
    Packet,
    PacketType,
    StreamKey,
)
from repro.network.simnet import Address, Datagram, SimNetwork


class SenderState(enum.Enum):
    """Sender half of the Figure 5 state machine."""

    SETUP = "setup"
    SENDING = "sending"
    EOS_SENT = "eos_sent"
    STOP_RECEIVED = "stop_received"
    END = "end"


class ReceiverState(enum.Enum):
    """Receiver half of the Figure 5 state machine."""

    SETUP = "setup"
    RECEIVING = "receiving"
    EOS_RECEIVED = "eos_received"
    STOP_SENT = "stop_sent"
    END = "end"


@dataclass
class UdpTuning:
    """Protocol knobs, with defaults mirroring sensible kernel values."""

    capacity: int = 64  # receive buffers per virtual connection
    min_cwnd: float = 2.0
    initial_cwnd: float = 8.0
    min_rto: float = 2e-3
    max_rto: float = 0.25
    status_query_interval: float = 0.05
    ack_timer: float = 0.0  # acks are immediate in this implementation


class UdpEndpoint:
    """One segment's single multiplexed interconnect socket."""

    def __init__(
        self,
        network: SimNetwork,
        address: Address,
        tuning: Optional[UdpTuning] = None,
    ):
        self.network = network
        self.address = address
        self.tuning = tuning or UdpTuning()
        self._senders: Dict[StreamKey, UdpSender] = {}
        self._receivers: Dict[StreamKey, UdpReceiver] = {}
        #: Datagrams discarded because the packet checksum failed.
        self.corrupt_dropped = 0
        network.register(address, self._on_datagram)

    def close(self) -> None:
        self.network.unregister(self.address)

    # ------------------------------------------------------------- factories
    def create_sender(self, stream: StreamKey, peer: Address) -> "UdpSender":
        """Open the sending half of a virtual connection to ``peer``."""
        if stream in self._senders:
            raise InterconnectError(f"sender already exists for {stream}")
        sender = UdpSender(self, stream, peer)
        self._senders[stream] = sender
        return sender

    def create_receiver(
        self,
        stream: StreamKey,
        peer: Address,
        on_payload: Optional[Callable[[object], None]] = None,
    ) -> "UdpReceiver":
        """Open the receiving half of a virtual connection from ``peer``."""
        if stream in self._receivers:
            raise InterconnectError(f"receiver already exists for {stream}")
        receiver = UdpReceiver(self, stream, peer, on_payload)
        self._receivers[stream] = receiver
        return receiver

    # ---------------------------------------------------------------- demux
    def _on_datagram(self, datagram: Datagram) -> None:
        if datagram.corrupted:
            # Checksum failure: discard silently. A corrupted DATA packet
            # will be retransmitted; a corrupted ACK is recovered by the
            # next cumulative ack or a STATUS_QUERY probe.
            self.corrupt_dropped += 1
            return
        packet: Packet = datagram.payload
        if packet.kind in (PacketType.DATA, PacketType.EOS, PacketType.STATUS_QUERY):
            receiver = self._receivers.get(packet.stream)
            if receiver is not None:
                receiver._on_packet(packet)
        else:
            sender = self._senders.get(packet.stream)
            if sender is not None:
                sender._on_packet(packet)

    def _send(self, dst: Address, packet: Packet) -> None:
        self.network.send(self.address, dst, packet, packet.size)


class UdpSender:
    """Sending half of one virtual connection.

    All state transitions happen inside the event loop; user code calls
    :meth:`send` / :meth:`finish` to enqueue work and then runs the
    network.
    """

    def __init__(self, endpoint: UdpEndpoint, stream: StreamKey, peer: Address):
        self.endpoint = endpoint
        self.stream = stream
        self.peer = peer
        self.state = SenderState.SETUP
        tuning = endpoint.tuning
        self._next_seq = 1
        self._pending: Deque[Packet] = deque()  # queued, not yet on the wire
        self._unacked: Dict[int, Tuple[Packet, float, bool]] = {}
        # expiration queue ring: seqs in send order, pruned lazily
        self._expiration_ring: Deque[int] = deque()
        self._cwnd = tuning.initial_cwnd
        self._ssthresh = float(tuning.capacity)
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._last_sc = 0
        self._last_sr = 0
        self._last_ack_time = 0.0
        self._eos_queued = False
        self._timer = None
        # statistics, inspected by tests and benchmarks
        self.packets_sent = 0
        self.retransmits = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------ public api
    def send(self, payload: object, size: Optional[int] = None) -> None:
        """Queue one tuple batch for transmission."""
        if self._eos_queued or self.state in (
            SenderState.EOS_SENT,
            SenderState.END,
            SenderState.STOP_RECEIVED,
        ):
            raise InterconnectError(f"send after stream close (state={self.state})")
        self.state = SenderState.SENDING
        payload_size = size if size is not None else self._estimate_size(payload)
        if payload_size > MAX_PAYLOAD:
            raise InterconnectError(f"payload exceeds MAX_PAYLOAD: {payload_size}")
        packet = Packet(
            kind=PacketType.DATA,
            stream=self.stream,
            seq=self._next_seq,
            payload=payload,
            payload_size=payload_size,
        )
        self._next_seq += 1
        self._pending.append(packet)
        self._pump()

    def finish(self) -> None:
        """Queue end-of-stream; the stream ends once EOS is acknowledged."""
        if self._eos_queued:
            return
        self._eos_queued = True
        packet = Packet(kind=PacketType.EOS, stream=self.stream, seq=self._next_seq)
        self._next_seq += 1
        self._pending.append(packet)
        self._pump()

    @property
    def done(self) -> bool:
        """True once every packet (including EOS) is consumed or stopped."""
        return self.state == SenderState.END

    @property
    def cwnd(self) -> float:
        return self._cwnd

    # ------------------------------------------------------------- internals
    def _estimate_size(self, payload: object) -> int:
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        return 256

    def _inflight(self) -> int:
        return self._next_seq - 1 - self._last_sc

    def _pump(self) -> None:
        """Send queued packets while window and receiver capacity allow."""
        tuning = self.endpoint.tuning
        while self._pending:
            if len(self._unacked) >= int(self._cwnd):
                break
            head = self._pending[0]
            if head.seq - self._last_sc > tuning.capacity:
                break  # receiver has no buffer for this packet yet
            self._pending.popleft()
            self._transmit(head, first=True)
        self._arm_timer()

    def _transmit(self, packet: Packet, first: bool) -> None:
        now = self.endpoint.network.now
        self._unacked[packet.seq] = (packet, now, first)
        if first:
            self._expiration_ring.append(packet.seq)
            self.packets_sent += 1
        else:
            self.retransmits += 1
        self.bytes_sent += packet.size
        self.endpoint._send(self.peer, packet)

    # ---------------------------------------------------------------- timers
    def _rto(self) -> float:
        tuning = self.endpoint.tuning
        if self._srtt is None:
            return tuning.max_rto / 4
        rto = self._srtt + 4 * self._rttvar
        return min(max(rto, tuning.min_rto), tuning.max_rto)

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.state == SenderState.END:
            return
        if not self._unacked and not self._pending:
            return  # idle: nothing can expire, nothing to probe for
        self._timer = self.endpoint.network.schedule(self._rto(), self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        if self.state == SenderState.END:
            return
        now = self.endpoint.network.now
        rto = self._rto()
        expired = [
            seq
            for seq, (_pkt, sent_at, _first) in self._unacked.items()
            if now - sent_at >= rto
        ]
        if expired:
            # Loss signal: collapse the flow-control window (Section 4.3).
            tuning = self.endpoint.tuning
            self._ssthresh = max(self._cwnd / 2, tuning.min_cwnd)
            self._cwnd = tuning.min_cwnd
            for seq in sorted(expired):
                packet, _sent_at, _first = self._unacked[seq]
                self._transmit(packet, first=False)
        elif self._should_probe(now):
            # Deadlock elimination (Section 4.5): all acks may be lost and
            # the receiver looks full; ask it where it stands.
            self.endpoint._send(
                self.peer,
                Packet(kind=PacketType.STATUS_QUERY, stream=self.stream),
            )
        self._pump()

    def _should_probe(self, now: float) -> bool:
        tuning = self.endpoint.tuning
        return (
            self._pending
            and not self._unacked
            and self._pending[0].seq - self._last_sc > tuning.capacity
            and now - self._last_ack_time >= tuning.status_query_interval
        )

    # ------------------------------------------------------------------ acks
    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == PacketType.STOP:
            self._on_stop()
            return
        if packet.kind not in (
            PacketType.ACK,
            PacketType.DUPLICATE,
            PacketType.OUT_OF_ORDER,
        ):
            return
        self._last_ack_time = self.endpoint.network.now
        self._absorb_ack(packet.sc, packet.sr)
        if packet.kind == PacketType.OUT_OF_ORDER:
            # NAK'd packets may merely be reordered and still in flight;
            # only resend ones older than roughly one RTT.
            now = self.endpoint.network.now
            min_age = max(self._srtt or 0.0, self.endpoint.tuning.min_rto / 2)
            for seq in packet.missing:
                entry = self._unacked.get(seq)
                if entry is not None and now - entry[1] >= min_age:
                    self._transmit(entry[0], first=False)
        self._maybe_finish()
        self._pump()

    def _absorb_ack(self, sc: int, sr: int) -> None:
        now = self.endpoint.network.now
        self._last_sc = max(self._last_sc, sc)
        self._last_sr = max(self._last_sr, sr)
        acked = [seq for seq in self._unacked if seq <= self._last_sr]
        for seq in sorted(acked):
            packet, sent_at, first_only = self._unacked.pop(seq)
            if first_only:
                # Karn's algorithm: only never-retransmitted packets give
                # unambiguous RTT samples.
                self._sample_rtt(now - sent_at)
            self._grow_window()
        while self._expiration_ring and self._expiration_ring[0] <= self._last_sr:
            self._expiration_ring.popleft()

    def _sample_rtt(self, sample: float) -> None:
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample

    def _grow_window(self) -> None:
        tuning = self.endpoint.tuning
        if self._cwnd < self._ssthresh:
            self._cwnd += 1  # slow start
        else:
            self._cwnd += 1 / self._cwnd  # congestion avoidance
        self._cwnd = min(self._cwnd, float(tuning.capacity))

    def _maybe_finish(self) -> None:
        if (
            self._eos_queued
            and not self._pending
            and not self._unacked
            and self.state != SenderState.END
        ):
            self.state = SenderState.END
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None

    def _on_stop(self) -> None:
        """Receiver has enough data (LIMIT): drop queued work, send EOS."""
        if self.state in (SenderState.END,):
            return
        self.state = SenderState.STOP_RECEIVED
        self._pending.clear()
        for seq in list(self._unacked):
            del self._unacked[seq]
        self._expiration_ring.clear()
        eos = Packet(kind=PacketType.EOS, stream=self.stream, seq=self._next_seq)
        self._next_seq += 1
        self.endpoint._send(self.peer, eos)
        self.state = SenderState.END
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


class UdpReceiver:
    """Receiving half of one virtual connection.

    Incoming packets land in a ring buffer indexed by ``seq % capacity``;
    in-order packets are delivered to ``on_payload`` (or buffered in
    :attr:`received`) as soon as the sequence is contiguous.
    """

    def __init__(
        self,
        endpoint: UdpEndpoint,
        stream: StreamKey,
        peer: Address,
        on_payload: Optional[Callable[[object], None]] = None,
    ):
        self.endpoint = endpoint
        self.stream = stream
        self.peer = peer
        self.state = ReceiverState.SETUP
        self._on_payload = on_payload
        capacity = endpoint.tuning.capacity
        self._ring: List[Optional[Packet]] = [None] * capacity
        self._next_expected = 1  # next seq to consume
        self._sr = 0  # cumulative: all seqs <= _sr received
        self._consume_delay = 0.0
        self._consuming = False
        self.received: List[object] = []
        self.eos = False
        self.duplicates = 0
        self.out_of_order_events = 0
        #: Drop every ack (test hook for the deadlock-elimination path).
        self.drop_acks = False

    # ------------------------------------------------------------ public api
    def set_consume_delay(self, seconds: float) -> None:
        """Simulate a slow consumer: each packet takes this long to drain."""
        self._consume_delay = seconds

    def stop(self) -> None:
        """Ask the sender to stop (LIMIT satisfied)."""
        if self.state in (ReceiverState.END, ReceiverState.EOS_RECEIVED):
            return
        self.state = ReceiverState.STOP_SENT
        self.endpoint._send(
            self.peer, Packet(kind=PacketType.STOP, stream=self.stream)
        )

    @property
    def done(self) -> bool:
        return self.eos

    # ------------------------------------------------------------- internals
    def _capacity(self) -> int:
        return self.endpoint.tuning.capacity

    def _slot(self, seq: int) -> int:
        return seq % self._capacity()

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == PacketType.STATUS_QUERY:
            self._send_ack(PacketType.ACK)
            return
        if packet.kind not in (PacketType.DATA, PacketType.EOS):
            return
        if self.state == ReceiverState.STOP_SENT:
            # After STOP the sender abandons retransmission, so sequence
            # continuity is gone; accept its closing EOS unconditionally
            # and remind it to stop if data keeps arriving.
            if packet.kind == PacketType.EOS:
                self.eos = True
                self.state = ReceiverState.EOS_RECEIVED
                self._send_ack(PacketType.ACK)
            else:
                self.endpoint._send(
                    self.peer, Packet(kind=PacketType.STOP, stream=self.stream)
                )
            return
        if self.state == ReceiverState.SETUP:
            self.state = ReceiverState.RECEIVING
        seq = packet.seq
        slot = self._slot(seq)
        occupant = self._ring[slot]
        if seq <= self._sr or (occupant is not None and occupant.seq == seq):
            # Duplicate: tell the sender immediately with cumulative state
            # so it can clear its expiration ring (Section 4.4).
            self.duplicates += 1
            self._send_ack(PacketType.DUPLICATE)
            return
        if seq >= self._next_expected + self._capacity():
            return  # no buffer space: drop silently, sender will retransmit
        self._ring[slot] = packet
        self._advance_sr()
        if seq > self._sr:
            # Gap: NAK the possibly-lost packets right away (Section 4.4).
            missing = tuple(
                s
                for s in range(self._sr + 1, seq)
                if self._ring[self._slot(s)] is None
            )
            if missing:
                self.out_of_order_events += 1
                self._send_ack(PacketType.OUT_OF_ORDER, missing=missing)
                self._schedule_consume()
                return
        self._send_ack(PacketType.ACK)
        self._schedule_consume()

    def _advance_sr(self) -> None:
        while True:
            nxt = self._sr + 1
            packet = self._ring[self._slot(nxt)]
            if packet is None or packet.seq != nxt:
                break
            self._sr = nxt

    def _send_ack(
        self, kind: PacketType, missing: Tuple[int, ...] = ()
    ) -> None:
        if self.drop_acks:
            return
        self.endpoint._send(
            self.peer,
            Packet(
                kind=kind,
                stream=self.stream,
                sc=self._next_expected - 1,
                sr=self._sr,
                missing=missing,
            ),
        )

    # ------------------------------------------------------------ consumption
    def _schedule_consume(self) -> None:
        if self._consuming:
            return
        self._consuming = True
        self.endpoint.network.schedule(self._consume_delay, self._consume_one)

    def _consume_one(self) -> None:
        self._consuming = False
        slot = self._slot(self._next_expected)
        packet = self._ring[slot]
        if packet is None or packet.seq != self._next_expected:
            return
        self._ring[slot] = None
        self._next_expected += 1
        if packet.kind == PacketType.EOS:
            self.eos = True
            self.state = ReceiverState.EOS_RECEIVED
            self._send_ack(PacketType.ACK)
            return
        if self._on_payload is not None:
            self._on_payload(packet.payload)
        else:
            self.received.append(packet.payload)
        self._send_ack(PacketType.ACK)
        # keep draining if more contiguous packets are queued
        nxt = self._ring[self._slot(self._next_expected)]
        if nxt is not None and nxt.seq == self._next_expected:
            self._schedule_consume()
