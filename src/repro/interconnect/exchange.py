"""Motion data plane: per-stream tuple exchange over the simulated net.

Each (query, sending slice, sender segment, receiver segment) tuple is
one **stream**. A worker finishing a motion pushes every stream as a
single datagram through :class:`~repro.network.simnet.SimNetwork` to the
receiver's exchange endpoint, where it lands in a per-stream inbox. The
consuming slice's MotionRecv leaf drains its inbox — streams are
concatenated in sender-segment order, so results never depend on
datagram arrival order.

The fabric is shared by every in-flight query: inboxes and stream
records are namespaced by query id, so interleaved dispatch never mixes
two queries' motion data. The runtime turns each query's records into
cross-timeline edges of the event-driven scheduler (sender task →
receiver task), which is how motion data movement shapes the query's
critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.simnet import Datagram, SimNetwork

_EXCHANGE_HOST = "exchange"
_BASE_PORT = 7000


@dataclass
class StreamRecord:
    """One motion stream that crossed the fabric (a scheduler edge)."""

    slice_id: int
    sender: int
    receiver: int
    rows: int
    nbytes: int
    query_id: int = 0


class ExchangeFabric:
    """Name = segment id; payload = a finished motion stream."""

    def __init__(self, net: SimNetwork):
        self._net = net
        self._addresses: Dict[int, Tuple[str, int]] = {}
        #: (query_id, slice_id, receiver) -> sender -> (rows, nbytes)
        self._inbox: Dict[
            Tuple[int, int, int], Dict[int, Tuple[List[tuple], int]]
        ] = {}
        self.records: List[StreamRecord] = []
        #: Optional passive observers (QueryTrace / MetricsRegistry);
        #: they record streams but never charge the clock.
        self.trace = None
        self.metrics = None

    def attach(self, segment_id: int) -> None:
        """Bind a segment's exchange endpoint (QD uses segment id -1).

        Idempotent: a revived worker re-attaches to the same address.
        """
        if segment_id in self._addresses:
            return
        address = (_EXCHANGE_HOST, _BASE_PORT + 1 + segment_id)
        self._net.register(address, self._deliver)
        self._addresses[segment_id] = address

    def send(
        self,
        query_id: int,
        slice_id: int,
        sender: int,
        receiver: int,
        rows: List[tuple],
        nbytes: int,
    ) -> None:
        """Push one complete stream to ``receiver`` as one datagram."""
        self._net.send(
            self._addresses[sender],
            self._addresses[receiver],
            (query_id, slice_id, sender, receiver, rows, nbytes),
            nbytes,
        )

    def _deliver(self, datagram: Datagram) -> None:
        query_id, slice_id, sender, receiver, rows, nbytes = datagram.payload
        self._inbox.setdefault((query_id, slice_id, receiver), {})[sender] = (
            rows,
            nbytes,
        )
        self.records.append(
            StreamRecord(
                slice_id=slice_id,
                sender=sender,
                receiver=receiver,
                rows=len(rows),
                nbytes=nbytes,
                query_id=query_id,
            )
        )
        if self.trace is not None:
            self.trace.stream(
                slice_id, sender, receiver, len(rows), nbytes, query_id=query_id
            )
        if self.metrics is not None:
            self.metrics.counter("motion_streams").inc()
            self.metrics.counter("motion_bytes").inc(nbytes)

    def receive(
        self, query_id: int, slice_id: int, receiver: int
    ) -> Tuple[List[tuple], int]:
        """Drain every stream of one motion addressed to ``receiver``.

        Streams concatenate in sender-segment order — the arrival order
        on the simulated wire never leaks into result rows.
        """
        streams = self._inbox.pop((query_id, slice_id, receiver), {})
        rows: List[tuple] = []
        nbytes = 0
        for sender in sorted(streams):
            sender_rows, sender_bytes = streams[sender]
            rows.extend(sender_rows)
            nbytes += sender_bytes
        return rows, nbytes

    def clear(self, query_id: int) -> None:
        """Drop one query's inbox entries and stream records.

        Called between a query's plan executions (init plans reuse
        slice ids) and on abort — other in-flight queries' streams are
        untouched.
        """
        for key in [k for k in self._inbox if k[0] == query_id]:
            del self._inbox[key]
        self.records = [r for r in self.records if r.query_id != query_id]

    def reset(self) -> None:
        """Clear every inbox and record (fresh-runtime initialization)."""
        self._inbox.clear()
        self.records.clear()
