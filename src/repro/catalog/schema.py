"""Data types, columns, table schemas, distribution and partitioning.

These are the objects the Unified Catalog Service stores and that every
layer above it (storage, planner, executor) consumes.
"""

from __future__ import annotations

import datetime
import enum
import re
import struct
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, SemanticError


class TypeKind(enum.Enum):
    """Supported SQL data types."""

    INT4 = "int4"
    INT8 = "int8"
    FLOAT8 = "float8"
    DECIMAL = "decimal"
    BOOL = "bool"
    CHAR = "char"
    VARCHAR = "varchar"
    TEXT = "text"
    DATE = "date"
    BYTEA = "bytea"


_NUMERIC_KINDS = {TypeKind.INT4, TypeKind.INT8, TypeKind.FLOAT8, TypeKind.DECIMAL}
_STRING_KINDS = {TypeKind.CHAR, TypeKind.VARCHAR, TypeKind.TEXT}

_TYPE_ALIASES = {
    "int": TypeKind.INT4,
    "integer": TypeKind.INT4,
    "int4": TypeKind.INT4,
    "smallint": TypeKind.INT4,
    "int8": TypeKind.INT8,
    "bigint": TypeKind.INT8,
    "serial": TypeKind.INT4,
    "float": TypeKind.FLOAT8,
    "float8": TypeKind.FLOAT8,
    "double": TypeKind.FLOAT8,
    "real": TypeKind.FLOAT8,
    "decimal": TypeKind.DECIMAL,
    "numeric": TypeKind.DECIMAL,
    "bool": TypeKind.BOOL,
    "boolean": TypeKind.BOOL,
    "char": TypeKind.CHAR,
    "character": TypeKind.CHAR,
    "varchar": TypeKind.VARCHAR,
    "text": TypeKind.TEXT,
    "date": TypeKind.DATE,
    "bytea": TypeKind.BYTEA,
}

_EPOCH = datetime.date(1970, 1, 1)


@dataclass(frozen=True)
class DataType:
    """A SQL type, possibly parameterized (CHAR(n), DECIMAL(p,s))."""

    kind: TypeKind
    length: Optional[int] = None  # CHAR/VARCHAR width, DECIMAL precision
    scale: Optional[int] = None  # DECIMAL scale

    # ------------------------------------------------------------- factories
    @classmethod
    def parse(cls, text: str) -> "DataType":
        """Parse a SQL type name like ``DECIMAL(15,2)`` or ``VARCHAR(79)``."""
        match = re.fullmatch(
            r"\s*([a-zA-Z][a-zA-Z0-9 ]*?)\s*(?:\(\s*(\d+)\s*(?:,\s*(\d+)\s*)?\))?\s*",
            text,
        )
        if match is None:
            raise CatalogError(f"unparseable type: {text!r}")
        name = " ".join(match.group(1).lower().split())
        if name == "double precision":
            name = "double"
        kind = _TYPE_ALIASES.get(name)
        if kind is None:
            raise CatalogError(f"unknown type: {text!r}")
        length = int(match.group(2)) if match.group(2) else None
        scale = int(match.group(3)) if match.group(3) else None
        return cls(kind, length, scale)

    # ------------------------------------------------------------ properties
    @property
    def is_numeric(self) -> bool:
        return self.kind in _NUMERIC_KINDS

    @property
    def is_string(self) -> bool:
        return self.kind in _STRING_KINDS

    def __str__(self) -> str:
        if self.kind is TypeKind.DECIMAL and self.length is not None:
            return f"decimal({self.length},{self.scale or 0})"
        if self.kind in (TypeKind.CHAR, TypeKind.VARCHAR) and self.length:
            return f"{self.kind.value}({self.length})"
        return self.kind.value

    # --------------------------------------------------------------- values
    def coerce(self, value: object) -> object:
        """Validate/convert a Python value into this type's canonical form."""
        if value is None:
            return None
        kind = self.kind
        if kind in (TypeKind.INT4, TypeKind.INT8):
            return int(value)
        if kind in (TypeKind.FLOAT8, TypeKind.DECIMAL):
            val = float(value)
            if kind is TypeKind.DECIMAL and self.scale is not None:
                return round(val, self.scale)
            return val
        if kind is TypeKind.BOOL:
            return bool(value)
        if kind in _STRING_KINDS:
            text = str(value)
            if kind is TypeKind.CHAR and self.length is not None:
                return text[: self.length]
            if kind is TypeKind.VARCHAR and self.length is not None:
                return text[: self.length]
            return text
        if kind is TypeKind.DATE:
            if isinstance(value, datetime.date):
                return value
            return datetime.date.fromisoformat(str(value))
        if kind is TypeKind.BYTEA:
            return bytes(value) if not isinstance(value, bytes) else value
        raise CatalogError(f"cannot coerce into {self}")

    # ------------------------------------------------------------- encoding
    def encode(self, value: object, out: bytearray) -> None:
        """Append the binary encoding of a non-null value to ``out``."""
        kind = self.kind
        if kind in (TypeKind.INT4, TypeKind.INT8):
            out += struct.pack("<q", value)
        elif kind in (TypeKind.FLOAT8, TypeKind.DECIMAL):
            out += struct.pack("<d", value)
        elif kind is TypeKind.BOOL:
            out += b"\x01" if value else b"\x00"
        elif kind is TypeKind.DATE:
            out += struct.pack("<i", (value - _EPOCH).days)
        elif kind in _STRING_KINDS:
            raw = value.encode("utf-8")
            out += struct.pack("<I", len(raw))
            out += raw
        elif kind is TypeKind.BYTEA:
            out += struct.pack("<I", len(value))
            out += value
        else:  # pragma: no cover - exhaustive over TypeKind
            raise CatalogError(f"cannot encode {self}")

    def decode(self, buf: bytes, offset: int) -> Tuple[object, int]:
        """Decode one value from ``buf`` at ``offset``; returns (value, new offset)."""
        kind = self.kind
        if kind in (TypeKind.INT4, TypeKind.INT8):
            return struct.unpack_from("<q", buf, offset)[0], offset + 8
        if kind in (TypeKind.FLOAT8, TypeKind.DECIMAL):
            return struct.unpack_from("<d", buf, offset)[0], offset + 8
        if kind is TypeKind.BOOL:
            return buf[offset] == 1, offset + 1
        if kind is TypeKind.DATE:
            days = struct.unpack_from("<i", buf, offset)[0]
            return _EPOCH + datetime.timedelta(days=days), offset + 4
        if kind in _STRING_KINDS:
            (length,) = struct.unpack_from("<I", buf, offset)
            start = offset + 4
            return buf[start : start + length].decode("utf-8"), start + length
        if kind is TypeKind.BYTEA:
            (length,) = struct.unpack_from("<I", buf, offset)
            start = offset + 4
            return bytes(buf[start : start + length]), start + length
        raise CatalogError(f"cannot decode {self}")  # pragma: no cover


@dataclass(frozen=True)
class Column:
    """One table column."""

    name: str
    type: DataType
    not_null: bool = False


class DistributionKind(enum.Enum):
    HASH = "hash"
    RANDOM = "random"


@dataclass(frozen=True)
class Distribution:
    """How a table's rows are assigned to segments (paper Section 2.3)."""

    kind: DistributionKind
    columns: Tuple[str, ...] = ()

    @classmethod
    def hash(cls, *columns: str) -> "Distribution":
        if not columns:
            raise CatalogError("hash distribution needs at least one column")
        return cls(DistributionKind.HASH, tuple(c.lower() for c in columns))

    @classmethod
    def random(cls) -> "Distribution":
        return cls(DistributionKind.RANDOM)

    @property
    def is_hash(self) -> bool:
        return self.kind is DistributionKind.HASH


@dataclass(frozen=True)
class Partition:
    """One child partition of a partitioned table."""

    name: str
    #: Range partition: [lower, upper). List partition: tuple of values.
    lower: Optional[object] = None
    upper: Optional[object] = None
    in_values: Optional[Tuple[object, ...]] = None

    def contains(self, value: object) -> bool:
        if self.in_values is not None:
            return value in self.in_values
        if value is None:
            return False
        if self.lower is not None and value < self.lower:
            return False
        if self.upper is not None and value >= self.upper:
            return False
        return True

    def may_satisfy(self, op: str, literal: object) -> bool:
        """Conservative partition-elimination test for ``col <op> literal``."""
        if self.in_values is not None:
            ops = {
                "=": lambda v: v == literal,
                "<": lambda v: v < literal,
                "<=": lambda v: v <= literal,
                ">": lambda v: v > literal,
                ">=": lambda v: v >= literal,
                "<>": lambda v: v != literal,
            }
            test = ops.get(op)
            if test is None:
                return True
            return any(test(v) for v in self.in_values)
        lower, upper = self.lower, self.upper
        if op == "=":
            return self.contains(literal)
        if op in ("<", "<="):
            return lower is None or lower < literal or (op == "<=" and lower <= literal)
        if op in (">", ">="):
            return upper is None or upper > literal
        return True


@dataclass(frozen=True)
class PartitionSpec:
    """PARTITION BY clause: the column plus the expanded child partitions."""

    column: str
    kind: str  # "range" | "list"
    partitions: Tuple[Partition, ...]

    def route(self, value: object) -> Optional[Partition]:
        """Find the partition holding ``value`` (None if out of range)."""
        for part in self.partitions:
            if part.contains(value):
                return part
        return None


@dataclass
class TableSchema:
    """Schema of one table: columns plus physical layout choices."""

    name: str
    columns: List[Column]
    distribution: Distribution = field(default_factory=Distribution.random)
    partition_spec: Optional[PartitionSpec] = None
    #: Storage format: "ao" (row append-only), "co" (column), "parquet".
    storage_format: str = "ao"
    compression: str = "none"

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        seen = set()
        for col in self.columns:
            if col.name.lower() in seen:
                raise CatalogError(f"duplicate column {col.name} in {self.name}")
            seen.add(col.name.lower())
        for col_name in self.distribution.columns:
            self.column_index(col_name)

    # --------------------------------------------------------------- lookups
    def column_index(self, name: str) -> int:
        target = name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == target:
                return i
        raise SemanticError(f"column {name!r} not in table {self.name!r}")

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    # ---------------------------------------------------------- row encoding
    def coerce_row(self, row: Sequence[object]) -> Tuple[object, ...]:
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row arity {len(row)} != {len(self.columns)} for {self.name}"
            )
        out = []
        for col, value in zip(self.columns, row):
            if value is None and col.not_null:
                raise CatalogError(f"null in NOT NULL column {col.name}")
            out.append(col.type.coerce(value))
        return tuple(out)

    def encode_row(self, row: Sequence[object], out: bytearray) -> None:
        """Append row encoding: null bitmap then non-null column values."""
        ncols = len(self.columns)
        bitmap = bytearray((ncols + 7) // 8)
        for i, value in enumerate(row):
            if value is None:
                bitmap[i // 8] |= 1 << (i % 8)
        out += bytes(bitmap)
        for col, value in zip(self.columns, row):
            if value is not None:
                col.type.encode(value, out)

    def decode_row(self, buf: bytes, offset: int) -> Tuple[Tuple[object, ...], int]:
        ncols = len(self.columns)
        bitmap_len = (ncols + 7) // 8
        bitmap = buf[offset : offset + bitmap_len]
        offset += bitmap_len
        values: List[object] = []
        for i, col in enumerate(self.columns):
            if bitmap[i // 8] & (1 << (i % 8)):
                values.append(None)
            else:
                value, offset = col.type.decode(buf, offset)
                values.append(value)
        return tuple(values), offset

    # --------------------------------------------------------------- hashing
    def hash_row(self, row: Sequence[object], num_segments: int) -> int:
        """Route a row to a segment under this table's distribution."""
        if not self.distribution.is_hash:
            raise CatalogError(f"table {self.name} is randomly distributed")
        key = tuple(row[self.column_index(c)] for c in self.distribution.columns)
        return hash_values(key, num_segments)

    def child_schema(self, partition: Partition) -> "TableSchema":
        """Schema for one child partition (same columns/distribution)."""
        return TableSchema(
            name=f"{self.name}_1_prt_{partition.name}",
            columns=list(self.columns),
            distribution=self.distribution,
            partition_spec=None,
            storage_format=self.storage_format,
            compression=self.compression,
        )


def hash_values(values: Iterable[object], num_segments: int) -> int:
    """Deterministic hash of a distribution key onto a segment id.

    Python's builtin ``hash`` is randomized per process for strings, so a
    stable FNV-1a over the repr is used instead.
    """
    acc = 0xCBF29CE484222325
    for value in values:
        if isinstance(value, datetime.date):
            data = value.isoformat().encode()
        else:
            data = repr(value).encode()
        for byte in data:
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc % num_segments
