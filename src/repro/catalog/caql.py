"""CaQL: the catalog query language (paper Section 2.2).

All internal catalog access in HAWQ goes through CaQL, a deliberately
tiny subset of SQL that replaces hand-coded C primitive lookups. Per the
paper, CaQL supports exactly:

* basic single-table ``SELECT`` (equality predicates, ``ORDER BY``),
* ``SELECT COUNT(*)``,
* multi-row ``DELETE``,
* single-row ``INSERT`` and ``UPDATE``.

No joins, no planning — most catalog operations are OLTP-style lookups
on fixed indexes, so anything richer would be wasted machinery.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CaqlSyntaxError
from repro.txn.mvcc import Snapshot

_IDENT = r"[a-zA-Z_][a-zA-Z0-9_]*"


@dataclass
class CaqlStatement:
    """A parsed CaQL statement."""

    op: str  # select | count | delete | insert | update
    table: str
    where: List[Tuple[str, str]] = field(default_factory=list)  # (col, valspec)
    order_by: Optional[str] = None
    columns: List[str] = field(default_factory=list)  # insert column list
    values: List[str] = field(default_factory=list)  # insert value specs
    sets: List[Tuple[str, str]] = field(default_factory=list)  # update SET


@dataclass
class CaqlResult:
    """Result of executing a CaQL statement."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    count: int = 0


def parse_caql(text: str) -> CaqlStatement:
    """Parse one CaQL statement; raises :class:`CaqlSyntaxError` otherwise."""
    stripped = text.strip().rstrip(";").strip()
    for parser in (_parse_select, _parse_delete, _parse_insert, _parse_update):
        stmt = parser(stripped)
        if stmt is not None:
            return stmt
    raise CaqlSyntaxError(f"not a CaQL statement: {text!r}")


def execute_caql(
    service,
    text: str,
    params: Sequence[object] = (),
    *,
    snapshot: Snapshot,
    xid: int,
) -> CaqlResult:
    """Parse and run a CaQL statement against a CatalogService."""
    stmt = parse_caql(text)
    table = service.table(stmt.table)
    predicate = _predicate(stmt.where, params)
    if stmt.op == "select":
        rows = table.scan(snapshot, predicate)
        if stmt.order_by is not None:
            key = stmt.order_by
            rows.sort(key=lambda r: (r.get(key) is None, r.get(key)))
        return CaqlResult(rows=rows, count=len(rows))
    if stmt.op == "count":
        count = table.count(snapshot, predicate)
        return CaqlResult(count=count)
    if stmt.op == "delete":
        if not stmt.where:
            raise CaqlSyntaxError("CaQL DELETE requires a WHERE clause")
        count = table.delete(snapshot, predicate, xid)
        return CaqlResult(count=count)
    if stmt.op == "insert":
        row = {
            col: _resolve(spec, params) for col, spec in zip(stmt.columns, stmt.values)
        }
        table.insert(row, xid)
        return CaqlResult(count=1)
    if stmt.op == "update":
        if not stmt.where:
            raise CaqlSyntaxError("CaQL UPDATE requires a WHERE clause")
        changes = {col: _resolve(spec, params) for col, spec in stmt.sets}
        matched = table.scan(snapshot, predicate)
        if len(matched) > 1:
            raise CaqlSyntaxError(
                f"CaQL UPDATE matched {len(matched)} rows; only single-row "
                "updates are supported"
            )
        count = table.update(snapshot, predicate, changes, xid)
        return CaqlResult(count=count)
    raise CaqlSyntaxError(f"unsupported CaQL op {stmt.op!r}")  # pragma: no cover


# --------------------------------------------------------------------- parse
def _parse_select(text: str) -> Optional[CaqlStatement]:
    match = re.fullmatch(
        rf"SELECT\s+(?P<what>\*|COUNT\(\*\))\s+FROM\s+(?P<table>{_IDENT})"
        rf"(?:\s+WHERE\s+(?P<where>.+?))?"
        rf"(?:\s+ORDER\s+BY\s+(?P<order>{_IDENT}))?",
        text,
        re.IGNORECASE | re.DOTALL,
    )
    if match is None:
        return None
    op = "count" if match.group("what").upper().startswith("COUNT") else "select"
    return CaqlStatement(
        op=op,
        table=match.group("table").lower(),
        where=_parse_where(match.group("where")),
        order_by=(match.group("order") or None),
    )


def _parse_delete(text: str) -> Optional[CaqlStatement]:
    match = re.fullmatch(
        rf"DELETE\s+FROM\s+(?P<table>{_IDENT})(?:\s+WHERE\s+(?P<where>.+))?",
        text,
        re.IGNORECASE | re.DOTALL,
    )
    if match is None:
        return None
    return CaqlStatement(
        op="delete",
        table=match.group("table").lower(),
        where=_parse_where(match.group("where")),
    )


def _parse_insert(text: str) -> Optional[CaqlStatement]:
    match = re.fullmatch(
        rf"INSERT\s+INTO\s+(?P<table>{_IDENT})\s*\((?P<cols>[^)]+)\)\s*"
        rf"VALUES\s*\((?P<vals>.+)\)",
        text,
        re.IGNORECASE | re.DOTALL,
    )
    if match is None:
        return None
    columns = [c.strip().lower() for c in match.group("cols").split(",")]
    values = _split_commas(match.group("vals"))
    if len(columns) != len(values):
        raise CaqlSyntaxError("INSERT column/value count mismatch")
    return CaqlStatement(
        op="insert",
        table=match.group("table").lower(),
        columns=columns,
        values=values,
    )


def _parse_update(text: str) -> Optional[CaqlStatement]:
    match = re.fullmatch(
        rf"UPDATE\s+(?P<table>{_IDENT})\s+SET\s+(?P<sets>.+?)"
        rf"(?:\s+WHERE\s+(?P<where>.+))?",
        text,
        re.IGNORECASE | re.DOTALL,
    )
    if match is None:
        return None
    sets = []
    for part in _split_commas(match.group("sets")):
        eq = re.fullmatch(rf"({_IDENT})\s*=\s*(.+)", part.strip(), re.DOTALL)
        if eq is None:
            raise CaqlSyntaxError(f"bad SET clause: {part!r}")
        sets.append((eq.group(1).lower(), eq.group(2).strip()))
    return CaqlStatement(
        op="update",
        table=match.group("table").lower(),
        sets=sets,
        where=_parse_where(match.group("where")),
    )


def _parse_where(text: Optional[str]) -> List[Tuple[str, str]]:
    if not text:
        return []
    conditions = []
    for part in re.split(r"\s+AND\s+", text.strip(), flags=re.IGNORECASE):
        match = re.fullmatch(rf"({_IDENT})\s*=\s*(.+)", part.strip(), re.DOTALL)
        if match is None:
            raise CaqlSyntaxError(
                f"CaQL supports only `col = value` conjunctions, got {part!r}"
            )
        conditions.append((match.group(1).lower(), match.group(2).strip()))
    return conditions


def _split_commas(text: str) -> List[str]:
    """Split on commas not inside single quotes."""
    parts, depth_quote, current = [], False, []
    for char in text:
        if char == "'":
            depth_quote = not depth_quote
            current.append(char)
        elif char == "," and not depth_quote:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current).strip())
    return parts


# ------------------------------------------------------------------- execute
def _resolve(spec: str, params: Sequence[object]) -> object:
    """Turn a value spec ($n, 'string', number, true/false, null) into a value."""
    spec = spec.strip()
    if spec.startswith("$"):
        index = int(spec[1:]) - 1
        if index < 0 or index >= len(params):
            raise CaqlSyntaxError(f"missing parameter {spec}")
        return params[index]
    if spec.startswith("'") and spec.endswith("'"):
        return spec[1:-1]
    lowered = spec.lower()
    if lowered == "null":
        return None
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(spec)
    except ValueError:
        pass
    try:
        return float(spec)
    except ValueError:
        raise CaqlSyntaxError(f"unintelligible value: {spec!r}")


def _predicate(
    where: List[Tuple[str, str]], params: Sequence[object]
) -> Optional[Callable[[Dict], bool]]:
    if not where:
        return None
    resolved = [(col, _resolve(spec, params)) for col, spec in where]

    def predicate(row: Dict) -> bool:
        return all(row.get(col) == value for col, value in resolved)

    return predicate
