"""The Unified Catalog Service (UCS, paper Section 2.2).

The catalog is the brain of the system: database objects, segment
configuration, statistics and the per-table segment-file registry that
transaction visibility of user data depends on (Section 5.4).

Catalog rows are MVCC-versioned: every version carries ``xmin``/``xmax``
stamps and scans are filtered through a :class:`~repro.txn.Snapshot`.
All mutation goes through :class:`CatalogTable`'s insert/update/delete so
that WAL hooks and the standby's log shipping see every change.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.catalog.schema import TableSchema
from repro.catalog.stats import TableStats
from repro.errors import CatalogError, DuplicateObject, UndefinedObject
from repro.txn.mvcc import Snapshot


@dataclass
class VersionedRow:
    """One MVCC version of a catalog row."""

    data: Dict[str, object]
    xmin: int
    xmax: Optional[int] = None


class CatalogTable:
    """A versioned heap of dict-rows with simple predicate scans."""

    def __init__(self, name: str, on_change: Optional[Callable] = None):
        self.name = name
        self._rows: List[VersionedRow] = []
        self._on_change = on_change

    def _log(self, op: str, data: Dict[str, object], xid: int) -> None:
        if self._on_change is not None:
            self._on_change(self.name, op, copy.deepcopy(data), xid)

    # ----------------------------------------------------------------- scans
    def scan(
        self, snapshot: Snapshot, predicate: Optional[Callable[[Dict], bool]] = None
    ) -> List[Dict[str, object]]:
        """All visible rows (copies) matching the predicate."""
        out = []
        for version in self._rows:
            if not snapshot.row_visible(version.xmin, version.xmax):
                continue
            if predicate is None or predicate(version.data):
                out.append(copy.deepcopy(version.data))
        return out

    def count(
        self, snapshot: Snapshot, predicate: Optional[Callable[[Dict], bool]] = None
    ) -> int:
        return len(self.scan(snapshot, predicate))

    # ------------------------------------------------------------- mutations
    def insert(self, data: Dict[str, object], xid: int) -> None:
        self._rows.append(VersionedRow(data=copy.deepcopy(data), xmin=xid))
        self._log("insert", data, xid)

    def delete(
        self, snapshot: Snapshot, predicate: Callable[[Dict], bool], xid: int
    ) -> int:
        """Mark matching visible versions deleted; returns rows deleted."""
        deleted = 0
        for version in self._rows:
            if not snapshot.row_visible(version.xmin, version.xmax):
                continue
            if predicate(version.data):
                version.xmax = xid
                deleted += 1
                self._log("delete", version.data, xid)
        return deleted

    def update(
        self,
        snapshot: Snapshot,
        predicate: Callable[[Dict], bool],
        changes: Dict[str, object],
        xid: int,
    ) -> int:
        """MVCC update: old version gets xmax, a new version is inserted."""
        updated = 0
        new_rows = []
        for version in self._rows:
            if not snapshot.row_visible(version.xmin, version.xmax):
                continue
            if predicate(version.data):
                version.xmax = xid
                data = {**copy.deepcopy(version.data), **changes}
                new_rows.append(VersionedRow(data=data, xmin=xid))
                updated += 1
                # Log as delete+insert so a standby can replay exactly.
                self._log("delete", version.data, xid)
                self._log("insert", data, xid)
        self._rows.extend(new_rows)
        return updated

    def vacuum(self, horizon_snapshot: Snapshot) -> int:
        """Drop versions invisible to everyone at/after the horizon."""
        before = len(self._rows)
        self._rows = [
            v
            for v in self._rows
            if v.xmax is None or not horizon_snapshot.sees_xid(v.xmax)
        ]
        return before - len(self._rows)


#: Names of the built-in catalog tables (subset of HAWQ's, same roles).
SYSTEM_TABLES = (
    "pg_class",  # tables, views, external tables
    "gp_segment_configuration",  # segments and their status
    "gp_segfile",  # per-table per-segment data files + logical lengths
    "pg_statistic",  # ANALYZE output
    "pg_depend",  # object dependencies (views on tables)
)


class CatalogService:
    """The unified catalog service living on the master."""

    def __init__(self, on_change: Optional[Callable] = None):
        """``on_change(table, op, row, xid)`` is the WAL/log-shipping hook."""
        self._on_change = on_change
        self.tables: Dict[str, CatalogTable] = {
            name: CatalogTable(name, on_change) for name in SYSTEM_TABLES
        }

    def table(self, name: str) -> CatalogTable:
        tbl = self.tables.get(name)
        if tbl is None:
            raise UndefinedObject(f"no catalog table {name!r}")
        return tbl

    # --------------------------------------------------------- object access
    def create_table(
        self,
        schema: TableSchema,
        xid: int,
        snapshot: Snapshot,
        kind: str = "table",
        view_def: Optional[object] = None,
        pxf: Optional[Dict[str, object]] = None,
        children: Optional[List] = None,
        owner: str = "gpadmin",
    ) -> None:
        """``children``: [(child_table_name, Partition)] for partitioned
        parents (the inheritance relationship from paper Section 2.3)."""
        if self.lookup_relation(schema.name, snapshot) is not None:
            raise DuplicateObject(f"relation {schema.name!r} already exists")
        self.table("pg_class").insert(
            {
                "name": schema.name,
                "kind": kind,
                "schema": schema,
                "view_def": view_def,
                "pxf": pxf,
                "children": children or [],
                "owner": owner,
            },
            xid,
        )

    def drop_table(self, name: str, xid: int, snapshot: Snapshot) -> None:
        name = name.lower()
        if self.lookup_relation(name, snapshot) is None:
            raise UndefinedObject(f"relation {name!r} does not exist")
        self.table("pg_class").delete(snapshot, lambda r: r["name"] == name, xid)
        self.table("gp_segfile").delete(snapshot, lambda r: r["table"] == name, xid)
        self.table("pg_statistic").delete(snapshot, lambda r: r["table"] == name, xid)
        # A dropped object's own dependencies disappear with it.
        self.table("pg_depend").delete(snapshot, lambda r: r["dependent"] == name, xid)

    def lookup_relation(
        self, name: str, snapshot: Snapshot
    ) -> Optional[Dict[str, object]]:
        name = name.lower()
        rows = self.table("pg_class").scan(snapshot, lambda r: r["name"] == name)
        return rows[0] if rows else None

    def get_schema(self, name: str, snapshot: Snapshot) -> TableSchema:
        rel = self.lookup_relation(name, snapshot)
        if rel is None:
            raise UndefinedObject(f"relation {name!r} does not exist")
        return rel["schema"]

    def relations(self, snapshot: Snapshot) -> List[Dict[str, object]]:
        return self.table("pg_class").scan(snapshot)

    # ------------------------------------------------------------- segments
    def register_segment(self, segment_id: int, host: str, xid: int) -> None:
        self.table("gp_segment_configuration").insert(
            {"segment_id": segment_id, "host": host, "status": "up"}, xid
        )

    def set_segment_status(
        self, segment_id: int, status: str, xid: int, snapshot: Snapshot
    ) -> None:
        self.table("gp_segment_configuration").update(
            snapshot,
            lambda r: r["segment_id"] == segment_id,
            {"status": status},
            xid,
        )

    def segments(
        self, snapshot: Snapshot, status: Optional[str] = None
    ) -> List[Dict[str, object]]:
        return self.table("gp_segment_configuration").scan(
            snapshot,
            (lambda r: r["status"] == status) if status is not None else None,
        )

    # ------------------------------------------------------ segfile registry
    def register_segfile(
        self,
        table_name: str,
        segment_id: int,
        segfile_id: int,
        paths: Dict[str, int],
        xid: int,
        uncompressed_length: int = 0,
        tupcount: int = 0,
    ) -> None:
        """Record one data file (lane) of a table on one segment.

        ``paths`` maps each physical HDFS file of the lane (one for
        AO/Parquet, one per column for CO) to its **logical length** —
        the transaction-visible prefix. The physical file may be longer
        after an aborted append (Section 5.4) until truncate reclaims it.
        """
        self.table("gp_segfile").insert(
            {
                "table": table_name.lower(),
                "segment_id": segment_id,
                "segfile_id": segfile_id,
                "paths": dict(paths),
                "uncompressed_length": uncompressed_length,
                "tupcount": tupcount,
            },
            xid,
        )

    def update_segfile(
        self,
        snapshot: Snapshot,
        table_name: str,
        segment_id: int,
        segfile_id: int,
        changes: Dict[str, object],
        xid: int,
    ) -> int:
        table_name = table_name.lower()
        return self.table("gp_segfile").update(
            snapshot,
            lambda r: r["table"] == table_name
            and r["segment_id"] == segment_id
            and r["segfile_id"] == segfile_id,
            changes,
            xid,
        )

    def segfiles(
        self,
        table_name: str,
        snapshot: Snapshot,
        segment_id: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        table_name = table_name.lower()

        def predicate(r: Dict) -> bool:
            if r["table"] != table_name:
                return False
            return segment_id is None or r["segment_id"] == segment_id

        return self.table("gp_segfile").scan(snapshot, predicate)

    # ------------------------------------------------------------ statistics
    def set_stats(
        self, table_name: str, stats: TableStats, xid: int, snapshot: Snapshot
    ) -> None:
        table_name = table_name.lower()
        self.table("pg_statistic").delete(
            snapshot, lambda r: r["table"] == table_name, xid
        )
        self.table("pg_statistic").insert(
            {"table": table_name, "stats": stats}, xid
        )

    def get_stats(self, table_name: str, snapshot: Snapshot) -> Optional[TableStats]:
        table_name = table_name.lower()
        rows = self.table("pg_statistic").scan(
            snapshot, lambda r: r["table"] == table_name
        )
        return rows[0]["stats"] if rows else None

    # ----------------------------------------------------------- dependencies
    def add_dependency(self, dependent: str, referenced: str, xid: int) -> None:
        self.table("pg_depend").insert(
            {"dependent": dependent.lower(), "referenced": referenced.lower()}, xid
        )

    def dependents_of(self, name: str, snapshot: Snapshot) -> List[str]:
        name = name.lower()
        rows = self.table("pg_depend").scan(
            snapshot, lambda r: r["referenced"] == name
        )
        return [r["dependent"] for r in rows]


# ---------------------------------------------------------- SQL-on-catalog
#: Flattened, scalar-typed projections of the system tables, so external
#: applications can query the catalog with standard SQL (paper 2.2:
#: "External applications can query the catalog using standard SQL").
CATALOG_RELATION_COLUMNS: Dict[str, List[str]] = {
    "pg_class": ["name", "kind", "owner", "storage_format", "compression"],
    "gp_segment_configuration": ["segment_id", "host", "status"],
    "gp_segfile": [
        "table", "segment_id", "segfile_id", "tupcount", "logical_length",
    ],
    "pg_statistic": ["table", "row_count", "total_bytes"],
    "pg_depend": ["dependent", "referenced"],
}


def catalog_relation_schema(name: str) -> TableSchema:
    """A TableSchema describing the SQL view of one system table."""
    from repro.catalog.schema import Column, DataType, Distribution

    types = {
        "segment_id": "int", "segfile_id": "int", "tupcount": "int8",
        "logical_length": "int8", "row_count": "float8",
        "total_bytes": "float8",
    }
    columns = [
        Column(col, DataType.parse(types.get(col, "text")))
        for col in CATALOG_RELATION_COLUMNS[name]
    ]
    return TableSchema(
        name=name, columns=columns, distribution=Distribution.random()
    )


def catalog_relation_rows(
    service: "CatalogService", name: str, snapshot: Snapshot
) -> List[tuple]:
    """Visible rows of one system table, flattened to scalars."""
    raw = service.table(name).scan(snapshot)
    out: List[tuple] = []
    for row in raw:
        if name == "pg_class":
            schema = row.get("schema")
            out.append(
                (
                    row.get("name"),
                    row.get("kind"),
                    row.get("owner"),
                    schema.storage_format if schema is not None else None,
                    schema.compression if schema is not None else None,
                )
            )
        elif name == "gp_segment_configuration":
            out.append((row["segment_id"], row["host"], row["status"]))
        elif name == "gp_segfile":
            out.append(
                (
                    row["table"],
                    row["segment_id"],
                    row["segfile_id"],
                    row["tupcount"],
                    sum(row["paths"].values()),
                )
            )
        elif name == "pg_statistic":
            stats = row["stats"]
            out.append((row["table"], stats.row_count, stats.total_bytes))
        elif name == "pg_depend":
            out.append((row["dependent"], row["referenced"]))
    return out
