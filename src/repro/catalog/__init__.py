"""Catalog: types, schemas, the Unified Catalog Service, and CaQL."""

from repro.catalog.schema import (
    Column,
    DataType,
    Distribution,
    PartitionSpec,
    TableSchema,
    TypeKind,
)
from repro.catalog.caql import CaqlResult, execute_caql, parse_caql
from repro.catalog.service import CatalogService, CatalogTable
from repro.catalog.stats import ColumnStats, TableStats

__all__ = [
    "CaqlResult",
    "CatalogService",
    "CatalogTable",
    "Column",
    "ColumnStats",
    "DataType",
    "Distribution",
    "PartitionSpec",
    "TableSchema",
    "TableStats",
    "TypeKind",
    "execute_caql",
    "parse_caql",
]
