"""Security catalog: roles, privileges, and resource queues.

Paper Section 2.2 lists both among the catalog's categories: "Security:
Users, roles and privileges" and "resource queues" under database
objects. Roles own sessions, privileges gate SELECT/INSERT/DDL per
relation, and resource queues bound how many concurrent queries (and
how much simulated memory) a role's queries may use — the admission
control MPP databases ship for multi-tenant clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import CatalogError, ReproError


class PermissionDenied(ReproError):
    """The current role lacks a privilege on the target object."""


class QueueLimitExceeded(ReproError):
    """A resource queue's active-statement limit was hit (no waiting)."""


#: Privileges understood by GRANT/REVOKE.
PRIVILEGES = ("select", "insert", "all")


@dataclass
class Role:
    """One login role."""

    name: str
    superuser: bool = False
    resource_queue: Optional[str] = None


@dataclass
class ResourceQueue:
    """Admission-control queue (active statement + memory bounds)."""

    name: str
    active_statements: int = 20
    memory_limit: float = 8e9  # simulated bytes per queue
    #: Admission priority under concurrency: higher drains first when
    #: slots free up (ties broken by arrival order).
    priority: int = 0
    #: Currently running statements (runtime state, not catalog data).
    running: int = 0

    def admit(self) -> None:
        if self.running >= self.active_statements:
            raise QueueLimitExceeded(
                f"resource queue {self.name!r} is at its limit of "
                f"{self.active_statements} active statements"
            )
        self.running += 1

    def release(self) -> None:
        if self.running > 0:
            self.running -= 1


class SecurityManager:
    """Roles, grants, and resource queues for one engine."""

    def __init__(self) -> None:
        self.roles: Dict[str, Role] = {}
        self.queues: Dict[str, ResourceQueue] = {}
        # (role, relation) -> set of privileges
        self._grants: Dict[tuple, Set[str]] = {}
        self.create_queue("pg_default", active_statements=20)
        self.create_role("gpadmin", superuser=True)

    # ----------------------------------------------------------------- roles
    def create_role(
        self,
        name: str,
        superuser: bool = False,
        resource_queue: Optional[str] = None,
    ) -> Role:
        name = name.lower()
        if name in self.roles:
            raise CatalogError(f"role {name!r} already exists")
        queue = (resource_queue or "pg_default").lower()
        if queue not in self.queues:
            raise CatalogError(f"resource queue {queue!r} does not exist")
        role = Role(name=name, superuser=superuser, resource_queue=queue)
        self.roles[name] = role
        return role

    def drop_role(self, name: str) -> None:
        name = name.lower()
        if name not in self.roles:
            raise CatalogError(f"role {name!r} does not exist")
        if self.roles[name].superuser:
            raise CatalogError("cannot drop a superuser role")
        del self.roles[name]
        self._grants = {
            key: privs for key, privs in self._grants.items() if key[0] != name
        }

    def role(self, name: str) -> Role:
        role = self.roles.get(name.lower())
        if role is None:
            raise CatalogError(f"role {name!r} does not exist")
        return role

    def set_role_queue(self, role_name: str, queue_name: str) -> None:
        role = self.role(role_name)
        queue_name = queue_name.lower()
        if queue_name not in self.queues:
            raise CatalogError(f"resource queue {queue_name!r} does not exist")
        role.resource_queue = queue_name

    # ---------------------------------------------------------------- grants
    def grant(self, privilege: str, relation: str, role_name: str) -> None:
        privilege = privilege.lower()
        if privilege not in PRIVILEGES:
            raise CatalogError(f"unknown privilege {privilege!r}")
        self.role(role_name)  # must exist
        key = (role_name.lower(), relation.lower())
        self._grants.setdefault(key, set()).add(privilege)

    def revoke(self, privilege: str, relation: str, role_name: str) -> None:
        key = (role_name.lower(), relation.lower())
        privs = self._grants.get(key)
        if privs is not None:
            privs.discard(privilege.lower())
            if privilege.lower() == "all":
                privs.clear()

    def check(self, role_name: str, privilege: str, relation: str) -> None:
        """Raise :class:`PermissionDenied` unless allowed."""
        role = self.role(role_name)
        if role.superuser:
            return
        privs = self._grants.get((role.name, relation.lower()), set())
        if privilege.lower() in privs or "all" in privs:
            return
        raise PermissionDenied(
            f"role {role.name!r} lacks {privilege.upper()} on {relation!r}"
        )

    def privileges_of(self, role_name: str, relation: str) -> Set[str]:
        return set(self._grants.get((role_name.lower(), relation.lower()), set()))

    # ---------------------------------------------------------------- queues
    def create_queue(
        self,
        name: str,
        active_statements: int = 20,
        memory_limit: float = 8e9,
        priority: int = 0,
    ) -> ResourceQueue:
        name = name.lower()
        if name in self.queues:
            raise CatalogError(f"resource queue {name!r} already exists")
        queue = ResourceQueue(
            name=name,
            active_statements=active_statements,
            memory_limit=memory_limit,
            priority=priority,
        )
        self.queues[name] = queue
        return queue

    def drop_queue(self, name: str) -> None:
        name = name.lower()
        if name == "pg_default":
            raise CatalogError("cannot drop the default resource queue")
        if name not in self.queues:
            raise CatalogError(f"resource queue {name!r} does not exist")
        if any(r.resource_queue == name for r in self.roles.values()):
            raise CatalogError(f"resource queue {name!r} is in use by roles")
        del self.queues[name]

    def queue_for(self, role_name: str) -> ResourceQueue:
        role = self.role(role_name)
        return self.queues[role.resource_queue or "pg_default"]
