"""Optimizer statistics, populated by ANALYZE (and by PXF analyzers)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ColumnStats:
    """Per-column statistics used for selectivity estimation."""

    n_distinct: float = 0.0
    null_frac: float = 0.0
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    avg_width: float = 8.0

    @classmethod
    def from_values(cls, values: Sequence[object]) -> "ColumnStats":
        non_null = [v for v in values if v is not None]
        if not values:
            return cls()
        widths = [len(v) if isinstance(v, (str, bytes)) else 8 for v in non_null]
        comparable = non_null
        try:
            lo = min(comparable) if comparable else None
            hi = max(comparable) if comparable else None
        except TypeError:
            lo = hi = None
        return cls(
            n_distinct=float(len(set(map(repr, non_null)))),
            null_frac=1.0 - len(non_null) / len(values),
            min_value=lo,
            max_value=hi,
            avg_width=sum(widths) / len(widths) if widths else 8.0,
        )


@dataclass
class TableStats:
    """Whole-table statistics: cardinality, width, per-column details."""

    row_count: float = 0.0
    total_bytes: float = 0.0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def avg_row_width(self) -> float:
        if self.row_count <= 0:
            return 64.0
        return self.total_bytes / self.row_count if self.total_bytes else sum(
            c.avg_width for c in self.columns.values()
        ) or 64.0

    @classmethod
    def from_rows(
        cls, rows: Sequence[Sequence[object]], column_names: Sequence[str]
    ) -> "TableStats":
        """Compute stats from (a sample of) rows."""
        columns = {
            name: ColumnStats.from_values([row[i] for row in rows])
            for i, name in enumerate(column_names)
        }
        total = sum(
            sum(len(v) if isinstance(v, (str, bytes)) else 8 for v in row if v is not None)
            for row in rows
        )
        return cls(row_count=float(len(rows)), total_bytes=float(total), columns=columns)
