"""One slice on one segment: the QE-side operator interpreter.

A :class:`SliceExecutor` is what a :class:`~repro.cluster.worker.
SegmentWorker` runs when a DISPATCH message hands it a
:class:`~repro.planner.dispatch.SliceTask`: it interprets the slice's
operator tree (row or vectorized), reads motion inputs from the
:class:`~repro.interconnect.exchange.ExchangeFabric` inbox, and pushes
its root motion's output back through the fabric, one stream per
receiver. All simulated charges land on the task's own
:class:`~repro.simtime.CostAccumulator` — the accumulator *is* the
task's duration on the event-driven scheduler's timeline.

Charging sites mirror the pre-refactor inline executor exactly, so row
and batch modes stay bit-identical in both results and simulated cost.
One deliberate change rides the per-message latency contract: a motion
*receive* charges bandwidth only (``messages=0``) — its latency lives on
the scheduler's cross-timeline edge instead of being double-counted.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.catalog.schema import hash_values
from repro.columnar import ConstVector
from repro.columnar.vector import true_selection
from repro.errors import ExecutorError
from repro.executor import vecagg
from repro.executor.aggregates import make_state
from repro.executor.batch import ColumnBatch
from repro.executor.expr import (
    RowSizer,
    column_ref_position,
    compile_expr,
    compile_expr_batch,
)
from repro.interconnect.exchange import ExchangeFabric
from repro.planner import exprs as ex
from repro.planner.dispatch import SliceTask
from repro.planner.physical import (
    ExternalScan,
    Filter,
    HashAgg,
    HashJoin,
    Limit,
    Motion,
    MotionRecv,
    NestLoopJoin,
    PlanNode,
    Project,
    Result,
    SeqScan,
    Sort,
    SubqueryScan,
)
from repro.simtime import CostAccumulator


@dataclass
class SliceProviders:
    """Segment-local data sources a worker lends to its executor."""

    #: scan(table_source, partitions, segment_id, columns, acc) -> rows
    scan: Callable
    #: batch_scan(...) -> iterator of (row_count, {col: values}) or None
    batch_scan: Callable
    #: external(table_source, segment_id, columns, pushed, acc) -> rows
    external: Callable


class SliceExecutor:
    """Runs one (slice, segment) task to completion."""

    def __init__(
        self,
        root: PlanNode,
        task: SliceTask,
        ctx,
        providers: SliceProviders,
        exchange: ExchangeFabric,
        acc: CostAccumulator,
    ):
        self.root = root
        self.task = task
        self.ctx = ctx
        self.providers = providers
        self.exchange = exchange
        self.acc = acc
        self.segment = task.segment
        #: Rows / bytes pushed through this slice's root motion.
        self.rows_out = 0
        self.bytes_out = 0

    # ----------------------------------------------------- kernel memoization
    # Compiled row/batch kernels are cached on the engine-lifetime
    # ``ctx.kernel_cache`` keyed by (kind, id(expr), layout): the same
    # plan node re-dispatched to N segments (or re-run after a chaos
    # retry) compiles its expressions once, not N times. The cached
    # expr object is held strongly so a dead expr's id can't alias a
    # new one, and params are equality-checked because a retried query
    # rebinds InitPlan params on a fresh context.
    def _compiled(self, kind: str, expr, layout, compiler):
        cache = self.ctx.kernel_cache
        params = self.ctx.params
        if cache is None:
            return compiler(expr, layout, params)
        key = (kind, id(expr), tuple(layout))
        hit = cache.get(key)
        if hit is not None and hit[0] is expr and hit[1] == params:
            return hit[2]
        fn = compiler(expr, layout, params)
        if len(cache) > 4096:
            cache.clear()
        cache[key] = (expr, params, fn)
        return fn

    def _compile_row(self, expr, layout):
        return self._compiled("row", expr, layout, compile_expr)

    def _compile_batch(self, expr, layout):
        return self._compiled("batch", expr, layout, compile_expr_batch)

    # ---------------------------------------------------------------- driver
    def run(self) -> List[tuple]:
        """Execute the slice; returns rows only for the top slice."""
        rows = self._input_rows(self.root, self.segment, self.acc)
        if self.task.is_top:
            result = list(rows)
            self.rows_out = len(result)
            return result
        # Non-top slice roots are Motions; _run_node on a Motion pushes
        # streams to the exchange and yields nothing.
        for _ in rows:
            pass
        return []

    # ---------------------------------------------------------------- tracing
    # Observability is passive: the helpers below only *read*
    # ``acc.seconds`` and record marks on ``ctx.trace``; they never
    # charge the accumulator, so traced and untraced runs stay
    # bit-identical in both results and simulated cost.
    @staticmethod
    def _span_name(node: PlanNode) -> str:
        name = type(node).__name__
        if isinstance(node, SeqScan):
            return f"{name}[{node.table.table_name}]"
        if isinstance(node, Motion):
            return f"{name}[{node.kind}]"
        phase = getattr(node, "phase", None)
        if phase:
            return f"{name}[{phase}]"
        return name

    def _mark(
        self, node: PlanNode, acc: CostAccumulator, t0: float, **attrs
    ) -> None:
        trace = self.ctx.trace
        if trace is not None:
            trace.op_mark(
                self.task.slice_id,
                self.segment,
                self._span_name(node),
                t0,
                acc.seconds,
                node_key=id(node),
                **attrs,
            )

    def _traced(
        self, it: Iterator[tuple], node: PlanNode, acc: CostAccumulator, t0: float
    ) -> Iterator[tuple]:
        emitted = 0
        try:
            for row in it:
                emitted += 1
                yield row
        finally:
            self._mark(node, acc, t0, rows=emitted)

    def _traced_batches(self, it, node: PlanNode, acc: CostAccumulator, t0: float):
        emitted = 0
        try:
            for batch in it:
                emitted += batch.count
                yield batch
        finally:
            self._mark(node, acc, t0, rows=emitted)

    # -------------------------------------------------------------- operators
    def _run_node(
        self, node: PlanNode, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        if self.ctx.trace is None:
            return self._node_rows(node, segment, acc)
        # Capture t0 *before* dispatch: eager operators (Motion, Sort,
        # MotionRecv) do their work inside the dispatch call itself.
        t0 = acc.seconds
        return self._traced(self._node_rows(node, segment, acc), node, acc, t0)

    def _node_rows(
        self, node: PlanNode, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        if isinstance(node, Motion):
            return self._run_motion(node, segment, acc)
        if isinstance(node, MotionRecv):
            return self._run_motion_recv(node, segment, acc)
        if isinstance(node, SeqScan):
            return self._run_seqscan(node, segment, acc)
        if isinstance(node, ExternalScan):
            return self._run_external(node, segment, acc)
        if isinstance(node, SubqueryScan):
            return self._run_node(node.child, segment, acc)
        if isinstance(node, Filter):
            return self._run_filter(node, segment, acc)
        if isinstance(node, Project):
            return self._run_project(node, segment, acc)
        if isinstance(node, HashJoin):
            return self._run_hash_join(node, segment, acc)
        if isinstance(node, NestLoopJoin):
            return self._run_nest_loop(node, segment, acc)
        if isinstance(node, HashAgg):
            return self._run_hash_agg(node, segment, acc)
        if isinstance(node, Sort):
            return self._run_sort(node, segment, acc)
        if isinstance(node, Limit):
            return self._run_limit(node, segment, acc)
        if isinstance(node, Result):
            return self._run_result(node, segment, acc)
        raise ExecutorError(f"no executor for {type(node).__name__}")

    # ------------------------------------------------------------- batch path
    def _input_rows(
        self, node: PlanNode, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        """Row view of a child: the vectorized pipeline when available
        (flattened back to tuples at this boundary), else the row path."""
        if self.ctx.executor_mode == "batch":
            batches = self._run_node_batches(node, segment, acc)
            if batches is not None:
                return self._flatten_batches(batches)
        return self._run_node(node, segment, acc)

    @staticmethod
    def _flatten_batches(batches) -> Iterator[tuple]:
        for batch in batches:
            yield from batch.to_rows()

    def _run_node_batches(
        self, node: PlanNode, segment: int, acc: CostAccumulator
    ):
        """Vectorized execution of a subtree, or None if unsupported.

        Yields :class:`ColumnBatch` objects: column vectors in
        ``node.layout`` order plus a selection vector, so a fused
        scan→filter→project chain narrows ``sel`` instead of copying
        survivors between operators. Simulated charges mirror the row
        operators exactly, including the trailing per-operator CPU
        charge being skipped when a consumer (LIMIT) abandons the
        stream.
        """
        t0 = acc.seconds
        batches = self._node_batches(node, segment, acc)
        if batches is None or self.ctx.trace is None:
            return batches
        return self._traced_batches(batches, node, acc, t0)

    def _node_batches(
        self, node: PlanNode, segment: int, acc: CostAccumulator
    ):
        if self.ctx.executor_mode != "batch":
            return None
        if isinstance(node, SeqScan):
            return self._scan_batches(node, segment, acc)
        if isinstance(node, SubqueryScan):
            # Pass-through: positions are unchanged, only labels differ.
            return self._run_node_batches(node.child, segment, acc)
        if isinstance(node, Filter):
            return self._filter_batches(node, segment, acc)
        if isinstance(node, Project):
            return self._project_batches(node, segment, acc)
        return None

    def _scan_batches(self, node: SeqScan, segment: int, acc: CostAccumulator):
        provider = self.providers.batch_scan
        if provider is None:
            return None
        source = provider(
            node.table, node.partitions, segment, node.columns, acc
        )
        if source is None:
            return None
        predicate = (
            self._compile_batch(node.filter, self._scan_layout(node))
            if node.filter is not None
            else None
        )
        ncols = len(node.table.schema.columns)
        out_positions = list(node.columns)

        def gen():
            count = 0
            for row_count, vectors in source:
                count += row_count
                if predicate is None:
                    yield ColumnBatch(
                        [vectors[c] for c in out_positions], row_count
                    )
                    continue
                # The scan filter is compiled against the full table row
                # shape; the planner guarantees every referenced column
                # is decoded, so unrequested positions never get read.
                # Undecoded columns share one NULL constant — the same
                # None placeholders the row-path provider materializes.
                placeholder = ConstVector(None, row_count)
                full = [vectors.get(c, placeholder) for c in range(ncols)]
                mask = predicate(full, row_count, None)
                sel = true_selection(mask, row_count, None)
                if len(sel) == row_count:
                    yield ColumnBatch(
                        [vectors[c] for c in out_positions], row_count
                    )
                elif sel:
                    # Survivors ride as a selection vector; the copy is
                    # deferred to the next row-only boundary.
                    yield ColumnBatch(
                        [vectors[c] for c in out_positions], row_count, sel
                    )
            acc.cpu_tuples(count, ncolumns=len(node.columns))

        return gen()

    def _filter_batches(
        self, node: Filter, segment: int, acc: CostAccumulator
    ):
        child = self._run_node_batches(node.child, segment, acc)
        if child is None:
            return None
        predicate = self._compile_batch(node.cond, node.child.layout)

        def gen():
            count = 0
            for batch in child:
                count += batch.count
                mask = predicate(batch.columns, batch.nrows, batch.sel)
                sel = true_selection(mask, batch.nrows, batch.sel)
                if len(sel) == batch.count:
                    yield batch
                elif sel:
                    # Narrow the selection only — no column copies.
                    yield ColumnBatch(batch.columns, batch.nrows, sel)
            acc.cpu_tuples(count, weight=0.5)

        return gen()

    def _project_batches(
        self, node: Project, segment: int, acc: CostAccumulator
    ):
        child = self._run_node_batches(node.child, segment, acc)
        if child is None:
            return None
        positions = [
            column_ref_position(e, node.child.layout) for e in node.exprs
        ]
        if all(p is not None for p in positions):
            # Pure column permutation: alias the child's vectors and keep
            # its selection — zero compute, zero copies.
            def gen():
                count = 0
                for batch in child:
                    count += batch.count
                    yield ColumnBatch(
                        [batch.columns[p] for p in positions],
                        batch.nrows,
                        batch.sel,
                    )
                acc.cpu_tuples(count, ncolumns=len(positions))

            return gen()
        fns = [self._compile_batch(e, node.child.layout) for e in node.exprs]

        def gen():
            count = 0
            for batch in child:
                count += batch.count
                # Computed projections evaluate through the selection, so
                # the output batch is dense (no sel) over the live rows.
                yield ColumnBatch(
                    [fn(batch.columns, batch.nrows, batch.sel) for fn in fns],
                    batch.count,
                )
            acc.cpu_tuples(count, ncolumns=len(fns))

        return gen()

    # ------------------------------------------------------------------ scans
    def _run_seqscan(
        self, node: SeqScan, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        if self.providers.scan is None:
            raise ExecutorError("no scan provider configured")
        predicate = (
            self._compile_row(node.filter, self._scan_layout(node))
            if node.filter is not None
            else None
        )
        count = 0
        for row in self.providers.scan(
            node.table, node.partitions, segment, node.columns, acc
        ):
            count += 1
            if predicate is not None and predicate(row) is not True:
                continue
            yield tuple(row[c] for c in node.columns)
        acc.cpu_tuples(count, ncolumns=len(node.columns))

    def _scan_layout(self, node) -> List[tuple]:
        """Scan filters see the table's full row shape."""
        ncols = len(node.table.schema.columns)
        return [("r", node.rel, c) for c in range(ncols)]

    def _run_external(
        self, node: ExternalScan, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        if self.providers.external is None:
            raise ExecutorError("no external (PXF) provider configured")
        predicate = (
            self._compile_row(node.filter, self._scan_layout(node))
            if node.filter is not None
            else None
        )
        count = 0
        for row in self.providers.external(
            node.table, segment, node.columns, node.pushed_filters, acc
        ):
            count += 1
            if predicate is not None and predicate(row) is not True:
                continue
            yield tuple(row[c] for c in node.columns)
        acc.cpu_tuples(count, ncolumns=len(node.columns))

    # ---------------------------------------------------------------- motions
    def _run_motion(
        self, node: Motion, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        receivers = self.task.receivers
        hash_fns = [
            self._compile_row(e, node.child.layout) for e in node.hash_exprs
        ]
        buffers: Dict[int, List[tuple]] = defaultdict(list)
        buffer_bytes: Dict[int, int] = defaultdict(int)
        sent_bytes = 0
        count = 0
        sizer = RowSizer()
        for row in self._input_rows(node.child, segment, acc):
            count += 1
            size = sizer(row)
            if node.kind == "gather":
                targets = [receivers[0]]
            elif node.kind == "broadcast":
                targets = receivers
            else:
                key = tuple(fn(row) for fn in hash_fns)
                targets = [receivers[hash_values(key, len(receivers))]]
            for target in targets:
                buffers[target].append(row)
                buffer_bytes[target] += size
                sent_bytes += size
        self._charge_send(acc, count, sent_bytes, len(receivers))
        for target in sorted(buffers):
            self.rows_out += len(buffers[target])
            self.bytes_out += buffer_bytes[target]
            self.exchange.send(
                self.ctx.query_id,
                self.task.slice_id,
                segment,
                target,
                buffers[target],
                buffer_bytes[target],
            )
        return iter(())

    def _charge_send(
        self, acc: CostAccumulator, rows: int, nbytes: int, nreceivers: int
    ) -> None:
        model = self.ctx.cost_model
        acc.cpu_bytes(nbytes, model.cpu_net_byte)
        # Stream concurrency is a property of the *real* cluster being
        # modeled (96 segments in the paper's testbed), not of however
        # many segments this process simulates.
        real_segments = (
            model.modeled_segments
            if model.modeled_segments
            else self.ctx.num_segments
        )
        if self.ctx.interconnect == "tcp":
            streams = real_segments * max(self.task.num_plan_slices - 1, 1)
            bandwidth = model.net_bw / (
                1 + model.tcp_concurrency_penalty * streams
            )
            acc.fixed(model.tcp_conn_setup * real_segments * (nreceivers > 1))
            acc.network(nbytes, bandwidth)
        else:
            acc.fixed(model.udp_conn_setup * real_segments)
            acc.network(int(nbytes * (1 + model.udp_byte_overhead)))

    def _run_motion_recv(
        self, node: MotionRecv, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        rows, nbytes = self.exchange.receive(
            self.ctx.query_id, node.slice_id, segment
        )
        model = self.ctx.cost_model
        acc.cpu_bytes(nbytes, model.cpu_net_byte)
        # Bandwidth only: the receive's latency is the scheduler edge
        # from the sending task's timeline to this one.
        acc.network(nbytes, messages=0)
        return iter(rows)

    # -------------------------------------------------------------- filtering
    def _run_filter(
        self, node: Filter, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        predicate = self._compile_row(node.cond, node.child.layout)
        count = 0
        for row in self._run_node(node.child, segment, acc):
            count += 1
            if predicate(row) is True:
                yield row
        acc.cpu_tuples(count, weight=0.5)

    def _run_project(
        self, node: Project, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        fns = [self._compile_row(e, node.child.layout) for e in node.exprs]
        count = 0
        for row in self._run_node(node.child, segment, acc):
            count += 1
            yield tuple(fn(row) for fn in fns)
        acc.cpu_tuples(count, ncolumns=len(fns))

    # ------------------------------------------------------------------ joins
    def _run_hash_join(
        self, node: HashJoin, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        residual = (
            self._compile_row(node.residual, node.layout_for_residual())
            if node.residual is not None
            else None
        )
        # Build side (right).
        table: Dict[tuple, List[tuple]] = defaultdict(list)
        build_count = 0
        build_bytes = 0
        sizer = RowSizer()
        for row, key in self._keyed_rows(
            node.right, node.right_keys, segment, acc
        ):
            if any(k is None for k in key):
                continue  # NULL never matches an equality key
            table[key].append(row)
            build_count += 1
            build_bytes += sizer(row)
        acc.cpu_tuples(build_count, weight=1.2)
        self._charge_spill(acc, build_bytes)

        probe_count = 0
        out_count = 0
        join_type = node.join_type
        pad = (None,) * len(node.right.layout)
        for row, key in self._keyed_rows(
            node.left, node.left_keys, segment, acc
        ):
            probe_count += 1
            matches = table.get(key, []) if not any(k is None for k in key) else []
            if residual is not None and matches:
                matches = [m for m in matches if residual(row + m) is True]
            if join_type == "inner":
                for match in matches:
                    out_count += 1
                    yield row + match
            elif join_type == "left":
                if matches:
                    for match in matches:
                        out_count += 1
                        yield row + match
                else:
                    out_count += 1
                    yield row + pad
            elif join_type == "semi":
                if matches:
                    out_count += 1
                    yield row
            elif join_type == "anti":
                if not matches:
                    out_count += 1
                    yield row
            else:  # pragma: no cover
                raise ExecutorError(f"unknown join type {join_type!r}")
        acc.cpu_tuples(probe_count, weight=1.0)
        acc.cpu_tuples(out_count, weight=0.3)

    def _keyed_rows(
        self,
        node: PlanNode,
        key_exprs: List[ex.BoundExpr],
        segment: int,
        acc: CostAccumulator,
    ) -> Iterator[Tuple[tuple, tuple]]:
        """Yield ``(row, key)`` pairs for a join input, extracting keys
        with batch kernels when the child produces column batches."""
        if self.ctx.executor_mode == "batch":
            batches = self._run_node_batches(node, segment, acc)
            if batches is not None:
                key_fns = [
                    self._compile_batch(e, node.layout) for e in key_exprs
                ]
                for batch in batches:
                    if key_fns:
                        key_cols = [
                            fn(batch.columns, batch.nrows, batch.sel)
                            for fn in key_fns
                        ]
                        yield from zip(batch.to_rows(), zip(*key_cols))
                    else:
                        empty = ()
                        for row in batch.to_rows():
                            yield row, empty
                return
        fns = [self._compile_row(e, node.layout) for e in key_exprs]
        for row in self._run_node(node, segment, acc):
            yield row, tuple(fn(row) for fn in fns)

    def _run_nest_loop(
        self, node: NestLoopJoin, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        inner = list(self._input_rows(node.right, segment, acc))
        cond = (
            self._compile_row(node.cond, node.layout_for_residual())
            if node.cond is not None
            else None
        )
        pad = (None,) * len(node.right.layout)
        outer_count = 0
        comparisons = 0
        for row in self._input_rows(node.left, segment, acc):
            outer_count += 1
            matches = []
            for inner_row in inner:
                comparisons += 1
                if cond is None or cond(row + inner_row) is True:
                    matches.append(inner_row)
            if node.join_type == "inner":
                for match in matches:
                    yield row + match
            elif node.join_type == "left":
                if matches:
                    for match in matches:
                        yield row + match
                else:
                    yield row + pad
            elif node.join_type == "semi":
                if matches:
                    yield row
            elif node.join_type == "anti":
                if not matches:
                    yield row
        acc.cpu_tuples(comparisons, weight=0.3)
        acc.cpu_tuples(outer_count, weight=0.5)

    # ------------------------------------------------------------ aggregation
    def _run_hash_agg(
        self, node: HashAgg, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        child_layout = node.child.layout
        phase = node.phase
        nkeys = len(node.group_keys)
        if phase == "final":
            # Input rows are (group values..., states...) from partials.
            groups: Dict[tuple, List] = {}
            count = 0
            for row in self._input_rows(node.child, segment, acc):
                count += 1
                key = row[:nkeys]
                states = row[nkeys:]
                slot = groups.get(key)
                if slot is None:
                    groups[key] = list(states)
                else:
                    for mine, theirs in zip(slot, states):
                        mine.merge(theirs)
            acc.cpu_tuples(count, weight=1.0 + 0.3 * len(node.aggs))
            for key, states in groups.items():
                yield key + tuple(state.finalize() for state in states)
            return

        groups = {}
        count = 0
        group_bytes = 0
        sizer = RowSizer()
        batches = self._run_node_batches(node.child, segment, acc)
        if batches is not None:
            # Vectorized accumulation: group keys and aggregate arguments
            # are evaluated over whole batches, then folded — with
            # np.bincount when the shapes allow (vecagg), per row
            # otherwise.
            key_fns_b = [
                self._compile_batch(e, child_layout) for e in node.group_keys
            ]
            arg_fns_b = [
                self._compile_batch(a.arg, child_layout)
                if a.arg is not None
                else None
                for a in node.aggs
            ]

            def make_states():
                return [make_state(a) for a in node.aggs]

            for batch in batches:
                n = batch.count
                count += n
                key_vecs = [
                    fn(batch.columns, batch.nrows, batch.sel)
                    for fn in key_fns_b
                ]
                arg_vecs = [
                    fn(batch.columns, batch.nrows, batch.sel)
                    if fn is not None
                    else None
                    for fn in arg_fns_b
                ]
                added = vecagg.fold_batch(
                    groups, node.aggs, key_vecs, arg_vecs, n, sizer,
                    make_states,
                )
                if added is not None:
                    group_bytes += added
                    continue
                keys = list(zip(*key_vecs)) if key_vecs else [()] * n
                for i, key in enumerate(keys):
                    states = groups.get(key)
                    if states is None:
                        states = make_states()
                        groups[key] = states
                        group_bytes += sizer(key) + 16 * len(states)
                    for state, vec in zip(states, arg_vecs):
                        state.accumulate(vec[i] if vec is not None else 1)
        else:
            key_fns = [
                self._compile_row(e, child_layout) for e in node.group_keys
            ]
            arg_fns = [
                self._compile_row(a.arg, child_layout)
                if a.arg is not None
                else None
                for a in node.aggs
            ]
            for row in self._run_node(node.child, segment, acc):
                count += 1
                key = tuple(fn(row) for fn in key_fns)
                states = groups.get(key)
                if states is None:
                    states = [make_state(a) for a in node.aggs]
                    groups[key] = states
                    group_bytes += sizer(key) + 16 * len(states)
                for state, arg_fn in zip(states, arg_fns):
                    state.accumulate(arg_fn(row) if arg_fn is not None else 1)
        acc.cpu_tuples(count, weight=1.2 + 0.3 * len(node.aggs))
        self._charge_spill(acc, group_bytes)
        if not groups and not node.group_keys and node.aggs:
            # Aggregate over empty input still yields one row.
            groups[()] = [make_state(a) for a in node.aggs]
        if phase == "partial":
            for key, states in groups.items():
                yield key + tuple(states)
        else:  # single
            for key, states in groups.items():
                yield key + tuple(state.finalize() for state in states)

    # ------------------------------------------------------------- sort/limit
    def _run_sort(
        self, node: Sort, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        rows = list(self._input_rows(node.child, segment, acc))
        key_fns = [
            (
                self._compile_row(k.expr, node.child.layout),
                k.ascending,
                k.nulls_first,
            )
            for k in node.keys
        ]
        # Stable multi-key sort: apply keys right-to-left. Each pass
        # evaluates its key expression once per row up front and sorts an
        # index array over the decorated values, so the per-comparison
        # path never re-enters the compiled closure chain.
        for fn, ascending, nulls_first in reversed(key_fns):
            if nulls_first is None:
                # PostgreSQL defaults: NULLS LAST ascending, FIRST descending.
                nulls_first = not ascending
            if ascending:
                null_bucket = 0 if nulls_first else 2
            else:
                # The whole sort is reversed, so the bucket order flips too.
                null_bucket = 2 if nulls_first else 0
            decorated = [
                (null_bucket, 0) if value is None else (1, value)
                for value in map(fn, rows)
            ]
            # sorted(reverse=True) keeps equal elements in their original
            # order, so descending passes stay stable too.
            order = sorted(
                range(len(rows)),
                key=decorated.__getitem__,
                reverse=not ascending,
            )
            rows = [rows[i] for i in order]
        count = len(rows)
        if count > 1:
            acc.cpu_tuples(count, weight=0.25 * math.log2(count))
        sizer = RowSizer()
        self._charge_spill(acc, sum(sizer(r) for r in rows))
        return iter(rows)

    def _run_limit(
        self, node: Limit, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        produced = 0
        rows = self._input_rows(node.child, segment, acc)
        try:
            for row in rows:
                if produced >= node.count:
                    break
                produced += 1
                yield row
        finally:
            # Close eagerly so the child's finally-charges (abandoned
            # scans still pay for what they read) land inside this
            # task's accumulator window, not at GC time.
            close = getattr(rows, "close", None)
            if close is not None:
                close()

    def _run_result(
        self, node: Result, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        fns = [self._compile_row(e, []) for e in node.exprs]
        acc.cpu_tuples(1, ncolumns=len(fns))
        yield tuple(fn(()) for fn in fns)

    # ---------------------------------------------------------------- spilling
    def _charge_spill(self, acc: CostAccumulator, actual_bytes: int) -> None:
        """Charge simulated IO when an operator's nominal working set
        exceeds work_mem (external sort / spilling hash tables)."""
        model = self.ctx.cost_model
        nominal = actual_bytes * model.scale
        if nominal <= self.ctx.work_mem:
            return
        spilled = nominal - self.ctx.work_mem
        # Written once and read back once, at local-disk bandwidth;
        # nominal bytes, so bypass the scaled disk_read/write helpers.
        acc.seconds += 2 * spilled / model.disk_seq_bw
        acc.disk_write_bytes += int(spilled / max(model.scale, 1e-9))
