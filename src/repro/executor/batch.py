"""Column batches for the vectorized execution path.

A :class:`ColumnBatch` is the unit of data flow between batch-aware
operators: per-column Python lists (``None`` marks SQL NULL — no
separate mask is needed since every value slot is a Python object)
plus the row count. Storage scans produce batches of
``DEFAULT_BATCH_ROWS`` rows (aligned with the storage block size so a
decoded block becomes a batch with zero copying), and
``compile_expr_batch`` kernels evaluate expressions over whole batches.

Batches are read-only by convention: operators build new column lists
rather than mutating inputs, because a projection may alias an input
column (zero-copy column references).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.storage.base import DEFAULT_BLOCK_ROWS

#: Rows per batch on the vectorized path. Matches the storage block row
#: count so decoded blocks map 1:1 onto batches.
DEFAULT_BATCH_ROWS = DEFAULT_BLOCK_ROWS


class ColumnBatch:
    """``nrows`` rows held as per-column value lists."""

    __slots__ = ("columns", "nrows")

    def __init__(self, columns: List[list], nrows: int):
        self.columns = columns
        self.nrows = nrows

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], ncols: int) -> "ColumnBatch":
        """Transpose row tuples into a batch (``ncols`` governs the
        column count even when ``rows`` is empty)."""
        if not rows:
            return cls([[] for _ in range(ncols)], 0)
        return cls([list(col) for col in zip(*rows)], len(rows))

    def iter_rows(self) -> Iterator[tuple]:
        """Yield the batch's rows as tuples (the row-path interface)."""
        if not self.columns:
            for _ in range(self.nrows):
                yield ()
            return
        yield from zip(*self.columns)

    def take(self, sel: Sequence[int]) -> "ColumnBatch":
        """New batch containing the rows selected by index vector ``sel``."""
        return ColumnBatch(
            [[col[i] for i in sel] for col in self.columns], len(sel)
        )


def rows_of(columns: Sequence[list], nrows: int) -> Iterator[tuple]:
    """Yield tuples from positional column vectors (zero-column safe)."""
    if not columns:
        for _ in range(nrows):
            yield ()
        return
    for row in zip(*columns):
        yield row
