"""Column batches for the vectorized execution path.

A :class:`ColumnBatch` is the unit of data flow between batch-aware
operators: per-column vectors — typed :mod:`repro.columnar` vectors
straight from the storage decoders (int64/float64 buffers with null
masks, dictionary-encoded strings) or plain Python lists for formats and
kernels without a typed representation — plus the underlying row count
and an optional *selection vector*. The selection vector is what fuses
filter into its neighbours: a filter narrows ``sel`` instead of copying
``len(sel)`` rows out of every column, and downstream kernels evaluate
through the selection, so row materialization (``take``) is deferred all
the way to a row-only boundary (hash-agg fallback, join build, motion).

Storage scans produce batches of ``DEFAULT_BATCH_ROWS`` rows (aligned
with the storage block size so a decoded block becomes a batch with zero
copying), and ``compile_expr_batch`` kernels evaluate expressions over
whole batches.

Batches are read-only by convention: operators build new batches rather
than mutating inputs, because a projection may alias an input column
(zero-copy column references).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.columnar import as_list, gather
from repro.storage.base import DEFAULT_BLOCK_ROWS

#: Rows per batch on the vectorized path. Matches the storage block row
#: count so decoded blocks map 1:1 onto batches.
DEFAULT_BATCH_ROWS = DEFAULT_BLOCK_ROWS


class ColumnBatch:
    """``nrows`` stored rows held as per-column vectors, of which the
    rows indexed by ``sel`` (all of them when ``sel`` is None) are live."""

    __slots__ = ("columns", "nrows", "sel")

    def __init__(
        self,
        columns: List[object],
        nrows: int,
        sel: Optional[List[int]] = None,
    ):
        self.columns = columns
        self.nrows = nrows
        #: Live row indices into the columns, ascending, or None for all.
        self.sel = sel

    @property
    def count(self) -> int:
        """Number of live rows."""
        sel = self.sel
        return self.nrows if sel is None else len(sel)

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], ncols: int) -> "ColumnBatch":
        """Transpose row tuples into a batch (``ncols`` governs the
        column count even when ``rows`` is empty)."""
        if not rows:
            return cls([[] for _ in range(ncols)], 0)
        return cls([list(col) for col in zip(*rows)], len(rows))

    def to_rows(self) -> Iterator[tuple]:
        """Yield the live rows as tuples of Python values.

        This is *the* batch→row boundary: each column is materialized
        once per batch (``tolist``/``gather``, both cached on typed
        vectors), never value-by-value, and dictionary columns hand out
        their shared decoded ``str`` objects.
        """
        if not self.columns:
            for _ in range(self.count):
                yield ()
            return
        sel = self.sel
        if sel is None:
            plain = [as_list(col) for col in self.columns]
        else:
            plain = [gather(col, sel) for col in self.columns]
        yield from zip(*plain)
