"""Master-side query execution: dispatch, gather, and the event clock.

The master (QD) no longer runs slices inline. It cuts the self-described
plan into per-segment :class:`~repro.planner.dispatch.SliceTask`s, sends
each one as a DISPATCH message over :class:`~repro.cluster.rpc.RpcBus`
to the owning :class:`~repro.cluster.worker.SegmentWorker`, and drains
the simulated network until every worker has reported COMPLETE. Waves go
out children-first, so a wave's motion inputs sit in the
:class:`~repro.interconnect.exchange.ExchangeFabric` before its
consumers start.

Timing: every task's COMPLETE carries the simulated seconds its
accumulator charged. The runtime replays those durations on the
:class:`~repro.simtime.scheduler.EventScheduler` — motion senders feed
receivers through cross-timeline edges charged one interconnect latency
(plus a materialization penalty when pipelining is ablated) — and the
query's wall time is the **critical path** through the task DAG plus the
master's own fixed dispatch overhead. Task durations use the gang mean,
not the max: at full scale TPC-H keys hash uniformly, so per-segment
imbalance at a tiny scale factor is sampling noise, not real skew.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.rpc import (
    ABORT,
    ABORT_BYTES,
    ACK,
    CATALOG_LOOKUP_BYTES,
    COMPLETE,
    DISPATCH,
    MASTER,
    RpcBus,
    RpcMessage,
    TaskReport,
)
from repro.errors import ExecutorError, SegmentDown
from repro.interconnect.exchange import ExchangeFabric
from repro.obs.metrics import MetricsSnapshot
from repro.network.simnet import SimNetwork
from repro.planner.dispatch import (
    QD_SEGMENT,
    SelfDescribedPlan,
    SliceTask,
    make_slice_tasks,
)
from repro.planner.physical import PhysicalPlan
from repro.simtime import CostAccumulator, CostModel, QueryCost
from repro.simtime.scheduler import (
    SliceTiming,
    TaskGraph,
    TaskKey,
    TaskTiming,
)


@dataclass
class ExecutionContext:
    """Per-query knobs shipped to every worker inside DISPATCH."""

    num_segments: int
    cost_model: CostModel
    #: 'batch' routes SeqScan/Filter/Project through the vectorized
    #: path (identical results and identical simulated charges); 'row'
    #: forces tuple-at-a-time execution everywhere.
    executor_mode: str = "row"
    params: List[object] = field(default_factory=list)
    #: 'udp' or 'tcp' — which interconnect carries the motions.
    interconnect: str = "udp"
    #: Disable slice overlap (ablation: staged execution a la MapReduce).
    pipelined: bool = True
    #: Per-operator memory budget in nominal bytes before spilling.
    work_mem: float = 1.5e9
    #: Self-described plans (Section 3.1); when ablated, every QE pays a
    #: per-object catalog RPC storm against the master instead.
    metadata_dispatch: bool = True
    #: Per-query :class:`repro.obs.trace.QueryTrace` recorder, or None.
    #: Purely observational: workers record relative operator marks on
    #: it; the runtime assembles absolute spans at gather time. Tracing
    #: never charges the clock, so figures are identical either way.
    trace: Optional[object] = None
    #: Engine-lifetime memo of compiled row/batch kernels, shared across
    #: queries and retry attempts (see SliceExecutor._compiled). None
    #: disables memoization (every compile_expr call is fresh).
    kernel_cache: Optional[dict] = None
    #: Engine-wide statement id: every RPC this query's dispatch sends
    #: (and every trace event) is tagged with it, so concurrent
    #: sessions' control traffic stays attributable per query.
    query_id: int = 0


@dataclass
class QueryResult:
    """Rows plus the simulated cost of producing them."""

    rows: List[tuple]
    column_names: List[str]
    cost: QueryCost
    plan: Optional[PhysicalPlan] = None
    message: str = ""
    #: Per-slice scheduler timelines (EXPLAIN ANALYZE): composed finish
    #: time on the event clock, rows sent, per-segment task breakdown.
    slices: Dict[int, SliceTiming] = field(default_factory=dict)
    #: Critical-path length through the task DAG (worker time only).
    makespan: float = 0.0
    #: Master-side fixed costs + init-plan time, on top of the makespan.
    overhead_seconds: float = 0.0
    #: The (slice_id, segment) chain that bounded the makespan.
    critical_path: List[TaskKey] = field(default_factory=list)
    #: Number of dispatch attempts abandoned to a dead segment before
    #: this result was produced (query restart beats heavy recovery).
    retries: int = 0
    #: Per-query metrics delta (registry snapshot diff around this
    #: statement): cache hits/misses, bytes read per format, datagrams,
    #: WAL records, retries. Empty when nothing was instrumented.
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: The statement's :class:`repro.obs.trace.QueryTrace` when the
    #: session had tracing enabled, else None.
    trace: Optional[object] = None
    #: Engine-wide id of the statement that produced this result (0 for
    #: statements that never dispatched).
    query_id: int = 0
    #: The executed (slice, segment) task DAG with its gang-mean
    #: durations and edges — what the concurrent runtime replays when
    #: composing many queries onto shared per-segment slots. None for
    #: undispatched statements.
    task_graph: Optional[TaskGraph] = None


class DistributedRuntime:
    """The QD's dispatcher: one instance per execution attempt.

    Owns the master's RPC endpoint; workers are registered on the same
    bus by the engine before :meth:`execute` is called.
    """

    def __init__(self, net: SimNetwork, bus: RpcBus, exchange: ExchangeFabric):
        self.net = net
        self.bus = bus
        self.exchange = exchange
        self._reports: Dict[TaskKey, TaskReport] = {}
        self._acks: Dict[TaskKey, str] = {}
        bus.register(MASTER, self._on_message)

    # --------------------------------------------------------------- messages
    def _on_message(self, message: RpcMessage) -> None:
        if message.kind == ACK:
            slice_id, segment = message.payload
            self._acks[(slice_id, segment)] = message.sender
        elif message.kind == COMPLETE:
            report: TaskReport = message.payload
            self._reports[(report.slice_id, report.segment)] = report

    # ----------------------------------------------------------------- driver
    def execute(
        self, plan: PhysicalPlan, sdp: SelfDescribedPlan, ctx: ExecutionContext
    ) -> QueryResult:
        """Dispatch a sliced physical plan and gather its result."""
        # InitPlans first: their single values become this plan's
        # parameters. Parameters are scoped per PhysicalPlan (nested
        # init plans resolve their own), so run with a fresh param list.
        init_seconds = 0.0
        if plan.init_plans:
            params: List[object] = []
            for init_plan in plan.init_plans:
                sub = self.execute(
                    init_plan, sdp, dataclasses.replace(ctx, params=[])
                )
                if len(sub.rows) > 1:
                    raise ExecutorError("InitPlan returned more than one row")
                params.append(sub.rows[0][0] if sub.rows else None)
                init_seconds += sub.cost.seconds
            ctx = dataclasses.replace(ctx, params=params)

        # Init plans reuse slice ids; never let their streams leak in.
        self.exchange.reset()
        self._reports.clear()
        self._acks.clear()

        model = ctx.cost_model
        master_acc = CostAccumulator(model)
        master_acc.fixed(model.query_setup)
        waves = make_slice_tasks(plan, sdp, ctx.num_segments)
        roots = {s.slice_id: s.root for s in plan.slices}
        try:
            for wave in waves:
                self._dispatch_wave(wave, roots, sdp, ctx, master_acc)
                # Drain the net: DISPATCH delivery runs each worker's
                # task synchronously, and their motion streams + control
                # replies settle before the next (consumer) wave goes out.
                self.net.run()
        except Exception:
            # Best-effort abort to the surviving workers, then let the
            # session's restart loop see the original failure. The trace
            # synthesizes closures for tasks that will never report.
            self._broadcast_abort(query_id=ctx.query_id)
            if ctx.trace is not None:
                ctx.trace.attempt_aborted()
            raise
        return self._gather(plan, waves, ctx, master_acc, init_seconds)

    def _dispatch_wave(
        self,
        wave: List[SliceTask],
        roots: Dict[int, object],
        sdp: SelfDescribedPlan,
        ctx: ExecutionContext,
        master_acc: CostAccumulator,
    ) -> None:
        model = ctx.cost_model
        master_acc.fixed(model.gang_setup)
        for task in wave:
            master_acc.fixed(model.dispatch_per_segment)
            message = RpcMessage(
                kind=DISPATCH,
                sender=MASTER,
                payload=(task, roots[task.slice_id], sdp, ctx),
                size=task.payload_bytes,
                query_id=ctx.query_id,
            )
            if task.segment == QD_SEGMENT:
                # Loopback dispatch to the master's own worker: no wire.
                self.bus.send(MASTER, f"seg{task.segment}", message)
                continue
            if not ctx.metadata_dispatch:
                # Ablation: the plan goes out thin and the QE turns
                # around and storms the master's catalog, one RPC per
                # object it needs (schema, files, stats, types).
                lookups = max(len(sdp.metadata), 1) * 4
                master_acc.fixed(model.catalog_rpc * lookups)
                message.size = CATALOG_LOOKUP_BYTES
            self.bus.send(MASTER, f"seg{task.segment}", message, acc=master_acc)

    def _broadcast_abort(self, query_id: int = 0) -> None:
        for name, channel in sorted(self.bus.channels.items()):
            if name == MASTER or not channel.open:
                continue
            self.bus.send(
                MASTER,
                name,
                RpcMessage(
                    kind=ABORT, sender=MASTER, size=ABORT_BYTES,
                    query_id=query_id,
                ),
            )

    # ----------------------------------------------------------------- gather
    def _gather(
        self,
        plan: PhysicalPlan,
        waves: List[List[SliceTask]],
        ctx: ExecutionContext,
        master_acc: CostAccumulator,
        init_seconds: float,
    ) -> QueryResult:
        model = ctx.cost_model
        missing = [
            (task.slice_id, task.segment)
            for wave in waves
            for task in wave
            if (task.slice_id, task.segment) not in self._reports
        ]
        if missing:
            # A DISPATCH addressed to a channel that dropped before
            # delivery vanishes silently (UDP semantics) — the master
            # notices the worker's death here, at gather time.
            dead = [
                seg
                for _sid, seg in missing
                if not self.bus.is_open(f"seg{seg}")
            ]
            if dead:
                raise SegmentDown(
                    f"segment {dead[0]} died before completing its task"
                )
            raise ExecutorError(f"no completion report for tasks {missing[:4]}")

        # Capture the task DAG as a portable TaskGraph (tasks and edges
        # in the exact insertion order the serial schedule uses), then
        # replay it: the graph is also attached to the result so the
        # concurrent runtime can re-compose this query against others
        # on shared per-segment slots.
        graph = TaskGraph(tasks=[], edges=[])
        for wave in waves:
            slice_id = wave[0].slice_id
            seconds = [
                self._reports[(slice_id, task.segment)].seconds for task in wave
            ]
            mean = sum(seconds) / len(seconds)
            for task in wave:
                graph.tasks.append(((slice_id, task.segment), mean))

        # Motion edges: every sender task feeds every consumer task (the
        # consumer's MotionRecv drains the whole gang's streams, so the
        # barrier is complete-bipartite), charged one interconnect
        # latency. When pipelining is ablated, the motion's output is
        # staged to disk and read back by the consumer: the edge also
        # carries the per-segment write+read time.
        stage_delay: Dict[int, float] = {}
        if not ctx.pipelined:
            sent: Dict[int, int] = {}
            for record in self.exchange.records:
                sent[record.slice_id] = sent.get(record.slice_id, 0) + record.nbytes
            for wave in waves:
                slice_id = wave[0].slice_id
                per_segment = sent.get(slice_id, 0) / max(len(wave), 1)
                stage_delay[slice_id] = (
                    2 * per_segment * model.scale / model.disk_seq_bw
                )
        tasks_of: Dict[int, List[SliceTask]] = {
            wave[0].slice_id: wave for wave in waves
        }
        for plan_slice in plan.slices:
            parent = tasks_of[plan_slice.slice_id]
            for child_id in plan_slice.child_slices:
                delay = model.net_latency + stage_delay.get(child_id, 0.0)
                for child_task in tasks_of[child_id]:
                    for parent_task in parent:
                        graph.edges.append(
                            (
                                (child_id, child_task.segment),
                                (plan_slice.slice_id, parent_task.segment),
                                delay,
                            )
                        )
        # A worker executes one task at a time: tasks landing on the same
        # segment serialize in dispatch (wave) order. This is what keeps
        # sibling join branches — which all run on the same gang of
        # segments — from overlapping for free: the cores are shared.
        # Cross-*segment* overlap (direct dispatch, the QD's own slices
        # against QE work) still parallelizes on the event clock. The
        # edges stay explicit in the graph (not implied by slots) so a
        # lone query composes to its serial makespan exactly.
        last_on_segment: Dict[int, TaskKey] = {}
        for wave in waves:
            for task in wave:
                key = (task.slice_id, task.segment)
                prev = last_on_segment.get(task.segment)
                if prev is not None:
                    graph.edges.append((prev, key, 0.0))
                last_on_segment[task.segment] = key
        schedule = graph.replay()

        slices: Dict[int, SliceTiming] = {}
        for wave in waves:
            slice_id = wave[0].slice_id
            timing = SliceTiming(
                finish=max(
                    schedule.finish[(slice_id, task.segment)] for task in wave
                ),
                rows=0,
            )
            for task in wave:
                report = self._reports[(slice_id, task.segment)]
                timing.rows += report.rows_out
                timing.tasks[task.segment] = TaskTiming(
                    seconds=report.seconds,
                    rows=report.rows_out,
                    bytes=report.bytes_out,
                )
            slices[slice_id] = timing

        rows: List[tuple] = []
        top_id = plan.top_slice.slice_id
        for task in sorted(tasks_of[top_id], key=lambda t: t.segment):
            report = self._reports[(top_id, task.segment)]
            if report.result_rows is not None:
                rows.extend(report.result_rows)

        total = CostAccumulator(model)
        total.disk_read_bytes = master_acc.disk_read_bytes
        total.disk_write_bytes = master_acc.disk_write_bytes
        total.net_bytes = master_acc.net_bytes
        total.tuples = master_acc.tuples
        for report in self._reports.values():
            total.disk_read_bytes += report.disk_read_bytes
            total.disk_write_bytes += report.disk_write_bytes
            total.net_bytes += report.net_bytes
            total.tuples += report.tuples
        if ctx.trace is not None:
            # Absolute span placement: the scheduler's task windows,
            # shifted past this plan's dispatch overhead (init-plan
            # assemblies already advanced the trace cursor).
            ctx.trace.assemble(waves, self._reports, schedule, master_acc.seconds)

        overhead = master_acc.seconds + init_seconds
        graph.overhead_seconds = overhead
        cost = QueryCost(
            seconds=schedule.makespan + overhead,
            disk_read_bytes=total.disk_read_bytes,
            disk_write_bytes=total.disk_write_bytes,
            net_bytes=total.net_bytes,
            tuples=total.tuples,
        )
        return QueryResult(
            rows=rows,
            column_names=plan.output_names,
            cost=cost,
            plan=plan,
            slices=slices,
            makespan=schedule.makespan,
            overhead_seconds=overhead,
            critical_path=schedule.critical_path,
            query_id=ctx.query_id,
            task_graph=graph,
        )
