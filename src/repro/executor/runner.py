"""Slice-by-slice parallel plan execution with simulated timing.

Slices run children-first (they are emitted in dependency order by the
slicer). A slice with gang 'N' is executed once per segment — each QE
sees only its segment's data — and its root Motion partitions the output
into per-receiver buffers (hash for redistribute, everyone for
broadcast, the QD for gather). The consuming slice's MotionRecv leaves
read those buffers.

Timing: each (slice, segment) accumulates simulated cost; a slice's wall
time is the max over its QEs; slices connected by motions are pipelined,
so the query's time is ``max(own, children) + latency`` up the slice
tree, plus fixed query/gang set-up costs. (A knob disables pipelining
for the ablation benchmark.)
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.catalog.schema import hash_values
from repro.errors import ExecutorError
from repro.executor.aggregates import make_state
from repro.executor.batch import rows_of
from repro.executor.expr import (
    RowSizer,
    compile_expr,
    compile_expr_batch,
    estimate_row_bytes,
)
from repro.planner import exprs as ex
from repro.planner.physical import (
    ExternalScan,
    Filter,
    HashAgg,
    HashJoin,
    Limit,
    Motion,
    MotionRecv,
    NestLoopJoin,
    PhysicalPlan,
    PlanNode,
    PlanSlice,
    Project,
    Result,
    SeqScan,
    Sort,
    SubqueryScan,
)
from repro.simtime import CostAccumulator, CostModel, QueryCost

QD_SEGMENT = -1


@dataclass
class ExecutionContext:
    """Everything a plan needs at run time."""

    num_segments: int
    cost_model: CostModel
    #: scan_provider(table_source, partitions, segment_id, columns, acc)
    #: -> iterable of schema-shaped tuples for that segment.
    scan_provider: Callable = None
    #: batch_scan_provider(table_source, partitions, segment_id, columns,
    #: acc) -> iterator of (row_count, {column_index: values}) blocks, or
    #: None when the source cannot serve column blocks (row fallback).
    batch_scan_provider: Callable = None
    #: external_provider(table_source, segment_id, columns, pushed, acc)
    external_provider: Callable = None
    #: 'batch' routes SeqScan/Filter/Project through the vectorized
    #: path (identical results and identical simulated charges); 'row'
    #: forces tuple-at-a-time execution everywhere.
    executor_mode: str = "row"
    params: List[object] = field(default_factory=list)
    #: 'udp' or 'tcp' — which interconnect carries the motions.
    interconnect: str = "udp"
    #: Disable slice overlap (ablation: staged execution a la MapReduce).
    pipelined: bool = True
    #: Per-operator memory budget in nominal bytes before spilling.
    work_mem: float = 1.5e9


@dataclass
class QueryResult:
    """Rows plus the simulated cost of producing them."""

    rows: List[tuple]
    column_names: List[str]
    cost: QueryCost
    plan: Optional[PhysicalPlan] = None
    message: str = ""
    #: Per-slice composed simulated seconds (EXPLAIN ANALYZE).
    slice_seconds: Dict[int, float] = field(default_factory=dict)
    #: Per-slice output row counts (rows buffered at each motion).
    slice_rows: Dict[int, int] = field(default_factory=dict)
    #: Number of dispatch attempts abandoned to a dead segment before
    #: this result was produced (query restart beats heavy recovery).
    retries: int = 0


def execute_plan(plan: PhysicalPlan, ctx: ExecutionContext) -> QueryResult:
    """Run a sliced physical plan to completion."""
    # InitPlans first: their single values become this plan's parameters.
    # Parameters are scoped per PhysicalPlan (nested init plans resolve
    # their own), so run with a fresh param list.
    init_seconds = 0.0
    if plan.init_plans:
        import dataclasses

        params: List[object] = []
        for init_plan in plan.init_plans:
            sub = execute_plan(
                init_plan, dataclasses.replace(ctx, params=[])
            )
            if len(sub.rows) > 1:
                raise ExecutorError("InitPlan returned more than one row")
            params.append(sub.rows[0][0] if sub.rows else None)
            init_seconds += sub.cost.seconds
        ctx = dataclasses.replace(ctx, params=params)

    runner = _PlanRunner(plan, ctx)
    rows = runner.run()
    seconds = runner.total_time() + init_seconds + _fixed_costs(plan, ctx)
    slice_rows = {
        sid: sum(len(buffered) for buffered in buffers.values())
        for sid, buffers in runner.buffers.items()
    }
    total = CostAccumulator(ctx.cost_model)
    for acc in runner.accumulators.values():
        total.disk_read_bytes += acc.disk_read_bytes
        total.disk_write_bytes += acc.disk_write_bytes
        total.net_bytes += acc.net_bytes
        total.tuples += acc.tuples
    cost = QueryCost(
        seconds=seconds,
        disk_read_bytes=total.disk_read_bytes,
        disk_write_bytes=total.disk_write_bytes,
        net_bytes=total.net_bytes,
        tuples=total.tuples,
    )
    return QueryResult(
        rows=rows,
        column_names=plan.output_names,
        cost=cost,
        plan=plan,
        slice_seconds=dict(getattr(runner, "slice_times", {})),
        slice_rows=slice_rows,
    )


def _fixed_costs(plan: PhysicalPlan, ctx: ExecutionContext) -> float:
    model = ctx.cost_model
    seconds = model.query_setup
    for plan_slice in plan.slices:
        gang_size = _gang_segments(plan, plan_slice, ctx)
        seconds += model.gang_setup + model.dispatch_per_segment * len(gang_size)
    return seconds


def _gang_segments(
    plan: PhysicalPlan, plan_slice: PlanSlice, ctx: ExecutionContext
) -> List[int]:
    if plan_slice.gang == "1":
        return [QD_SEGMENT]
    if plan.direct_dispatch_segment is not None:
        return [plan.direct_dispatch_segment]
    return list(range(ctx.num_segments))


class _PlanRunner:
    def __init__(self, plan: PhysicalPlan, ctx: ExecutionContext):
        self.plan = plan
        self.ctx = ctx
        # (slice_id, segment) -> cost accumulator
        self.accumulators: Dict[Tuple[int, int], CostAccumulator] = {}
        # slice_id -> receiver segment -> buffered rows
        self.buffers: Dict[int, Dict[int, List[tuple]]] = defaultdict(
            lambda: defaultdict(list)
        )
        # slice_id -> receiver segment -> bytes (for receive-side time)
        self.buffer_bytes: Dict[int, Dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self.parent_gang: Dict[int, List[int]] = {}
        for plan_slice in plan.slices:
            receivers = _gang_segments(plan, plan_slice, ctx)
            for child_id in plan_slice.child_slices:
                self.parent_gang[child_id] = receivers

    # ---------------------------------------------------------------- driver
    def run(self) -> List[tuple]:
        result: List[tuple] = []
        for plan_slice in self.plan.slices:
            is_top = plan_slice is self.plan.top_slice
            for segment in _gang_segments(self.plan, plan_slice, self.ctx):
                acc = CostAccumulator(self.ctx.cost_model)
                self.accumulators[(plan_slice.slice_id, segment)] = acc
                rows = self._input_rows(plan_slice.root, segment, acc)
                if is_top:
                    result.extend(rows)
                else:
                    # Non-top slice roots are Motions; _run_node on a
                    # Motion buffers rows and yields nothing.
                    for _ in rows:
                        pass
        return result

    def total_time(self) -> float:
        """Compose per-slice times up the dependency tree.

        Slices run on the *same* hosts, so their CPU work adds up even
        when motions pipeline tuples between them (cores are shared).
        What pipelining buys — and what the staged ablation pays — is
        never *materializing* motion data to disk between stages, the
        MapReduce failure mode the paper calls out.
        """
        model = self.ctx.cost_model
        times: Dict[int, float] = {}
        for plan_slice in self.plan.slices:  # children-first order
            # Mean over the gang, not max: at full scale TPC-H keys hash
            # uniformly, so the per-segment imbalance seen at a tiny
            # scale factor is sampling noise, not real skew.
            seconds = [
                acc.seconds
                for (sid, _seg), acc in self.accumulators.items()
                if sid == plan_slice.slice_id
            ]
            own = sum(seconds) / len(seconds) if seconds else 0.0
            children = sum(times[c] for c in plan_slice.child_slices)
            total = own + children + model.net_latency
            if not self.ctx.pipelined and plan_slice.motion_kind is not None:
                # Staged execution: this slice's motion output is written
                # to disk and read back by the consumer.
                sent = sum(self.buffer_bytes[plan_slice.slice_id].values())
                gang = _gang_segments(self.plan, plan_slice, self.ctx)
                per_segment = sent / max(len(gang), 1)
                total += 2 * per_segment * model.scale / model.disk_seq_bw
            times[plan_slice.slice_id] = total
        self.slice_times = times
        return times[self.plan.top_slice.slice_id]

    # -------------------------------------------------------------- operators
    def _run_node(
        self, node: PlanNode, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        if isinstance(node, Motion):
            return self._run_motion(node, segment, acc)
        if isinstance(node, MotionRecv):
            return self._run_motion_recv(node, segment, acc)
        if isinstance(node, SeqScan):
            return self._run_seqscan(node, segment, acc)
        if isinstance(node, ExternalScan):
            return self._run_external(node, segment, acc)
        if isinstance(node, SubqueryScan):
            return self._run_node(node.child, segment, acc)
        if isinstance(node, Filter):
            return self._run_filter(node, segment, acc)
        if isinstance(node, Project):
            return self._run_project(node, segment, acc)
        if isinstance(node, HashJoin):
            return self._run_hash_join(node, segment, acc)
        if isinstance(node, NestLoopJoin):
            return self._run_nest_loop(node, segment, acc)
        if isinstance(node, HashAgg):
            return self._run_hash_agg(node, segment, acc)
        if isinstance(node, Sort):
            return self._run_sort(node, segment, acc)
        if isinstance(node, Limit):
            return self._run_limit(node, segment, acc)
        if isinstance(node, Result):
            return self._run_result(node, segment, acc)
        raise ExecutorError(f"no executor for {type(node).__name__}")

    # ------------------------------------------------------------- batch path
    def _input_rows(
        self, node: PlanNode, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        """Row view of a child: the vectorized pipeline when available
        (flattened back to tuples at this boundary), else the row path."""
        if self.ctx.executor_mode == "batch":
            batches = self._run_node_batches(node, segment, acc)
            if batches is not None:
                return self._flatten_batches(batches)
        return self._run_node(node, segment, acc)

    @staticmethod
    def _flatten_batches(batches) -> Iterator[tuple]:
        for cols, n in batches:
            yield from rows_of(cols, n)

    def _run_node_batches(
        self, node: PlanNode, segment: int, acc: CostAccumulator
    ):
        """Vectorized execution of a subtree, or None if unsupported.

        Yields ``(cols, n)`` pairs: column vectors in ``node.layout``
        order. Simulated charges mirror the row operators exactly,
        including the trailing per-operator CPU charge being skipped
        when a consumer (LIMIT) abandons the stream.
        """
        if self.ctx.executor_mode != "batch":
            return None
        if isinstance(node, SeqScan):
            return self._scan_batches(node, segment, acc)
        if isinstance(node, SubqueryScan):
            # Pass-through: positions are unchanged, only labels differ.
            return self._run_node_batches(node.child, segment, acc)
        if isinstance(node, Filter):
            return self._filter_batches(node, segment, acc)
        if isinstance(node, Project):
            return self._project_batches(node, segment, acc)
        return None

    def _scan_batches(self, node: SeqScan, segment: int, acc: CostAccumulator):
        provider = self.ctx.batch_scan_provider
        if provider is None:
            return None
        source = provider(
            node.table, node.partitions, segment, node.columns, acc
        )
        if source is None:
            return None
        predicate = (
            compile_expr_batch(
                node.filter, self._scan_layout(node), self.ctx.params
            )
            if node.filter is not None
            else None
        )
        ncols = len(node.table.schema.columns)
        out_positions = list(node.columns)

        def gen():
            count = 0
            for row_count, vectors in source:
                count += row_count
                if predicate is None:
                    yield [vectors[c] for c in out_positions], row_count
                    continue
                # The scan filter is compiled against the full table row
                # shape; the planner guarantees every referenced column
                # is decoded, so unrequested positions never get read.
                # Undecoded columns share one NULL vector — the same
                # None placeholders the row-path provider materializes.
                placeholder = [None] * row_count
                full = [vectors.get(c, placeholder) for c in range(ncols)]
                mask = predicate(full, row_count, None)
                sel = [i for i, m in enumerate(mask) if m is True]
                if len(sel) == row_count:
                    yield [vectors[c] for c in out_positions], row_count
                elif sel:
                    yield [
                        [vectors[c][i] for i in sel] for c in out_positions
                    ], len(sel)
            acc.cpu_tuples(count, ncolumns=len(node.columns))

        return gen()

    def _filter_batches(
        self, node: Filter, segment: int, acc: CostAccumulator
    ):
        child = self._run_node_batches(node.child, segment, acc)
        if child is None:
            return None
        predicate = compile_expr_batch(
            node.cond, node.child.layout, self.ctx.params
        )

        def gen():
            count = 0
            for cols, n in child:
                count += n
                mask = predicate(cols, n, None)
                sel = [i for i, m in enumerate(mask) if m is True]
                if len(sel) == n:
                    yield cols, n
                elif sel:
                    yield [[col[i] for i in sel] for col in cols], len(sel)
            acc.cpu_tuples(count, weight=0.5)

        return gen()

    def _project_batches(
        self, node: Project, segment: int, acc: CostAccumulator
    ):
        child = self._run_node_batches(node.child, segment, acc)
        if child is None:
            return None
        fns = [
            compile_expr_batch(e, node.child.layout, self.ctx.params)
            for e in node.exprs
        ]

        def gen():
            count = 0
            for cols, n in child:
                count += n
                yield [fn(cols, n, None) for fn in fns], n
            acc.cpu_tuples(count, ncolumns=len(fns))

        return gen()

    # ------------------------------------------------------------------ scans
    def _run_seqscan(
        self, node: SeqScan, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        if self.ctx.scan_provider is None:
            raise ExecutorError("no scan provider configured")
        predicate = (
            compile_expr(node.filter, self._scan_layout(node), self.ctx.params)
            if node.filter is not None
            else None
        )
        count = 0
        for row in self.ctx.scan_provider(
            node.table, node.partitions, segment, node.columns, acc
        ):
            count += 1
            if predicate is not None and predicate(row) is not True:
                continue
            yield tuple(row[c] for c in node.columns)
        acc.cpu_tuples(count, ncolumns=len(node.columns))

    def _scan_layout(self, node) -> List[tuple]:
        """Scan filters see the table's full row shape."""
        ncols = len(node.table.schema.columns)
        return [("r", node.rel, c) for c in range(ncols)]

    def _run_external(
        self, node: ExternalScan, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        if self.ctx.external_provider is None:
            raise ExecutorError("no external (PXF) provider configured")
        predicate = (
            compile_expr(node.filter, self._scan_layout(node), self.ctx.params)
            if node.filter is not None
            else None
        )
        count = 0
        for row in self.ctx.external_provider(
            node.table, segment, node.columns, node.pushed_filters, acc
        ):
            count += 1
            if predicate is not None and predicate(row) is not True:
                continue
            yield tuple(row[c] for c in node.columns)
        acc.cpu_tuples(count, ncolumns=len(node.columns))

    # ---------------------------------------------------------------- motions
    def _run_motion(
        self, node: Motion, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        receivers = self.parent_gang.get(
            self._slice_of(node), [QD_SEGMENT]
        )
        hash_fns = [
            compile_expr(e, node.child.layout, self.ctx.params)
            for e in node.hash_exprs
        ]
        sent_bytes = 0
        count = 0
        slice_id = self._slice_of(node)
        sizer = RowSizer()
        for row in self._input_rows(node.child, segment, acc):
            count += 1
            size = sizer(row)
            if node.kind == "gather":
                targets = [receivers[0]]
            elif node.kind == "broadcast":
                targets = receivers
            else:
                key = tuple(fn(row) for fn in hash_fns)
                targets = [receivers[hash_values(key, len(receivers))]]
            for target in targets:
                self.buffers[slice_id][target].append(row)
                self.buffer_bytes[slice_id][target] += size
                sent_bytes += size
        self._charge_send(acc, count, sent_bytes, len(receivers))
        return iter(())

    def _slice_of(self, motion: Motion) -> int:
        for plan_slice in self.plan.slices:
            if plan_slice.root is motion:
                return plan_slice.slice_id
        raise ExecutorError("motion is not a slice root")

    def _charge_send(
        self, acc: CostAccumulator, rows: int, nbytes: int, nreceivers: int
    ) -> None:
        model = self.ctx.cost_model
        acc.cpu_bytes(nbytes, model.cpu_net_byte)
        # Stream concurrency is a property of the *real* cluster being
        # modeled (96 segments in the paper's testbed), not of however
        # many segments this process simulates.
        real_segments = (
            model.modeled_segments
            if model.modeled_segments
            else self.ctx.num_segments
        )
        if self.ctx.interconnect == "tcp":
            streams = real_segments * max(len(self.plan.slices) - 1, 1)
            bandwidth = model.net_bw / (
                1 + model.tcp_concurrency_penalty * streams
            )
            acc.fixed(model.tcp_conn_setup * real_segments * (nreceivers > 1))
            acc.network(nbytes, bandwidth)
        else:
            acc.fixed(model.udp_conn_setup * real_segments)
            acc.network(int(nbytes * (1 + model.udp_byte_overhead)))

    def _run_motion_recv(
        self, node: MotionRecv, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        rows = self.buffers[node.slice_id].get(segment, [])
        nbytes = self.buffer_bytes[node.slice_id].get(segment, 0)
        model = self.ctx.cost_model
        acc.cpu_bytes(nbytes, model.cpu_net_byte)
        acc.network(nbytes)
        return iter(rows)

    # -------------------------------------------------------------- filtering
    def _run_filter(
        self, node: Filter, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        predicate = compile_expr(node.cond, node.child.layout, self.ctx.params)
        count = 0
        for row in self._run_node(node.child, segment, acc):
            count += 1
            if predicate(row) is True:
                yield row
        acc.cpu_tuples(count, weight=0.5)

    def _run_project(
        self, node: Project, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        fns = [
            compile_expr(e, node.child.layout, self.ctx.params) for e in node.exprs
        ]
        count = 0
        for row in self._run_node(node.child, segment, acc):
            count += 1
            yield tuple(fn(row) for fn in fns)
        acc.cpu_tuples(count, ncolumns=len(fns))

    # ------------------------------------------------------------------ joins
    def _run_hash_join(
        self, node: HashJoin, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        residual = (
            compile_expr(node.residual, node.layout_for_residual(), self.ctx.params)
            if node.residual is not None
            else None
        )
        # Build side (right).
        table: Dict[tuple, List[tuple]] = defaultdict(list)
        build_count = 0
        build_bytes = 0
        sizer = RowSizer()
        for row, key in self._keyed_rows(
            node.right, node.right_keys, segment, acc
        ):
            if any(k is None for k in key):
                continue  # NULL never matches an equality key
            table[key].append(row)
            build_count += 1
            build_bytes += sizer(row)
        acc.cpu_tuples(build_count, weight=1.2)
        self._charge_spill(acc, build_bytes)

        probe_count = 0
        out_count = 0
        join_type = node.join_type
        pad = (None,) * len(node.right.layout)
        for row, key in self._keyed_rows(
            node.left, node.left_keys, segment, acc
        ):
            probe_count += 1
            matches = table.get(key, []) if not any(k is None for k in key) else []
            if residual is not None and matches:
                matches = [m for m in matches if residual(row + m) is True]
            if join_type == "inner":
                for match in matches:
                    out_count += 1
                    yield row + match
            elif join_type == "left":
                if matches:
                    for match in matches:
                        out_count += 1
                        yield row + match
                else:
                    out_count += 1
                    yield row + pad
            elif join_type == "semi":
                if matches:
                    out_count += 1
                    yield row
            elif join_type == "anti":
                if not matches:
                    out_count += 1
                    yield row
            else:  # pragma: no cover
                raise ExecutorError(f"unknown join type {join_type!r}")
        acc.cpu_tuples(probe_count, weight=1.0)
        acc.cpu_tuples(out_count, weight=0.3)

    def _keyed_rows(
        self,
        node: PlanNode,
        key_exprs: List[ex.BoundExpr],
        segment: int,
        acc: CostAccumulator,
    ) -> Iterator[Tuple[tuple, tuple]]:
        """Yield ``(row, key)`` pairs for a join input, extracting keys
        with batch kernels when the child produces column batches."""
        if self.ctx.executor_mode == "batch":
            batches = self._run_node_batches(node, segment, acc)
            if batches is not None:
                key_fns = [
                    compile_expr_batch(e, node.layout, self.ctx.params)
                    for e in key_exprs
                ]
                for cols, n in batches:
                    if key_fns:
                        key_cols = [fn(cols, n, None) for fn in key_fns]
                        yield from zip(rows_of(cols, n), zip(*key_cols))
                    else:
                        empty = ()
                        for row in rows_of(cols, n):
                            yield row, empty
                return
        fns = [
            compile_expr(e, node.layout, self.ctx.params) for e in key_exprs
        ]
        for row in self._run_node(node, segment, acc):
            yield row, tuple(fn(row) for fn in fns)

    def _run_nest_loop(
        self, node: NestLoopJoin, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        inner = list(self._input_rows(node.right, segment, acc))
        cond = (
            compile_expr(node.cond, node.layout_for_residual(), self.ctx.params)
            if node.cond is not None
            else None
        )
        pad = (None,) * len(node.right.layout)
        outer_count = 0
        comparisons = 0
        for row in self._input_rows(node.left, segment, acc):
            outer_count += 1
            matches = []
            for inner_row in inner:
                comparisons += 1
                if cond is None or cond(row + inner_row) is True:
                    matches.append(inner_row)
            if node.join_type == "inner":
                for match in matches:
                    yield row + match
            elif node.join_type == "left":
                if matches:
                    for match in matches:
                        yield row + match
                else:
                    yield row + pad
            elif node.join_type == "semi":
                if matches:
                    yield row
            elif node.join_type == "anti":
                if not matches:
                    yield row
        acc.cpu_tuples(comparisons, weight=0.3)
        acc.cpu_tuples(outer_count, weight=0.5)

    # ------------------------------------------------------------ aggregation
    def _run_hash_agg(
        self, node: HashAgg, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        child_layout = node.child.layout
        phase = node.phase
        nkeys = len(node.group_keys)
        if phase == "final":
            # Input rows are (group values..., states...) from partials.
            groups: Dict[tuple, List] = {}
            count = 0
            for row in self._input_rows(node.child, segment, acc):
                count += 1
                key = row[:nkeys]
                states = row[nkeys:]
                slot = groups.get(key)
                if slot is None:
                    groups[key] = list(states)
                else:
                    for mine, theirs in zip(slot, states):
                        mine.merge(theirs)
            acc.cpu_tuples(count, weight=1.0 + 0.3 * len(node.aggs))
            for key, states in groups.items():
                yield key + tuple(state.finalize() for state in states)
            return

        groups = {}
        count = 0
        group_bytes = 0
        sizer = RowSizer()
        batches = self._run_node_batches(node.child, segment, acc)
        if batches is not None:
            # Vectorized accumulation: group keys and aggregate arguments
            # are evaluated over whole batches, then folded per row.
            key_fns_b = [
                compile_expr_batch(e, child_layout, self.ctx.params)
                for e in node.group_keys
            ]
            arg_fns_b = [
                compile_expr_batch(a.arg, child_layout, self.ctx.params)
                if a.arg is not None
                else None
                for a in node.aggs
            ]
            for cols, n in batches:
                count += n
                if key_fns_b:
                    keys = list(zip(*(fn(cols, n, None) for fn in key_fns_b)))
                else:
                    keys = [()] * n
                arg_vecs = [
                    fn(cols, n, None) if fn is not None else None
                    for fn in arg_fns_b
                ]
                for i, key in enumerate(keys):
                    states = groups.get(key)
                    if states is None:
                        states = [make_state(a) for a in node.aggs]
                        groups[key] = states
                        group_bytes += sizer(key) + 16 * len(states)
                    for state, vec in zip(states, arg_vecs):
                        state.accumulate(vec[i] if vec is not None else 1)
        else:
            key_fns = [
                compile_expr(e, child_layout, self.ctx.params)
                for e in node.group_keys
            ]
            arg_fns = [
                compile_expr(a.arg, child_layout, self.ctx.params)
                if a.arg is not None
                else None
                for a in node.aggs
            ]
            for row in self._run_node(node.child, segment, acc):
                count += 1
                key = tuple(fn(row) for fn in key_fns)
                states = groups.get(key)
                if states is None:
                    states = [make_state(a) for a in node.aggs]
                    groups[key] = states
                    group_bytes += sizer(key) + 16 * len(states)
                for state, arg_fn in zip(states, arg_fns):
                    state.accumulate(arg_fn(row) if arg_fn is not None else 1)
        acc.cpu_tuples(count, weight=1.2 + 0.3 * len(node.aggs))
        self._charge_spill(acc, group_bytes)
        if not groups and not node.group_keys and node.aggs:
            # Aggregate over empty input still yields one row.
            groups[()] = [make_state(a) for a in node.aggs]
        if phase == "partial":
            for key, states in groups.items():
                yield key + tuple(states)
        else:  # single
            for key, states in groups.items():
                yield key + tuple(state.finalize() for state in states)

    # ------------------------------------------------------------- sort/limit
    def _run_sort(
        self, node: Sort, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        rows = list(self._input_rows(node.child, segment, acc))
        key_fns = [
            (
                compile_expr(k.expr, node.child.layout, self.ctx.params),
                k.ascending,
                k.nulls_first,
            )
            for k in node.keys
        ]
        # Stable multi-key sort: apply keys right-to-left. Each pass
        # evaluates its key expression once per row up front and sorts an
        # index array over the decorated values, so the per-comparison
        # path never re-enters the compiled closure chain.
        for fn, ascending, nulls_first in reversed(key_fns):
            if nulls_first is None:
                # PostgreSQL defaults: NULLS LAST ascending, FIRST descending.
                nulls_first = not ascending
            if ascending:
                null_bucket = 0 if nulls_first else 2
            else:
                # The whole sort is reversed, so the bucket order flips too.
                null_bucket = 2 if nulls_first else 0
            decorated = [
                (null_bucket, 0) if value is None else (1, value)
                for value in map(fn, rows)
            ]
            # sorted(reverse=True) keeps equal elements in their original
            # order, so descending passes stay stable too.
            order = sorted(
                range(len(rows)),
                key=decorated.__getitem__,
                reverse=not ascending,
            )
            rows = [rows[i] for i in order]
        count = len(rows)
        if count > 1:
            acc.cpu_tuples(count, weight=0.25 * math.log2(count))
        sizer = RowSizer()
        self._charge_spill(acc, sum(sizer(r) for r in rows))
        return iter(rows)

    def _run_limit(
        self, node: Limit, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        produced = 0
        for row in self._input_rows(node.child, segment, acc):
            if produced >= node.count:
                break
            produced += 1
            yield row

    def _run_result(
        self, node: Result, segment: int, acc: CostAccumulator
    ) -> Iterator[tuple]:
        fns = [compile_expr(e, [], self.ctx.params) for e in node.exprs]
        acc.cpu_tuples(1, ncolumns=len(fns))
        yield tuple(fn(()) for fn in fns)

    # ---------------------------------------------------------------- spilling
    def _charge_spill(self, acc: CostAccumulator, actual_bytes: int) -> None:
        """Charge simulated IO when an operator's nominal working set
        exceeds work_mem (external sort / spilling hash tables)."""
        model = self.ctx.cost_model
        nominal = actual_bytes * model.scale
        if nominal <= self.ctx.work_mem:
            return
        spilled = nominal - self.ctx.work_mem
        # Written once and read back once, at local-disk bandwidth;
        # nominal bytes, so bypass the scaled disk_read/write helpers.
        acc.seconds += 2 * spilled / model.disk_seq_bw
        acc.disk_write_bytes += int(spilled / max(model.scale, 1e-9))
