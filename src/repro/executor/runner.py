"""Master-side query execution: dispatch, gather, and the event clock.

The master (QD) no longer runs slices inline. It cuts the self-described
plan into per-segment :class:`~repro.planner.dispatch.SliceTask`s, sends
each one as a DISPATCH message over :class:`~repro.cluster.rpc.RpcBus`
to the owning :class:`~repro.cluster.worker.SegmentWorker`, and drains
the simulated network until every worker has reported COMPLETE. Waves go
out children-first, so a wave's motion inputs sit in the
:class:`~repro.interconnect.exchange.ExchangeFabric` before its
consumers start.

Timing: every task's COMPLETE carries the simulated seconds its
accumulator charged. The runtime replays those durations on the
:class:`~repro.simtime.scheduler.EventScheduler` — motion senders feed
receivers through cross-timeline edges charged one interconnect latency
(plus a materialization penalty when pipelining is ablated) — and the
query's wall time is the **critical path** through the task DAG plus the
master's own fixed dispatch overhead. Task durations use the gang mean,
not the max: at full scale TPC-H keys hash uniformly, so per-segment
imbalance at a tiny scale factor is sampling noise, not real skew.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.rpc import (
    ABORT,
    ABORT_BYTES,
    ACK,
    CATALOG_LOOKUP_BYTES,
    COMPLETE,
    DISPATCH,
    MASTER,
    RpcBus,
    RpcMessage,
    TaskReport,
    charge_control,
)
from repro.errors import ExecutorError, ReproError, SegmentDown
from repro.interconnect.exchange import ExchangeFabric
from repro.obs.metrics import MetricsSnapshot
from repro.network.simnet import SimNetwork
from repro.planner.dispatch import (
    QD_SEGMENT,
    SelfDescribedPlan,
    SliceTask,
    make_slice_tasks,
)
from repro.planner.physical import PhysicalPlan
from repro.simtime import CostAccumulator, CostModel, QueryCost
from repro.simtime.scheduler import (
    SliceTiming,
    TaskGraph,
    TaskKey,
    TaskTiming,
)


@dataclass
class ExecutionContext:
    """Per-query knobs shipped to every worker inside DISPATCH."""

    num_segments: int
    cost_model: CostModel
    #: 'batch' routes SeqScan/Filter/Project through the vectorized
    #: path (identical results and identical simulated charges); 'row'
    #: forces tuple-at-a-time execution everywhere.
    executor_mode: str = "row"
    params: List[object] = field(default_factory=list)
    #: 'udp' or 'tcp' — which interconnect carries the motions.
    interconnect: str = "udp"
    #: Disable slice overlap (ablation: staged execution a la MapReduce).
    pipelined: bool = True
    #: Per-operator memory budget in nominal bytes before spilling.
    work_mem: float = 1.5e9
    #: Self-described plans (Section 3.1); when ablated, every QE pays a
    #: per-object catalog RPC storm against the master instead.
    metadata_dispatch: bool = True
    #: Per-query :class:`repro.obs.trace.QueryTrace` recorder, or None.
    #: Purely observational: workers record relative operator marks on
    #: it; the runtime assembles absolute spans at gather time. Tracing
    #: never charges the clock, so figures are identical either way.
    trace: Optional[object] = None
    #: Engine-lifetime memo of compiled row/batch kernels, shared across
    #: queries and retry attempts (see SliceExecutor._compiled). None
    #: disables memoization (every compile_expr call is fresh).
    kernel_cache: Optional[dict] = None
    #: Engine-wide statement id: every RPC this query's dispatch sends
    #: (and every trace event) is tagged with it, so concurrent
    #: sessions' control traffic stays attributable per query.
    query_id: int = 0


@dataclass
class QueryResult:
    """Rows plus the simulated cost of producing them."""

    rows: List[tuple]
    column_names: List[str]
    cost: QueryCost
    plan: Optional[PhysicalPlan] = None
    message: str = ""
    #: Per-slice scheduler timelines (EXPLAIN ANALYZE): composed finish
    #: time on the event clock, rows sent, per-segment task breakdown.
    slices: Dict[int, SliceTiming] = field(default_factory=dict)
    #: Critical-path length through the task DAG (worker time only).
    makespan: float = 0.0
    #: Master-side fixed costs + init-plan time, on top of the makespan.
    overhead_seconds: float = 0.0
    #: The (slice_id, segment) chain that bounded the makespan.
    critical_path: List[TaskKey] = field(default_factory=list)
    #: Number of dispatch attempts abandoned to a dead segment before
    #: this result was produced (query restart beats heavy recovery).
    retries: int = 0
    #: Per-query metrics delta (registry snapshot diff around this
    #: statement): cache hits/misses, bytes read per format, datagrams,
    #: WAL records, retries. Empty when nothing was instrumented.
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: The statement's :class:`repro.obs.trace.QueryTrace` when the
    #: session had tracing enabled, else None.
    trace: Optional[object] = None
    #: Engine-wide id of the statement that produced this result (0 for
    #: statements that never dispatched).
    query_id: int = 0
    #: The executed (slice, segment) task DAG with its gang-mean
    #: durations and edges — what the concurrent runtime replays when
    #: composing many queries onto shared per-segment slots. None for
    #: undispatched statements.
    task_graph: Optional[TaskGraph] = None
    #: Simulated seconds this statement waited for resource-queue
    #: admission (0.0 when the slot was free at submit, and for the
    #: serial path where every queue is idle).
    queue_wait_seconds: float = 0.0
    #: Absolute simulated time the resource queue admitted the
    #: statement (equals submit time + queue_wait_seconds; 0.0 on the
    #: serial path).
    admitted_at: float = 0.0


class QueryDispatch:
    """One plan execution's master-side state, addressable mid-flight.

    Holds the wave list, the master cost accumulator, and the
    ACK/COMPLETE routing tables for a single in-flight
    :class:`~repro.planner.physical.PhysicalPlan`. The serial driver
    (:meth:`DistributedRuntime.execute`) walks the waves synchronously;
    the concurrent driver dispatches each wave from a scheduler event,
    with many dispatches in flight on the same runtime — replies route
    back here by the message's ``query_id``.
    """

    def __init__(
        self,
        runtime: "DistributedRuntime",
        plan: PhysicalPlan,
        sdp: SelfDescribedPlan,
        ctx: ExecutionContext,
        init_seconds: float = 0.0,
    ):
        self.runtime = runtime
        self.plan = plan
        self.sdp = sdp
        self.ctx = ctx
        self.init_seconds = init_seconds
        model = ctx.cost_model
        self.master_acc = CostAccumulator(model)
        self.master_acc.fixed(model.query_setup)
        self.waves = make_slice_tasks(plan, sdp, ctx.num_segments)
        self.roots = {s.slice_id: s.root for s in plan.slices}
        self.reports: Dict[TaskKey, TaskReport] = {}
        self.acks: Dict[TaskKey, str] = {}
        self.closed = False
        # Nested executions share a query id (a query's init plans are
        # plans of the same statement); shadow the outer entry and
        # restore it at close.
        self._shadow = runtime._inflight.get(ctx.query_id)
        runtime._inflight[ctx.query_id] = self

    @property
    def wave_count(self) -> int:
        return len(self.waves)

    def wave_keys(self, index: int) -> List[TaskKey]:
        """The (slice_id, segment) keys of one wave's tasks."""
        return [(t.slice_id, t.segment) for t in self.waves[index]]

    def predicted_overhead(self) -> float:
        """The master-side seconds this dispatch *will* charge.

        The master's charges are a pure function of the wave structure
        (fixed setup/dispatch costs plus control-message wire time), so
        replaying the exact ``fixed()`` sequence on a scratch
        accumulator — same ops, same order — reproduces the eventual
        ``master_acc.seconds`` float-exactly *before* any wave goes
        out. The concurrent driver releases wave-0 tasks at admit time
        plus this value, which keeps ``charged_seconds =
        serial_seconds + queue_wait`` exact under interleaving.
        """
        model = self.ctx.cost_model
        scratch = CostAccumulator(model)
        scratch.fixed(model.query_setup)
        for wave in self.waves:
            scratch.fixed(model.gang_setup)
            for task in wave:
                scratch.fixed(model.dispatch_per_segment)
                if task.segment == QD_SEGMENT:
                    continue
                if not self.ctx.metadata_dispatch:
                    lookups = max(len(self.sdp.metadata), 1) * 4
                    scratch.fixed(model.catalog_rpc * lookups)
                    charge_control(scratch, CATALOG_LOOKUP_BYTES)
                else:
                    charge_control(scratch, task.payload_bytes)
        return scratch.seconds + self.init_seconds

    def dispatch_wave(self, index: int) -> None:
        """Send one wave's DISPATCH messages (children-first order)."""
        model = self.ctx.cost_model
        bus = self.runtime.bus
        self.master_acc.fixed(model.gang_setup)
        for task in self.waves[index]:
            self.master_acc.fixed(model.dispatch_per_segment)
            message = RpcMessage(
                kind=DISPATCH,
                sender=MASTER,
                payload=(task, self.roots[task.slice_id], self.sdp, self.ctx),
                size=task.payload_bytes,
                query_id=self.ctx.query_id,
            )
            if task.segment == QD_SEGMENT:
                # Loopback dispatch to the master's own worker: no wire.
                bus.send(MASTER, f"seg{task.segment}", message)
                continue
            if not self.ctx.metadata_dispatch:
                # Ablation: the plan goes out thin and the QE turns
                # around and storms the master's catalog, one RPC per
                # object it needs (schema, files, stats, types).
                lookups = max(len(self.sdp.metadata), 1) * 4
                self.master_acc.fixed(model.catalog_rpc * lookups)
                message.size = CATALOG_LOOKUP_BYTES
            bus.send(
                MASTER, f"seg{task.segment}", message, acc=self.master_acc
            )

    def abort(self) -> None:
        """Clean up a failed or cancelled dispatch.

        Drains the net (already-queued deliveries run to completion;
        their late replies route here and are discarded — a further
        failure inside the drain is swallowed, the query is dead either
        way), broadcasts a query-tagged ABORT to the surviving workers,
        synthesizes trace closures for tasks that will never report,
        and drops the query's exchange streams. The caller (session
        restart loop or concurrent driver) owns the original exception.
        """
        self._drain()
        self.runtime._broadcast_abort(query_id=self.ctx.query_id)
        self._drain()
        if self.ctx.trace is not None:
            self.ctx.trace.attempt_aborted()
        self.runtime.exchange.clear(self.ctx.query_id)
        self.close()

    def _drain(self) -> None:
        # The query is already dead when abort() runs: the retry loop
        # owns the *original* exception, so faults surfacing from queued
        # deliveries during the drain carry no new information.
        for _ in range(10_000):
            try:
                self.runtime.net.run()
                return
            except ReproError:  # lint: allow[R4] — abort drain, see above
                continue
        raise ExecutorError("abort drain did not settle")

    def close(self) -> None:
        """Deregister from the runtime's in-flight routing table."""
        if self.closed:
            return
        self.closed = True
        if self.runtime._inflight.get(self.ctx.query_id) is self:
            if self._shadow is not None:
                self.runtime._inflight[self.ctx.query_id] = self._shadow
            else:
                del self.runtime._inflight[self.ctx.query_id]

    def task_graph(self, waves: List[List[SliceTask]]) -> TaskGraph:
        """Compose the (possibly partial) task DAG of ``waves`` from
        their COMPLETE reports.

        Shared by :meth:`gather` (all waves) and the statement-timeout
        check (the prefix of waves dispatched so far — motions into
        not-yet-dispatched consumers are simply absent).
        """
        plan = self.plan
        ctx = self.ctx
        model = ctx.cost_model
        graph = TaskGraph(tasks=[], edges=[])
        for wave in waves:
            slice_id = wave[0].slice_id
            seconds = [
                self.reports[(slice_id, task.segment)].seconds for task in wave
            ]
            mean = sum(seconds) / len(seconds)
            for task in wave:
                graph.tasks.append(((slice_id, task.segment), mean))

        # Motion edges: every sender task feeds every consumer task (the
        # consumer's MotionRecv drains the whole gang's streams, so the
        # barrier is complete-bipartite), charged one interconnect
        # latency. When pipelining is ablated, the motion's output is
        # staged to disk and read back by the consumer: the edge also
        # carries the per-segment write+read time.
        stage_delay: Dict[int, float] = {}
        if not ctx.pipelined:
            sent: Dict[int, int] = {}
            for record in self.runtime.exchange.records:
                if record.query_id != ctx.query_id:
                    continue  # another in-flight query's motion
                sent[record.slice_id] = sent.get(record.slice_id, 0) + record.nbytes
            for wave in waves:
                slice_id = wave[0].slice_id
                per_segment = sent.get(slice_id, 0) / max(len(wave), 1)
                stage_delay[slice_id] = (
                    2 * per_segment * model.scale / model.disk_seq_bw
                )
        tasks_of: Dict[int, List[SliceTask]] = {
            wave[0].slice_id: wave for wave in waves
        }
        for plan_slice in plan.slices:
            if plan_slice.slice_id not in tasks_of:
                continue  # beyond the dispatched prefix
            parent = tasks_of[plan_slice.slice_id]
            for child_id in plan_slice.child_slices:
                if child_id not in tasks_of:
                    continue
                delay = model.net_latency + stage_delay.get(child_id, 0.0)
                for child_task in tasks_of[child_id]:
                    for parent_task in parent:
                        graph.edges.append(
                            (
                                (child_id, child_task.segment),
                                (plan_slice.slice_id, parent_task.segment),
                                delay,
                            )
                        )
        # A worker executes one task at a time: tasks landing on the same
        # segment serialize in dispatch (wave) order. This is what keeps
        # sibling join branches — which all run on the same gang of
        # segments — from overlapping for free: the cores are shared.
        # Cross-*segment* overlap (direct dispatch, the QD's own slices
        # against QE work) still parallelizes on the event clock. The
        # edges stay explicit in the graph (not implied by slots) so a
        # lone query composes to its serial makespan exactly.
        last_on_segment: Dict[int, TaskKey] = {}
        for wave in waves:
            for task in wave:
                key = (task.slice_id, task.segment)
                prev = last_on_segment.get(task.segment)
                if prev is not None:
                    graph.edges.append((prev, key, 0.0))
                last_on_segment[task.segment] = key
        return graph

    def elapsed_seconds(self, through_wave: int) -> float:
        """Deterministic elapsed time after ``through_wave`` completed:
        the partial DAG's makespan plus the master charges so far.
        This is what the statement-timeout check compares against —
        wave boundaries are the serial driver's cancellation points."""
        partial = self.task_graph(self.waves[: through_wave + 1])
        return (
            partial.replay().makespan
            + self.master_acc.seconds
            + self.init_seconds
        )

    # ----------------------------------------------------------------- gather
    def gather(self) -> QueryResult:
        """Assemble the result once every task has reported COMPLETE."""
        plan = self.plan
        waves = self.waves
        ctx = self.ctx
        master_acc = self.master_acc
        init_seconds = self.init_seconds
        model = ctx.cost_model
        missing = [
            (task.slice_id, task.segment)
            for wave in waves
            for task in wave
            if (task.slice_id, task.segment) not in self.reports
        ]
        if missing:
            # A DISPATCH addressed to a channel that dropped before
            # delivery vanishes silently (UDP semantics) — the master
            # notices the worker's death here, at gather time.
            dead = [
                seg
                for _sid, seg in missing
                if not self.runtime.bus.is_open(f"seg{seg}")
            ]
            if dead:
                raise SegmentDown(
                    f"segment {dead[0]} died before completing its task"
                )
            raise ExecutorError(f"no completion report for tasks {missing[:4]}")

        # Capture the task DAG as a portable TaskGraph (tasks and edges
        # in the exact insertion order the serial schedule uses), then
        # replay it: the graph is also attached to the result so the
        # concurrent runtime can re-compose this query against others
        # on shared per-segment slots.
        graph = self.task_graph(waves)
        schedule = graph.replay()

        slices: Dict[int, SliceTiming] = {}
        for wave in waves:
            slice_id = wave[0].slice_id
            timing = SliceTiming(
                finish=max(
                    schedule.finish[(slice_id, task.segment)] for task in wave
                ),
                rows=0,
            )
            for task in wave:
                report = self.reports[(slice_id, task.segment)]
                timing.rows += report.rows_out
                timing.tasks[task.segment] = TaskTiming(
                    seconds=report.seconds,
                    rows=report.rows_out,
                    bytes=report.bytes_out,
                )
            slices[slice_id] = timing

        rows: List[tuple] = []
        top_id = plan.top_slice.slice_id
        top_tasks = [
            task for wave in waves for task in wave if task.slice_id == top_id
        ]
        for task in sorted(top_tasks, key=lambda t: t.segment):
            report = self.reports[(top_id, task.segment)]
            if report.result_rows is not None:
                rows.extend(report.result_rows)

        total = CostAccumulator(model)
        total.disk_read_bytes = master_acc.disk_read_bytes
        total.disk_write_bytes = master_acc.disk_write_bytes
        total.net_bytes = master_acc.net_bytes
        total.tuples = master_acc.tuples
        for report in self.reports.values():
            total.disk_read_bytes += report.disk_read_bytes
            total.disk_write_bytes += report.disk_write_bytes
            total.net_bytes += report.net_bytes
            total.tuples += report.tuples
        if ctx.trace is not None:
            # Absolute span placement: the scheduler's task windows,
            # shifted past this plan's dispatch overhead (init-plan
            # assemblies already advanced the trace cursor).
            ctx.trace.assemble(waves, self.reports, schedule, master_acc.seconds)

        overhead = master_acc.seconds + init_seconds
        graph.overhead_seconds = overhead
        cost = QueryCost(
            seconds=schedule.makespan + overhead,
            disk_read_bytes=total.disk_read_bytes,
            disk_write_bytes=total.disk_write_bytes,
            net_bytes=total.net_bytes,
            tuples=total.tuples,
        )
        self.close()
        return QueryResult(
            rows=rows,
            column_names=plan.output_names,
            cost=cost,
            plan=plan,
            slices=slices,
            makespan=schedule.makespan,
            overhead_seconds=overhead,
            critical_path=schedule.critical_path,
            query_id=ctx.query_id,
            task_graph=graph,
        )


class DistributedRuntime:
    """The QD's dispatcher: routes replies to in-flight dispatches.

    Owns the master's RPC endpoint; workers are registered on the same
    bus by the engine. One runtime now serves *many* concurrent plan
    executions — each :meth:`begin` registers a
    :class:`QueryDispatch` in the in-flight table, and every ACK or
    COMPLETE reply routes to its owner by the message's ``query_id``.
    Replies for queries no longer in flight (aborted, cancelled, or
    already gathered) are discarded, UDP-style.
    """

    def __init__(self, net: SimNetwork, bus: RpcBus, exchange: ExchangeFabric):
        self.net = net
        self.bus = bus
        self.exchange = exchange
        self._inflight: Dict[int, QueryDispatch] = {}
        bus.register(MASTER, self._on_message)

    # --------------------------------------------------------------- messages
    def _on_message(self, message: RpcMessage) -> None:
        dispatch = self._inflight.get(message.query_id)
        if dispatch is None:
            return  # late reply of an aborted or finished query
        if message.kind == ACK:
            slice_id, segment = message.payload
            dispatch.acks[(slice_id, segment)] = message.sender
        elif message.kind == COMPLETE:
            report: TaskReport = message.payload
            dispatch.reports[(report.slice_id, report.segment)] = report

    # ----------------------------------------------------------------- driver
    def begin(
        self, plan: PhysicalPlan, sdp: SelfDescribedPlan, ctx: ExecutionContext
    ) -> QueryDispatch:
        """Open one plan execution: resolve init plans, register in-flight.

        InitPlans run first (serially, on this same runtime): their
        single values become the plan's parameters. Parameters are
        scoped per PhysicalPlan (nested init plans resolve their own),
        so each runs with a fresh param list.
        """
        init_seconds = 0.0
        if plan.init_plans:
            params: List[object] = []
            for init_plan in plan.init_plans:
                sub = self.execute(
                    init_plan, sdp, dataclasses.replace(ctx, params=[])
                )
                if len(sub.rows) > 1:
                    raise ExecutorError("InitPlan returned more than one row")
                params.append(sub.rows[0][0] if sub.rows else None)
                init_seconds += sub.cost.seconds
            ctx = dataclasses.replace(ctx, params=params)
        # Init plans reuse slice ids; never let their streams leak in.
        self.exchange.clear(ctx.query_id)
        return QueryDispatch(self, plan, sdp, ctx, init_seconds=init_seconds)

    def execute(
        self,
        plan: PhysicalPlan,
        sdp: SelfDescribedPlan,
        ctx: ExecutionContext,
        check=None,
    ) -> QueryResult:
        """Dispatch a sliced physical plan synchronously and gather.

        ``check(dispatch, wave_index)`` — when given — runs after each
        wave settles; it may raise (cancellation, statement timeout) to
        abort the dispatch at that boundary.
        """
        dispatch = self.begin(plan, sdp, ctx)
        try:
            for index in range(dispatch.wave_count):
                dispatch.dispatch_wave(index)
                # Drain the net: DISPATCH delivery runs each worker's
                # task synchronously, and their motion streams + control
                # replies settle before the next (consumer) wave goes out.
                self.net.run()
                if check is not None:
                    check(dispatch, index)
        except Exception:
            # Best-effort abort to the surviving workers, then let the
            # session's restart loop see the original failure. The trace
            # synthesizes closures for tasks that will never report.
            dispatch.abort()
            raise
        return dispatch.gather()

    def _broadcast_abort(self, query_id: int = 0) -> None:
        for name, channel in sorted(self.bus.channels.items()):
            if name == MASTER or not channel.open:
                continue
            self.bus.send(
                MASTER,
                name,
                RpcMessage(
                    kind=ABORT, sender=MASTER, size=ABORT_BYTES,
                    query_id=query_id,
                ),
            )
