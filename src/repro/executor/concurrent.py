"""Single-pass interleaved multi-query execution on the event clock.

Earlier revisions modeled concurrency in two phases — execute every
statement serially, capture its task DAG, then *replay* the captured
graphs on a shared scheduler. This module retires that capture/replay
split: statements are now admitted, dispatched, executed, retried,
cancelled, and gathered **while the event clock runs**, with many
queries in flight on one shared :class:`~repro.executor.runner.
DistributedRuntime`.

The lifecycle of one statement, entirely event-driven:

1. **Submit.** A closed-loop stream submits its next statement the
   instant the previous one settles (a scheduler ``watch`` callback).
   :meth:`~repro.engine.Session.prepare_select` runs the front half —
   parse, analyze, lock, plan, allocate the query id and trace — and
   the statement is offered to its
   :class:`~repro.cluster.resqueue.ResourceQueueManager` queue.
2. **Admit.** When the queue has a slot (immediately, or later from
   another query's release event), wave 0 is dispatched on the shared
   runtime: the segment workers execute the slices *at event time*,
   and their gang-mean durations become scheduler tasks occupying
   per-segment slots. Motion streams become scheduler-visible edges.
3. **Wave barrier.** When every task of wave *w* finishes on the
   clock, a watch callback dispatches wave *w+1* — the same barrier
   the serial driver's per-wave ``net.run()`` imposes, so a lone
   query's timeline composes to its serial makespan exactly.
4. **Settle.** The last wave's completion gathers rows, commits the
   statement's transaction, and releases the queue slot — which may
   admit parked waiters in the same event.

Failures re-enter the loop as events too: a ``SegmentDown``/
``HdfsError`` aborts the attempt, backs off on the simulated clock
(doubling, exactly like the serial restart loop), revives dead worker
endpoints, and re-begins dispatch — attempt-namespaced task keys keep
retries from colliding with the failed attempt's history.
Cancellation (:meth:`~repro.engine.Session.cancel`, or the
``statement_timeout`` GUC armed as a timer at submit time) aborts the
in-flight dispatch with a clean query-tagged ABORT broadcast,
truncates the query's live scheduler tasks, and withdraws it from
admission — a parked statement is cancelled without ever taking a
slot. A cancelled statement settles as an error outcome; it never
fails the batch.

Cost accounting contract (unchanged, now preserved live): a query's
**charged** cost under concurrency is exactly its serial cost plus its
measured queue wait (``charged_seconds == serial_seconds +
queue_wait``, float-exact). Slot contention shows up in *latency* (and
the batch makespan), never in the charged cost — a parked task delays
the query, it does not make the query do more work. The exactness
hangs on :meth:`~repro.executor.runner.QueryDispatch.
predicted_overhead`: wave-0 tasks release at admit time plus the
master overhead the dispatch *will* charge, so an uncontended query
finishes at ``admit + serial_seconds`` on the shared clock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.resqueue import (
    QueueStats,
    ResourceQueueManager,
    specs_from_security,
)
from repro.cluster.worker import SegmentWorker
from repro.errors import (
    ClusterError,
    ExecutorError,
    HdfsError,
    QueryCanceled,
    QueryRetriesExhausted,
    ReproError,
    SegmentDown,
)
from repro.obs.trace import TraceRouter
from repro.simtime.scheduler import EventScheduler, TaskGraph

#: Retry attempts namespace the slice id inside a task key —
#: ``(query_id, attempt * STRIDE + slice_id, segment)`` — so a retried
#: wave never collides with the failed attempt's finished tasks while
#: keys stay homogeneous int 3-tuples (stable tie-breaks).
_ATTEMPT_STRIDE = 4096


@dataclass
class QueryOutcome:
    """One statement's fate on the shared timeline."""

    stream: int
    index: int
    sql: str
    query_id: int = 0
    rows: Optional[List[tuple]] = None
    error: Optional[str] = None
    #: The statement's executed (slice, segment) task DAG.
    task_graph: Optional[TaskGraph] = None
    #: The statement's serially-charged ``cost.seconds``.
    serial_seconds: float = 0.0
    segments: List[int] = field(default_factory=list)
    queue: str = "pg_default"
    memory: float = 0.0
    #: Timeline (simulated seconds on the shared clock).
    submit: float = 0.0
    admit: float = 0.0
    finish: float = 0.0
    #: admit − submit: simulated seconds parked in the resource queue.
    queue_wait: float = 0.0
    #: Seconds this query's tasks spent parked on busy segment slots.
    slot_wait: float = 0.0
    #: serial_seconds + queue_wait (the accounting contract).
    charged_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def latency(self) -> float:
        """Client-observed latency: submission to last task finish."""
        return self.finish - self.submit


@dataclass
class BatchResult:
    """The interleaved run: outcomes plus batch-level throughput facts."""

    outcomes: List[QueryOutcome]
    #: Finish time of the last query on the shared clock.
    makespan: float
    queue_stats: Dict[str, QueueStats]

    @property
    def qps(self) -> float:
        done = sum(1 for o in self.outcomes if o.ok)
        return done / self.makespan if self.makespan > 0 else 0.0

    def latencies(self) -> List[float]:
        return sorted(o.latency for o in self.outcomes if o.ok)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over successful-query latencies."""
        return _nearest_rank(self.latencies(), p)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def queue_waits(self) -> List[float]:
        """Sorted per-statement queue waits (every settled statement
        that went through admission, including zero waits)."""
        return sorted(o.queue_wait for o in self.outcomes)

    def wait_percentile(self, p: float) -> float:
        """Nearest-rank percentile over queue-wait times."""
        return _nearest_rank(self.queue_waits(), p)

    def rows(self, stream: int, index: int) -> Optional[List[tuple]]:
        for outcome in self.outcomes:
            if outcome.stream == stream and outcome.index == index:
                return outcome.rows
        raise ReproError(f"no outcome for stream {stream} statement {index}")


def _nearest_rank(ordered: List[float], p: float) -> float:
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(p * len(ordered))))
    return ordered[rank]


@dataclass
class _Statement:
    """Driver-side state of one in-flight SELECT."""

    outcome: QueryOutcome
    session: object
    prepared: object
    dispatch: object = None
    #: 1-based attempt number (namespaces scheduler task keys).
    attempt: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    #: Release base of the current attempt: admit/retry time plus the
    #: dispatch's predicted master overhead.
    base: float = 0.0
    #: Every scheduler task key this statement created (all attempts).
    keys: List[Tuple[int, int, int]] = field(default_factory=list)
    admitted: bool = False
    settled: bool = False


class ConcurrentRunner:
    """Runs N closed-loop statement streams against one engine, single
    pass, on one shared runtime and event scheduler."""

    def __init__(
        self,
        engine,
        streams: List[List[str]],
        role: str = "gpadmin",
        queues: Optional[Dict[int, str]] = None,
        trace: bool = False,
        allow_failures: bool = False,
        before_query: Optional[Callable[[int, int], None]] = None,
        detsan=None,
        admission_probe: Optional[Callable[[int, int], None]] = None,
        cancel_at: Optional[Dict[Tuple[int, int], float]] = None,
    ):
        self.engine = engine
        self.streams = streams
        self.queues = dict(queues or {})
        self.allow_failures = allow_failures
        self.before_query = before_query
        #: Called with ``(stream, index)`` when a statement parks in its
        #: resource queue instead of admitting immediately.
        self.admission_probe = admission_probe
        #: ``(stream, index) -> simulated time``: arm a cancel request
        #: for that statement at an absolute clock time (tests/chaos).
        self.cancel_at = dict(cancel_at or {})
        #: Optional :class:`repro.sanitize.DetSan`: when set, the run is
        #: instrumented end to end — engine caches are guarded, the
        #: shared scheduler/resqueue structures are guarded, and every
        #: event executes inside its query's sanitizer scope.
        self.detsan = detsan
        #: One session per stream — each stream is its own client.
        self.sessions = []
        for stream_id in range(len(streams)):
            session = engine.connect(role)
            if trace:
                session.trace_enabled = True
            queue_name = self.queues.get(stream_id)
            if queue_name:
                session.execute(f"SET resource_queue = {queue_name}")
            self.sessions.append(session)
        # Run-scoped shared infrastructure (built in _run_batch).
        self.runtime = None
        self.scheduler: Optional[EventScheduler] = None
        self.manager: Optional[ResourceQueueManager] = None
        self.router: Optional[TraceRouter] = None
        self._outcomes: List[QueryOutcome] = []
        self._by_qid: Dict[int, _Statement] = {}
        #: Synthetic ids: admission ids for non-SELECT statements
        #: (negative, never colliding with engine query ids) and the
        #: third element of slotless synthetic task keys.
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------- run
    def run(self) -> BatchResult:
        if self.detsan is None:
            return self._run_batch()
        self.detsan.install_engine(self.engine)
        try:
            return self._run_batch()
        finally:
            self.detsan.uninstall_engine(self.engine)

    def _run_batch(self) -> BatchResult:
        engine = self.engine
        self.runtime = runtime = engine.build_runtime()
        self.scheduler = scheduler = EventScheduler()
        scheduler.detsan = self.detsan
        self.manager = ResourceQueueManager(
            specs_from_security(engine.security),
            metrics=engine.metrics,
            detsan=self.detsan,
        )
        # One bus, many traces: the router demultiplexes every control
        # message onto the query trace its query_id names.
        self.router = TraceRouter()
        runtime.bus.trace = self.router
        runtime.exchange.trace = self.router
        if self.detsan is not None:
            runtime._inflight = self.detsan.guard_dict(
                runtime._inflight, "DistributedRuntime._inflight"
            )
            runtime.exchange._inbox = self.detsan.guard_dict(
                runtime.exchange._inbox, "ExchangeFabric._inbox"
            )
        self._outcomes = []
        self._by_qid = {}
        previous_notify = engine._cancel_notify
        previous_runtime = engine._active_runtime
        engine._cancel_notify = self._on_cancel
        engine._active_runtime = runtime
        # Lend the live registries (in-flight statements, queue manager,
        # scheduler timelines) to the telemetry facade for the duration
        # of the batch: system-view scans read them mid-schedule.
        engine.telemetry.attach_batch(self)
        try:
            for stream_id in range(len(self.streams)):
                if self.streams[stream_id]:
                    self._submit(stream_id, 0)
            schedule = scheduler.run()
        finally:
            engine.telemetry.detach_batch(self)
            engine._cancel_notify = previous_notify
            engine._active_runtime = previous_runtime
            engine.metrics.counter(
                "datagrams_delivered", mode=engine.interconnect
            ).inc(runtime.net.delivered)
            if runtime.net.dropped:
                engine.metrics.counter(
                    "datagrams_dropped", mode=engine.interconnect
                ).inc(runtime.net.dropped)
        for outcome in self._outcomes:
            outcome.slot_wait = sum(
                wait
                for key, wait in sorted(schedule.waits.items())
                if key[0] == outcome.query_id
            )
        return BatchResult(
            outcomes=self._outcomes,
            makespan=schedule.makespan,
            queue_stats=self.manager.stats(),
        )

    def _scoped(self, query_id: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` inside the statement's sanitizer scope.

        Event callbacks fired by *this* statement's own tasks are scoped
        by the scheduler already; this covers the entry points that are
        not — pre-run submission, retry-backoff timers, and cancel
        requests — so every guarded mutation stays attributed."""
        if self.detsan is None:
            fn()
            return
        with self.detsan.scope(query_id):
            fn()

    # ---------------------------------------------------------------- submit
    def _submit(self, stream_id: int, index: int) -> None:
        """Submit one statement: prepare it and offer it to its queue.

        Runs at event time — from a stream's previous completion event,
        or pre-run for stream heads (submit time 0).
        """
        engine = self.engine
        session = self.sessions[stream_id]
        sql = self.streams[stream_id][index]
        outcome = QueryOutcome(
            stream=stream_id,
            index=index,
            sql=sql,
            queue=self._queue_name(stream_id),
        )
        outcome.submit = self.scheduler.now
        outcome.memory = min(
            engine.work_mem,
            engine.security.queues[outcome.queue].memory_limit,
        )
        self._outcomes.append(outcome)
        if self.before_query is not None:
            self.before_query(stream_id, index)
        try:
            prepared = session.prepare_select(sql)
        except ClusterError as exc:
            if not self.allow_failures:
                raise
            # The statement died before dispatch (planning against a
            # dead master, chaos mid-parse): it bypasses admission and
            # burns only its setup penalty on the timeline.
            outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.query_id = self._last_query_id(session)
            outcome.serial_seconds = engine.cost_model.query_setup
            self._scoped(
                outcome.query_id,
                lambda: self._occupy(
                    outcome.query_id, outcome.serial_seconds,
                    lambda t, o=outcome: self._settle(o, t),
                ),
            )
            return
        if prepared is None:
            self._submit_other(session, outcome)
            return
        outcome.query_id = prepared.query_id
        outcome.memory = prepared.memory
        state = _Statement(outcome=outcome, session=session, prepared=prepared)
        self._by_qid[prepared.query_id] = state
        if prepared.trace is not None:
            self.router.register(prepared.query_id, prepared.trace)
        if prepared.statement_timeout > 0:
            # statement_timeout spans the whole statement, queue wait
            # included — the timer arms at submit, exactly like a
            # client-side deadline.
            self.scheduler.at(
                outcome.submit + prepared.statement_timeout,
                lambda now, s=state, t=prepared.statement_timeout:
                    self._timeout(s, t),
            )
        deadline = self.cancel_at.get((stream_id, index))
        if deadline is not None:
            self.scheduler.at(
                deadline,
                lambda now, qid=prepared.query_id: engine.cancel_query(qid),
            )
        self._scoped(
            prepared.query_id,
            lambda: self.manager.submit(
                prepared.query_id,
                prepared.queue_name,
                prepared.memory,
                outcome.submit,
                lambda admit, s=state: self._on_admit(s, admit),
            ),
        )
        if not state.admitted and self.admission_probe is not None:
            self.admission_probe(stream_id, index)

    def _submit_other(self, session, outcome: QueryOutcome) -> None:
        """Non-SELECT statement: admission-gated, executed synchronously
        through the serial path at its admission event, then occupying
        its serial seconds of master time, uncontended."""
        engine = self.engine
        admission_id = -next(self._ids)

        def on_admit(admit_time: float) -> None:
            outcome.admit = admit_time
            outcome.queue_wait = self.manager.waits[admission_id]
            try:
                result = session.execute(outcome.sql)
            except ClusterError as exc:
                if not self.allow_failures:
                    raise
                outcome.error = f"{type(exc).__name__}: {exc}"
                outcome.query_id = self._last_query_id(session)
                outcome.serial_seconds = engine.cost_model.query_setup
            else:
                outcome.query_id = result.query_id
                outcome.rows = result.rows
                outcome.serial_seconds = result.cost.seconds
                outcome.task_graph = result.task_graph
                if result.task_graph is not None:
                    outcome.segments = result.task_graph.segments()
            self._occupy(
                admission_id, outcome.serial_seconds,
                lambda t, o=outcome, a=admission_id: self._settle(
                    o, t, release=a
                ),
            )

        self._scoped(
            admission_id,
            lambda: self.manager.submit(
                admission_id,
                outcome.queue,
                outcome.memory,
                outcome.submit,
                on_admit,
            ),
        )
        if (
            admission_id not in self.manager.waits
            and self.admission_probe is not None
        ):
            self.admission_probe(outcome.stream, outcome.index)

    def _occupy(
        self, prefix: int, seconds: float, done: Callable[[float], None]
    ) -> None:
        """A slotless synthetic task: master-only statements and failed
        preparations still take their serial seconds on the timeline."""
        key = (prefix, -1, next(self._ids))
        self.scheduler.add_task(key, seconds, release=self.scheduler.now)
        self.scheduler.watch([key], done)

    def _settle(
        self, outcome: QueryOutcome, finish_time: float,
        release: Optional[int] = None,
    ) -> None:
        """Close an outcome that never opened a dispatch of its own."""
        outcome.finish = finish_time
        outcome.charged_seconds = outcome.serial_seconds + outcome.queue_wait
        if release is not None:
            self.manager.release(release, finish_time)
        self._next_in_stream(outcome)

    def _next_in_stream(self, outcome: QueryOutcome) -> None:
        if outcome.index + 1 < len(self.streams[outcome.stream]):
            self._submit(outcome.stream, outcome.index + 1)

    def _queue_name(self, stream_id: int) -> str:
        session = self.sessions[stream_id]
        return session._resource_queue().name

    def _last_query_id(self, session) -> int:
        """Best-effort id of a failed statement (its trace still exists
        when tracing is on; untraced failures keep id 0)."""
        if session.tracer.queries:
            return session.tracer.queries[-1].query_id
        return 0

    # ----------------------------------------------------------- admit/waves
    def _on_admit(self, state: _Statement, admit_time: float) -> None:
        state.admitted = True
        outcome = state.outcome
        outcome.admit = admit_time
        outcome.queue_wait = self.manager.waits[outcome.query_id]
        self._start_attempt(state, admit_time)

    def _start_attempt(self, state: _Statement, at_time: float) -> None:
        """Begin one dispatch attempt at ``at_time`` (admission, or a
        retry backoff timer)."""
        if state.settled:
            return
        engine = self.engine
        state.attempt += 1
        if engine.run_fault_detection():
            # Sessions randomly fail down segments over to live hosts.
            engine.fault_detector.assign_failover()
        self._revive_workers()
        prepared = state.prepared
        if prepared.trace is not None:
            prepared.trace.begin_attempt()
        try:
            state.dispatch = self.runtime.begin(
                prepared.plan, prepared.sdp, prepared.ctx
            )
        except (SegmentDown, HdfsError) as exc:
            self._retry_or_fail(state, exc)
            return
        except QueryCanceled as exc:
            self._cancel_state(state, exc)
            return
        except ClusterError as exc:
            if not self.allow_failures:
                raise
            self._fail(state, exc)
            return
        state.base = at_time + state.dispatch.predicted_overhead()
        self._wave_event(state, 0)

    def _wave_event(self, state: _Statement, wave_index: int) -> None:
        """Dispatch one wave as a scheduler event, trapping cluster
        faults into the retry/cancel/fail paths — an uncaught exception
        here would kill the whole batch, not just this query."""
        if state.settled:
            return
        try:
            self._dispatch_wave(state, wave_index)
        except (SegmentDown, HdfsError) as exc:
            self._retry_or_fail(state, exc)
        except QueryCanceled as exc:
            self._cancel_state(state, exc)
        except ClusterError as exc:
            if not self.allow_failures:
                raise
            self._fail(state, exc)

    def _dispatch_wave(self, state: _Statement, wave_index: int) -> None:
        """Send one wave's DISPATCHes: the workers execute at event
        time, and their reported durations become scheduler tasks."""
        dispatch = state.dispatch
        scheduler = self.scheduler
        dispatch.dispatch_wave(wave_index)
        self.runtime.net.run()
        for slice_id, segment in dispatch.wave_keys(wave_index):
            if (slice_id, segment) in dispatch.reports:
                continue
            # A DISPATCH addressed to a dropped channel vanished
            # silently (UDP semantics) — notice the death at the wave
            # boundary, exactly where gather() would.
            if not self.runtime.bus.is_open(f"seg{segment}"):
                raise SegmentDown(
                    f"segment {segment} died before completing its task"
                )
            raise ExecutorError(
                f"no completion report for task {(slice_id, segment)}"
            )
        graph = dispatch.task_graph(dispatch.waves[: wave_index + 1])
        durations = dict(graph.tasks)
        qid = state.outcome.query_id
        stride = (state.attempt - 1) * _ATTEMPT_STRIDE
        in_wave = []
        for slice_id, segment in dispatch.wave_keys(wave_index):
            key = (qid, stride + slice_id, segment)
            scheduler.add_task(
                key,
                durations[(slice_id, segment)],
                release=state.base,
                slot=segment if segment >= 0 else None,
            )
            in_wave.append(key)
            state.keys.append(key)
        wave_set = set(in_wave)
        for (s1, g1), (s2, g2), delay in graph.edges:
            dst = (qid, stride + s2, g2)
            if dst not in wave_set:
                continue  # earlier waves' edges were applied already
            scheduler.add_edge((qid, stride + s1, g1), dst, delay=delay)
        if wave_index + 1 < dispatch.wave_count:
            scheduler.watch(
                in_wave,
                lambda t, s=state, w=wave_index + 1: self._wave_event(s, w),
            )
        else:
            scheduler.watch(
                in_wave, lambda t, s=state: self._finish_query(s, t)
            )

    def _finish_query(self, state: _Statement, finish_time: float) -> None:
        """The last wave completed on the clock: gather and commit,
        trapping faults like :meth:`_wave_event` does — a gather-raised
        ``SegmentDown`` re-enters the retry loop, exactly as the serial
        restart loop treats it."""
        if state.settled:
            return
        try:
            self._gather_and_commit(state, finish_time)
        except (SegmentDown, HdfsError) as exc:
            self._retry_or_fail(state, exc)
        except QueryCanceled as exc:
            self._cancel_state(state, exc)
        except ClusterError as exc:
            if not self.allow_failures:
                raise
            self._fail(state, exc)

    def _gather_and_commit(
        self, state: _Statement, finish_time: float
    ) -> None:
        outcome = state.outcome
        result = state.dispatch.gather()
        result.retries = state.retries
        result.cost.seconds += state.backoff_seconds
        result.queue_wait_seconds = outcome.queue_wait
        result.admitted_at = outcome.admit
        state.prepared.finish(result)
        state.settled = True
        outcome.rows = result.rows
        outcome.serial_seconds = result.cost.seconds
        outcome.task_graph = result.task_graph
        if result.task_graph is not None:
            outcome.segments = result.task_graph.segments()
        outcome.finish = finish_time
        outcome.charged_seconds = outcome.serial_seconds + outcome.queue_wait
        self.router.unregister(outcome.query_id)
        self._by_qid.pop(outcome.query_id, None)
        self.manager.release(outcome.query_id, finish_time)
        self._next_in_stream(outcome)

    # --------------------------------------------------------- failure paths
    def _revive_workers(self) -> None:
        """Re-instantiate workers whose endpoints died: stateless QE
        processes make restart cheap (paper Section 2.6) — a replacement
        process revives the name on a fresh port."""
        bus = self.runtime.bus
        for name, channel in sorted(bus.channels.items()):
            if channel.open or not name.startswith("seg"):
                continue
            SegmentWorker(
                int(name[3:]), bus, self.runtime.exchange,
                self.runtime.services,
            )

    def _abort_attempt(self, state: _Statement) -> None:
        """Tear down the in-flight attempt: ABORT broadcast, exchange
        cleanup, trace closure, and truncation of live scheduler tasks."""
        dispatch = state.dispatch
        if dispatch is not None and not dispatch.closed:
            dispatch.abort()
        state.dispatch = None
        if state.prepared.trace is not None:
            # Idempotent: abort() above already synthesized closures
            # when a dispatch was open.
            state.prepared.trace.attempt_aborted()
        if state.keys and self.scheduler.running:
            self.scheduler.cancel_tasks(state.keys)

    def _retry_or_fail(self, state: _Statement, exc: Exception) -> None:
        """Bounded query restart, as scheduler events: back off on the
        simulated clock (doubling), then re-begin dispatch on the shared
        runtime under the next attempt's key namespace."""
        engine = self.engine
        self._abort_attempt(state)
        state.retries += 1
        if state.retries > engine.max_query_retries:
            self._fail(
                state,
                QueryRetriesExhausted(
                    f"query failed after {engine.max_query_retries} "
                    f"restarts: {exc}"
                ),
            )
            return
        delay = engine.retry_backoff * (2 ** (state.retries - 1))
        state.backoff_seconds += delay
        if engine.metrics is not None:
            engine.metrics.counter("query_retries").inc()
        self.scheduler.at(
            self.scheduler.now + delay,
            lambda now, s=state: self._scoped(
                s.outcome.query_id, lambda: self._start_attempt(s, now)
            ),
        )

    def _fail(self, state: _Statement, exc: Exception) -> None:
        """Settle a statement as an error outcome: abort its transaction,
        free its queue slot (draining waiters behind it), and keep its
        stream's loop closed."""
        if state.settled:
            return
        outcome = state.outcome
        outcome.error = f"{type(exc).__name__}: {exc}"
        self._abort_attempt(state)
        state.prepared.fail()
        state.settled = True
        now = self.scheduler.now
        outcome.serial_seconds = self.engine.cost_model.query_setup
        outcome.finish = now
        outcome.charged_seconds = outcome.serial_seconds + outcome.queue_wait
        self.router.unregister(outcome.query_id)
        self._by_qid.pop(outcome.query_id, None)
        # cancel() frees a running slot *or* withdraws a parked waiter.
        self.manager.cancel(outcome.query_id, now)
        self._next_in_stream(outcome)

    # ----------------------------------------------------------- cancellation
    def _cancel_state(self, state: _Statement, exc: QueryCanceled) -> None:
        """Cancellation settles the statement as an error outcome — it
        never fails the batch, whatever ``allow_failures`` says, exactly
        like ``pg_cancel_backend`` errors only the cancelled backend."""
        if state.settled:
            return
        if self.engine.metrics is not None:
            self.engine.metrics.counter("queries_cancelled").inc()
        self._scoped(
            state.outcome.query_id, lambda: self._fail(state, exc)
        )

    def _on_cancel(self, query_id: int) -> None:
        """Engine cancel hook (:meth:`Session.cancel` → ``cancel_query``):
        a queued statement is withdrawn before it ever admits; an
        in-flight one aborts at the current event."""
        state = self._by_qid.get(query_id)
        if state is None:
            return  # not ours (serial query), or already settled
        self._cancel_state(
            state, QueryCanceled(f"query {query_id} cancelled by request")
        )

    def _timeout(self, state: _Statement, timeout: float) -> None:
        if state.settled:
            return
        query_id = state.outcome.query_id
        self._cancel_state(
            state,
            QueryCanceled(
                f"query {query_id} cancelled: statement_timeout of "
                f"{timeout}s exceeded"
            ),
        )
