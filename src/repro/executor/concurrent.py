"""Concurrent multi-query execution over the shared event clock.

The engine executes one statement at a time — sessions are synchronous,
and the simulated cluster is single-threaded by design. Concurrency is
therefore modeled in two phases, which keeps per-query answers (and
per-query charged costs) bit-identical to a serial run by construction:

**Phase A — serial execution.** Statements are executed round-robin
across the streams in deterministic submission order. Each run produces
real rows, a charged serial cost, and (new in PR 7) the query's
:class:`~repro.simtime.scheduler.TaskGraph` — the (slice, segment) task
DAG with gang-mean durations and motion/serialization edges that the
serial schedule itself replayed.

**Phase B — composed replay.** All task graphs are instantiated on one
shared :class:`~repro.simtime.scheduler.EventScheduler` where each real
segment is a one-task-at-a-time slot, gated by a
:class:`~repro.cluster.resqueue.ResourceQueueManager`. Streams are
closed-loop: a stream's next statement is submitted the instant its
previous one finishes (a scheduler ``watch`` callback), waits in its
resource queue if the queue is full, and then replays its DAG against
everyone else's. The composed timeline yields per-query latencies
(submit → finish, including queue wait and slot contention) and the
batch makespan — the numbers the throughput bench reports.

Cost accounting contract: a query's **charged** cost under concurrency
is exactly its serial cost plus its measured queue wait
(``charged_seconds == serial_seconds + queue_wait``, float-exact).
Slot contention shows up in *latency* (and the batch makespan), never
in the charged cost — a parked task delays the query, it does not make
the query do more work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cluster.resqueue import (
    QueueStats,
    ResourceQueueManager,
    specs_from_security,
)
from repro.errors import ClusterError, ReproError
from repro.simtime.scheduler import EventScheduler, TaskGraph


@dataclass
class QueryOutcome:
    """One statement's fate across both phases."""

    stream: int
    index: int
    sql: str
    query_id: int = 0
    rows: Optional[List[tuple]] = None
    error: Optional[str] = None
    #: Phase A capture: the statement's executed task DAG.
    task_graph: Optional[TaskGraph] = None
    #: Phase A: the statement's serially-charged ``cost.seconds``.
    serial_seconds: float = 0.0
    segments: List[int] = field(default_factory=list)
    queue: str = "pg_default"
    memory: float = 0.0
    #: Phase B timeline (simulated seconds on the shared clock).
    submit: float = 0.0
    admit: float = 0.0
    finish: float = 0.0
    #: admit − submit: simulated seconds parked in the resource queue.
    queue_wait: float = 0.0
    #: Seconds this query's tasks spent parked on busy segment slots.
    slot_wait: float = 0.0
    #: serial_seconds + queue_wait (the accounting contract).
    charged_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def latency(self) -> float:
        """Client-observed latency: submission to last task finish."""
        return self.finish - self.submit


@dataclass
class BatchResult:
    """The composed run: outcomes plus batch-level throughput facts."""

    outcomes: List[QueryOutcome]
    #: Finish time of the last query on the shared clock.
    makespan: float
    queue_stats: Dict[str, QueueStats]

    @property
    def qps(self) -> float:
        done = sum(1 for o in self.outcomes if o.ok)
        return done / self.makespan if self.makespan > 0 else 0.0

    def latencies(self) -> List[float]:
        return sorted(o.latency for o in self.outcomes if o.ok)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over successful-query latencies."""
        ordered = self.latencies()
        if not ordered:
            return 0.0
        rank = max(0, min(len(ordered) - 1, int(p * len(ordered))))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def rows(self, stream: int, index: int) -> Optional[List[tuple]]:
        for outcome in self.outcomes:
            if outcome.stream == stream and outcome.index == index:
                return outcome.rows
        raise ReproError(f"no outcome for stream {stream} statement {index}")


class ConcurrentRunner:
    """Replays N closed-loop statement streams against one engine."""

    def __init__(
        self,
        engine,
        streams: List[List[str]],
        role: str = "gpadmin",
        queues: Optional[Dict[int, str]] = None,
        trace: bool = False,
        allow_failures: bool = False,
        before_query: Optional[Callable[[int, int], None]] = None,
        detsan=None,
    ):
        self.engine = engine
        self.streams = streams
        self.queues = dict(queues or {})
        self.allow_failures = allow_failures
        self.before_query = before_query
        #: Optional :class:`repro.sanitize.DetSan`: when set, both
        #: phases run instrumented — phase A scopes every worker
        #: dispatch to its query id (engine caches are guarded), phase B
        #: guards the shared scheduler/resqueue structures and scopes
        #: every submit/done/event to its statement's serial number.
        self.detsan = detsan
        #: One session per stream — each stream is its own client.
        self.sessions = []
        for stream_id in range(len(streams)):
            session = engine.connect(role)
            if trace:
                session.trace_enabled = True
            queue_name = self.queues.get(stream_id)
            if queue_name:
                session.execute(f"SET resource_queue = {queue_name}")
            self.sessions.append(session)

    # ---------------------------------------------------------------- phase A
    def _execute_serial(self) -> List[QueryOutcome]:
        """Round-robin the streams' statements through their sessions.

        The round-robin order is the deterministic submission order the
        composed replay reuses; it is a pure function of the workload.
        """
        outcomes: List[QueryOutcome] = []
        longest = max((len(s) for s in self.streams), default=0)
        for index in range(longest):
            for stream_id, stream in enumerate(self.streams):
                if index >= len(stream):
                    continue
                sql = stream[index]
                outcome = QueryOutcome(
                    stream=stream_id,
                    index=index,
                    sql=sql,
                    queue=self._queue_name(stream_id),
                )
                if self.before_query is not None:
                    self.before_query(stream_id, index)
                session = self.sessions[stream_id]
                try:
                    result = session.execute(sql)
                except ClusterError as exc:
                    if not self.allow_failures:
                        raise
                    outcome.error = f"{type(exc).__name__}: {exc}"
                    outcome.query_id = self._last_query_id(session)
                    outcome.serial_seconds = (
                        self.engine.cost_model.query_setup
                    )
                else:
                    outcome.query_id = result.query_id
                    outcome.rows = result.rows
                    outcome.serial_seconds = result.cost.seconds
                    outcome.task_graph = result.task_graph
                    if result.task_graph is not None:
                        outcome.segments = result.task_graph.segments()
                outcomes.append(outcome)
        return outcomes

    def _queue_name(self, stream_id: int) -> str:
        session = self.sessions[stream_id]
        return session._resource_queue().name

    def _last_query_id(self, session) -> int:
        """Best-effort id of a failed statement (its trace still exists
        when tracing is on; untraced failures keep id 0)."""
        if session.tracer.queries:
            return session.tracer.queries[-1].query_id
        return 0

    # ---------------------------------------------------------------- phase B
    def _compose(self, outcomes: List[QueryOutcome]) -> BatchResult:
        """Replay every query's task DAG on one shared scheduler."""
        engine = self.engine
        scheduler = EventScheduler()
        scheduler.detsan = self.detsan
        manager = ResourceQueueManager(
            specs_from_security(engine.security),
            metrics=engine.metrics,
            detsan=self.detsan,
        )
        # Serial number per outcome — the task-key namespace. Keys must
        # stay homogeneous int 3-tuples for stable tie-breaks.
        by_sn = {sn: outcome for sn, outcome in enumerate(outcomes)}
        streams: Dict[int, List[int]] = {}
        for sn, outcome in sorted(by_sn.items()):
            streams.setdefault(outcome.stream, []).append(sn)
            outcome.memory = min(
                engine.work_mem,
                engine.security.queues[outcome.queue].memory_limit,
            )

        def submit(sn: int) -> None:
            if self.detsan is not None:
                # Closed-loop arrivals fire from *another* query's
                # completion event: re-scope before this statement's
                # bookkeeping and admission writes.
                with self.detsan.scope(sn):
                    _submit(sn)
            else:
                _submit(sn)

        def _submit(sn: int) -> None:
            outcome = by_sn[sn]
            outcome.submit = scheduler.now

            def on_admit(admit_time: float) -> None:
                outcome.admit = admit_time
                outcome.queue_wait = manager.waits[sn]
                self._instantiate(scheduler, sn, outcome, admit_time, done)

            # Failed statements (chaos) never reached dispatch — they
            # bypass admission and burn only their setup penalty.
            if outcome.error is not None:
                key = (sn, -1, -1)
                scheduler.add_task(key, outcome.serial_seconds,
                                   release=scheduler.now)
                scheduler.watch([key], lambda t, sn=sn: done(sn, t, False))
                return
            manager.submit(
                sn,
                outcome.queue,
                outcome.memory,
                scheduler.now,
                on_admit,
            )

        def done(sn: int, finish_time: float, release: bool = True) -> None:
            outcome = by_sn[sn]
            outcome.finish = finish_time
            outcome.charged_seconds = (
                outcome.serial_seconds + outcome.queue_wait
            )
            if release:
                manager.release(sn, finish_time)
            lineup = streams[outcome.stream]
            position = lineup.index(sn)
            if position + 1 < len(lineup):
                submit(lineup[position + 1])

        for stream_id in sorted(streams):
            submit(streams[stream_id][0])
        schedule = scheduler.run()
        for sn, outcome in sorted(by_sn.items()):
            outcome.slot_wait = sum(
                wait
                for key, wait in sorted(schedule.waits.items())
                if key[0] == sn
            )
        return BatchResult(
            outcomes=outcomes,
            makespan=schedule.makespan,
            queue_stats=manager.stats(),
        )

    def _instantiate(
        self, scheduler: EventScheduler, sn: int, outcome: QueryOutcome,
        admit_time: float, done: Callable,
    ) -> None:
        graph = getattr(outcome, "task_graph", None)
        if graph is None or not graph.tasks:
            # Row-less statements (catalog-only answers) still take
            # their serial seconds of master time, uncontended.
            key = (sn, -1, -1)
            scheduler.add_task(
                key, outcome.serial_seconds, release=admit_time
            )
            scheduler.watch([key], lambda t, sn=sn: done(sn, t))
            return
        # Pre-task master time (dispatch overhead, init plans, retry
        # backoff) delays every task: an uncontended query finishes at
        # admit + serial_seconds exactly.
        release = admit_time + (
            outcome.serial_seconds - graph.replay().makespan
        )
        keys = scheduler.add_graph(graph, sn, release=max(release, admit_time))
        scheduler.watch(keys, lambda t, sn=sn: done(sn, t))

    # ------------------------------------------------------------------- run
    def run(self) -> BatchResult:
        if self.detsan is None:
            return self._compose(self._execute_serial())
        self.detsan.install_engine(self.engine)
        try:
            return self._compose(self._execute_serial())
        finally:
            self.detsan.uninstall_engine(self.engine)
