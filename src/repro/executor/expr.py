"""Expression compilation and SQL value semantics.

Bound expressions are compiled into Python closures evaluated per row.
SQL three-valued logic is honoured: comparisons with NULL yield NULL,
AND/OR follow Kleene semantics, and predicates keep a row only when they
evaluate to exactly TRUE.
"""

from __future__ import annotations

import calendar
import datetime
import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.catalog.schema import DataType
from repro.errors import ExecutorError
from repro.planner import exprs as ex
from repro.planner.physical import ColumnId

RowFn = Callable[[tuple], object]

_LIKE_CACHE: Dict[str, "re.Pattern"] = {}


def like_match(value: Optional[str], pattern: str) -> Optional[bool]:
    """SQL LIKE; ``%`` and ``_`` wildcards, anchored both ends."""
    if value is None:
        return None
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        compiled = re.compile(f"^{regex}$", re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled.match(value) is not None


def add_interval(
    value: datetime.date, quantity: float, unit: str, sign: int = 1
) -> datetime.date:
    """date +/- INTERVAL, with end-of-month clamping like PostgreSQL."""
    amount = int(quantity) * sign
    if unit == "day":
        return value + datetime.timedelta(days=amount)
    months = amount if unit == "month" else amount * 12
    total = value.year * 12 + (value.month - 1) + months
    year, month = divmod(total, 12)
    month += 1
    day = min(value.day, calendar.monthrange(year, month)[1])
    return datetime.date(year, month, day)


def sql_compare(op: str, left: object, right: object) -> Optional[bool]:
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutorError(f"unknown comparison {op!r}")  # pragma: no cover


def sql_arith(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    if isinstance(right, _Interval):
        if op == "+":
            return add_interval(left, right.quantity, right.unit, 1)
        if op == "-":
            return add_interval(left, right.quantity, right.unit, -1)
        raise ExecutorError(f"cannot {op!r} an interval")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutorError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            return left / right  # SQL numeric division, not floor
        return left / right
    if op == "%":
        return left % right
    if op == "||":
        return str(left) + str(right)
    raise ExecutorError(f"unknown operator {op!r}")  # pragma: no cover


class _Interval:
    """Runtime interval value (only ever combined with dates)."""

    __slots__ = ("quantity", "unit")

    def __init__(self, quantity: float, unit: str):
        self.quantity = quantity
        self.unit = unit


def estimate_row_bytes(row: Sequence[object]) -> int:
    """Approximate on-the-wire size of a tuple (for the cost model)."""
    total = 4
    for value in row:
        if value is None:
            total += 1
        elif isinstance(value, bool):
            total += 1
        elif isinstance(value, (int, float)):
            total += 8
        elif isinstance(value, str):
            total += 4 + len(value)
        elif isinstance(value, bytes):
            total += 4 + len(value)
        elif isinstance(value, datetime.date):
            total += 4
        elif isinstance(value, tuple):
            total += estimate_row_bytes(value)
        else:
            total += 8
    return total


def compile_expr(
    expr: ex.BoundExpr,
    layout: Sequence[ColumnId],
    params: Optional[Sequence[object]] = None,
) -> RowFn:
    """Compile a bound expression against an input layout.

    ``layout`` lists the column identities of the input tuples;
    ``params`` holds InitPlan results for :class:`~repro.planner.exprs.BParam`.
    """
    index_of = {cid: i for i, cid in enumerate(layout)}
    params = list(params or [])

    def compile_node(node: ex.BoundExpr) -> RowFn:
        if isinstance(node, ex.BConst):
            value = node.value
            return lambda row: value
        if isinstance(node, ex.BInterval):
            interval = _Interval(node.quantity, node.unit)
            return lambda row: interval
        if isinstance(node, ex.BVar):
            if node.level != 0:
                raise ExecutorError(
                    "correlated variable survived planning (unsupported query shape)"
                )
            key = ("r", node.rel, node.col)
            position = index_of.get(key)
            if position is None:
                raise ExecutorError(f"column {key} not in layout {layout}")
            return lambda row, p=position: row[p]
        if isinstance(node, ex.BGroupRef):
            position = index_of.get(("g", node.index))
            if position is None:
                raise ExecutorError(f"group ref {node.index} not in layout")
            return lambda row, p=position: row[p]
        if isinstance(node, ex.BAggRef):
            position = index_of.get(("a", node.index))
            if position is None:
                raise ExecutorError(f"agg ref {node.index} not in layout")
            return lambda row, p=position: row[p]
        if isinstance(node, ex.BTargetRef):
            position = index_of.get(("t", node.index))
            if position is None:
                raise ExecutorError(f"target ref {node.index} not in layout")
            return lambda row, p=position: row[p]
        if isinstance(node, ex.BParam):
            if node.index >= len(params):
                raise ExecutorError(f"missing InitPlan param {node.index}")
            value = params[node.index]
            return lambda row: value
        if isinstance(node, ex.BOp):
            left = compile_node(node.left)
            right = compile_node(node.right)
            op = node.op
            if op == "and":
                def f_and(row):
                    a = left(row)
                    if a is False:
                        return False
                    b = right(row)
                    if b is False:
                        return False
                    if a is None or b is None:
                        return None
                    return True
                return f_and
            if op == "or":
                def f_or(row):
                    a = left(row)
                    if a is True:
                        return True
                    b = right(row)
                    if b is True:
                        return True
                    if a is None or b is None:
                        return None
                    return False
                return f_or
            if op in ("=", "<>", "<", "<=", ">", ">="):
                return lambda row: sql_compare(op, left(row), right(row))
            return lambda row: sql_arith(op, left(row), right(row))
        if isinstance(node, ex.BNot):
            operand = compile_node(node.operand)
            def f_not(row):
                value = operand(row)
                return None if value is None else not value
            return f_not
        if isinstance(node, ex.BCase):
            whens = [(compile_node(c), compile_node(r)) for c, r in node.whens]
            else_fn = (
                compile_node(node.else_result)
                if node.else_result is not None
                else (lambda row: None)
            )
            def f_case(row):
                for cond, result in whens:
                    if cond(row) is True:
                        return result(row)
                return else_fn(row)
            return f_case
        if isinstance(node, ex.BCast):
            operand = compile_node(node.operand)
            target = DataType.parse(node.type_name)
            return lambda row: target.coerce(operand(row))
        if isinstance(node, ex.BLike):
            operand = compile_node(node.operand)
            pattern, negated = node.pattern, node.negated
            def f_like(row):
                value = like_match(operand(row), pattern)
                if value is None:
                    return None
                return (not value) if negated else value
            return f_like
        if isinstance(node, ex.BIn):
            operand = compile_node(node.operand)
            items = [compile_node(i) for i in node.items]
            negated = node.negated
            def f_in(row):
                value = operand(row)
                if value is None:
                    return None
                found = any(item(row) == value for item in items)
                return (not found) if negated else found
            return f_in
        if isinstance(node, ex.BIsNull):
            operand = compile_node(node.operand)
            negated = node.negated
            def f_isnull(row):
                is_null = operand(row) is None
                return (not is_null) if negated else is_null
            return f_isnull
        if isinstance(node, ex.BExtract):
            operand = compile_node(node.operand)
            part = node.part
            def f_extract(row):
                value = operand(row)
                if value is None:
                    return None
                return getattr(value, part)
            return f_extract
        if isinstance(node, ex.BFunc):
            return compile_function(node)
        if isinstance(node, ex.BAgg):
            raise ExecutorError(
                "raw aggregate reached expression compilation (planner bug)"
            )
        if isinstance(node, ex.BSubPlan):
            raise ExecutorError(
                "subplan survived decorrelation (unsupported query shape)"
            )
        raise ExecutorError(f"cannot compile {type(node).__name__}")

    def compile_function(node: ex.BFunc) -> RowFn:
        args = [compile_node(a) for a in node.args]
        name = node.name
        if name == "substring":
            def f_substring(row):
                value = args[0](row)
                if value is None:
                    return None
                start = int(args[1](row)) - 1
                if len(args) > 2:
                    length = int(args[2](row))
                    return value[start : start + length]
                return value[start:]
            return f_substring
        if name == "upper":
            return lambda row: None if (v := args[0](row)) is None else v.upper()
        if name == "lower":
            return lambda row: None if (v := args[0](row)) is None else v.lower()
        if name == "length":
            return lambda row: None if (v := args[0](row)) is None else len(v)
        if name == "abs":
            return lambda row: None if (v := args[0](row)) is None else abs(v)
        if name == "round":
            def f_round(row):
                value = args[0](row)
                if value is None:
                    return None
                digits = int(args[1](row)) if len(args) > 1 else 0
                return round(value, digits)
            return f_round
        if name == "coalesce":
            def f_coalesce(row):
                for arg in args:
                    value = arg(row)
                    if value is not None:
                        return value
                return None
            return f_coalesce
        if name == "nullif":
            def f_nullif(row):
                a, b = args[0](row), args[1](row)
                return None if a == b else a
            return f_nullif
        raise ExecutorError(f"unknown function {name!r}")

    return compile_node(expr)
